"""BSFS: the BlobSeer File System — the paper's primary contribution.

A Hadoop-compatible file system layered on top of :mod:`repro.core`
(BlobSeer), adding a centralized namespace manager, client-side
prefetch/write-aggregation caching, and data-layout exposure for the
MapReduce scheduler.
"""

from .cache import BlockReadCache, CacheStats, WriteAggregator
from .file import BSFSInputStream, BSFSOutputStream
from .filesystem import DEFAULT_BLOCK_SIZE, BSFS
from .locality import block_locations_for_blob
from .namespace import BSFSFileRecord, NamespaceManager

__all__ = [
    "BSFS",
    "DEFAULT_BLOCK_SIZE",
    "NamespaceManager",
    "BSFSFileRecord",
    "BSFSInputStream",
    "BSFSOutputStream",
    "BlockReadCache",
    "WriteAggregator",
    "CacheStats",
    "block_locations_for_blob",
]
