"""BSFS file streams: cached readers and block-aggregating writers."""

from __future__ import annotations

from typing import Callable

from ..core.client import BlobSeer
from ..fs.interface import InputStream, OutputStream
from .cache import BlockReadCache, VersionedBlockCache, WriteAggregator

__all__ = ["BSFSInputStream", "BSFSOutputStream"]


class BSFSInputStream(InputStream):
    """Reader for a BSFS file, prefetching whole blocks through the client cache.

    Each block fetch is itself a parallel page transfer (the client's
    ``read`` stripes pages across providers through the transfer engine),
    and a miss additionally schedules the *next* block's fetch on the
    engine — so a sequential scan finds its next block already cached
    while it is still decoding the current one.

    The snapshot to read is resolved *once, at open time*: a stream opened
    with ``version=None`` captures the latest published version and keeps
    reading it even while writers publish newer ones, so every block of one
    stream comes from the same immutable snapshot (no torn reads).  Cached
    blocks are keyed by ``(blob, version, block)`` in the (optionally
    shared) store, so a snapshot stream can never be served newer bytes
    cached by a concurrent latest-version reader.
    """

    def __init__(
        self,
        blobseer: BlobSeer,
        blob_id: int,
        *,
        size: int,
        block_size: int,
        version: int | None = None,
        cache_blocks: int = 4,
        read_ahead: bool = True,
        store: VersionedBlockCache | None = None,
    ) -> None:
        super().__init__(size)
        self._blobseer = blobseer
        self._blob_id = blob_id
        if version is None:
            version = blobseer.latest_version(blob_id)
        self._version = version
        self._read_ahead = read_ahead
        self._cache = BlockReadCache(
            block_size,
            self._fetch_block,
            capacity_blocks=cache_blocks,
            on_access=self._on_block_access if read_ahead else None,
            store=store,
            key=(blob_id, version),
        )

    @property
    def cache(self) -> BlockReadCache:
        """The stream's block cache (exposed for tests and metrics)."""
        return self._cache

    @property
    def version(self) -> int:
        """The published snapshot this stream reads (fixed at open time)."""
        return self._version

    def _read_raw(self, block_index: int) -> bytes:
        """Fetch one block's bytes from the blob (no cache interaction)."""
        block_size = self._cache.block_size
        start = block_index * block_size
        if start >= self._size:
            return b""
        length = min(block_size, self._size - start)
        return self._blobseer.read(
            self._blob_id, start, length, version=self._version
        )

    def _prefetch(self, block_index: int) -> None:
        """Engine-side body of the one-block read-ahead (never raises)."""
        try:
            if self._cache.contains(block_index):
                return
            self._cache.populate(block_index, self._read_raw(block_index))
        except Exception:
            # Read-ahead is opportunistic; the foreground read will
            # surface any real storage error itself.
            pass

    def _on_block_access(self, block_index: int) -> None:
        """Keep the next block's fetch in flight on every access, hit or
        miss — firing on hits too is what sustains the pipeline across a
        sequential scan instead of stalling on every other block.

        Fire-and-forget: the prefetch populates the cache directly (never
        through the fetch callback, so read-ahead cannot cascade), and it
        is safe on the shared engine because the nested page fetches use
        caller-participating map, never a blocking wait on pool capacity.
        """
        nxt = block_index + 1
        if nxt * self._cache.block_size < self._size and not self._cache.contains(nxt):
            self._blobseer.transfer.submit(self._prefetch, nxt)

    def _fetch_block(self, block_index: int) -> bytes:
        return self._read_raw(block_index)

    def _pread(self, offset: int, size: int) -> bytes:
        return self._cache.read(offset, size)


class BSFSOutputStream(OutputStream):
    """Writer for a BSFS file: aggregates small writes into block-sized appends.

    Every full block (and the final partial one at close time) is committed
    as a BlobSeer *append*, which creates a new published version of the
    backing blob.  ``on_close`` receives the final file size so the
    namespace manager can record it and release the write lease.
    """

    def __init__(
        self,
        blobseer: BlobSeer,
        blob_id: int,
        *,
        block_size: int,
        initial_size: int = 0,
        on_close: Callable[[int], None] | None = None,
    ) -> None:
        super().__init__()
        self._blobseer = blobseer
        self._blob_id = blob_id
        self._initial_size = initial_size
        self._on_close = on_close
        self._aggregator = WriteAggregator(block_size, self._flush_block)
        self._committed = 0

    @property
    def aggregator(self) -> WriteAggregator:
        """The stream's write aggregator (exposed for tests and metrics)."""
        return self._aggregator

    def _flush_block(self, block: bytes) -> None:
        self._blobseer.append(self._blob_id, block)
        self._committed += len(block)

    def _write(self, data: bytes) -> None:
        self._aggregator.write(data)

    def flush(self) -> None:
        """Force buffered bytes into the blob (ends the current block early)."""
        self._aggregator.flush()

    @property
    def file_size(self) -> int:
        """Size the file will have once the stream is closed."""
        return self._initial_size + self._committed + self._aggregator.pending_bytes

    def _close(self) -> None:
        self._aggregator.close()
        if self._on_close is not None:
            self._on_close(self._initial_size + self._committed)
