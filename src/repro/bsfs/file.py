"""BSFS file streams: cached readers and block-aggregating writers."""

from __future__ import annotations

from typing import Callable

from ..core.client import BlobSeer
from ..fs.interface import InputStream, OutputStream
from .cache import BlockReadCache, WriteAggregator

__all__ = ["BSFSInputStream", "BSFSOutputStream"]


class BSFSInputStream(InputStream):
    """Reader for a BSFS file, prefetching whole blocks through the client cache."""

    def __init__(
        self,
        blobseer: BlobSeer,
        blob_id: int,
        *,
        size: int,
        block_size: int,
        version: int | None = None,
        cache_blocks: int = 4,
    ) -> None:
        super().__init__(size)
        self._blobseer = blobseer
        self._blob_id = blob_id
        self._version = version
        self._cache = BlockReadCache(
            block_size,
            self._fetch_block,
            capacity_blocks=cache_blocks,
        )

    @property
    def cache(self) -> BlockReadCache:
        """The stream's block cache (exposed for tests and metrics)."""
        return self._cache

    def _fetch_block(self, block_index: int) -> bytes:
        block_size = self._cache.block_size
        start = block_index * block_size
        if start >= self._size:
            return b""
        length = min(block_size, self._size - start)
        return self._blobseer.read(
            self._blob_id, start, length, version=self._version
        )

    def _pread(self, offset: int, size: int) -> bytes:
        return self._cache.read(offset, size)


class BSFSOutputStream(OutputStream):
    """Writer for a BSFS file: aggregates small writes into block-sized appends.

    Every full block (and the final partial one at close time) is committed
    as a BlobSeer *append*, which creates a new published version of the
    backing blob.  ``on_close`` receives the final file size so the
    namespace manager can record it and release the write lease.
    """

    def __init__(
        self,
        blobseer: BlobSeer,
        blob_id: int,
        *,
        block_size: int,
        initial_size: int = 0,
        on_close: Callable[[int], None] | None = None,
    ) -> None:
        super().__init__()
        self._blobseer = blobseer
        self._blob_id = blob_id
        self._initial_size = initial_size
        self._on_close = on_close
        self._aggregator = WriteAggregator(block_size, self._flush_block)
        self._committed = 0

    @property
    def aggregator(self) -> WriteAggregator:
        """The stream's write aggregator (exposed for tests and metrics)."""
        return self._aggregator

    def _flush_block(self, block: bytes) -> None:
        self._blobseer.append(self._blob_id, block)
        self._committed += len(block)

    def _write(self, data: bytes) -> None:
        self._aggregator.write(data)

    def flush(self) -> None:
        """Force buffered bytes into the blob (ends the current block early)."""
        self._aggregator.flush()

    @property
    def file_size(self) -> int:
        """Size the file will have once the stream is closed."""
        return self._initial_size + self._committed + self._aggregator.pending_bytes

    def _close(self) -> None:
        self._aggregator.close()
        if self._on_close is not None:
            self._on_close(self._initial_size + self._committed)
