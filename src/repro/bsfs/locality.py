"""Data-layout exposure: from BlobSeer page locations to Hadoop block locations.

To make the MapReduce scheduler data-location aware, the paper extends
BlobSeer "with a new primitive, that exposes the pages distribution to
providers".  Hadoop, however, thinks in *blocks* (tens of MB), not pages
(tens of KB): this module aggregates the page-level placement returned by
:meth:`repro.core.BlobSeer.page_locations` into per-block host lists, ranking
hosts by how many bytes of the block they store, which is what the
jobtracker uses to score node-local versus remote task assignments.
"""

from __future__ import annotations

from collections import defaultdict

from ..core.client import BlobSeer
from ..fs.interface import BlockLocation

__all__ = ["block_locations_for_blob"]


def block_locations_for_blob(
    blobseer: BlobSeer,
    blob_id: int,
    *,
    offset: int,
    length: int,
    block_size: int,
    file_size: int,
    max_hosts: int = 3,
    version: int | None = None,
) -> list[BlockLocation]:
    """Aggregate page placement into block-level :class:`BlockLocation` records.

    Parameters
    ----------
    blobseer:
        The deployment holding the blob.
    blob_id:
        Blob backing the file.
    offset, length:
        Byte range of interest (clamped to ``file_size``).
    block_size:
        Hadoop block size used by the file.
    file_size:
        Size of the file (may be smaller than the blob if the file is being
        written).
    max_hosts:
        Maximum number of hosts reported per block, best hosts first.
    version:
        Blob version to inspect (default: latest published).
    """
    if block_size <= 0:
        raise ValueError("block_size must be positive")
    if offset < 0 or length < 0:
        raise ValueError("offset and length must be non-negative")
    end = min(offset + length, file_size)
    if offset >= end:
        return []
    locations: list[BlockLocation] = []
    first_block = offset // block_size
    last_block = (end - 1) // block_size
    for block_index in range(first_block, last_block + 1):
        block_start = block_index * block_size
        block_end = min(block_start + block_size, file_size)
        page_locations = blobseer.page_locations(
            blob_id, block_start, block_end - block_start, version=version
        )
        bytes_per_host: dict[str, int] = defaultdict(int)
        for page in page_locations:
            for host in page.hosts:
                bytes_per_host[host] += page.size
        ranked = sorted(bytes_per_host.items(), key=lambda kv: (-kv[1], kv[0]))
        hosts = tuple(host for host, _ in ranked[:max_hosts])
        locations.append(
            BlockLocation(
                offset=block_start,
                length=block_end - block_start,
                hosts=hosts,
            )
        )
    return locations
