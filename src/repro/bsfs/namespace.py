"""BSFS centralized namespace manager.

The paper introduces BSFS as "a centralized namespace manager, which is
responsible for maintaining a file system namespace, and for mapping files
to BLOBs".  This module is exactly that entity: a thin, thread-safe wrapper
around the shared :class:`repro.fs.namespace.NamespaceTree` whose per-file
payload is the id of the BLOB storing the file's bytes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..fs import path as fspath
from ..fs.interface import FileStatus
from ..fs.namespace import DirectoryEntry, FileEntry, NamespaceTree
from ..fs.quota import QuotaManager
from ..fs.sharded import ShardedNamespaceTree, make_namespace_tree

__all__ = ["BSFSFileRecord", "NamespaceManager"]


@dataclass(frozen=True, slots=True)
class BSFSFileRecord:
    """Mapping of one BSFS file to its backing BLOB."""

    path: str
    blob_id: int
    size: int
    block_size: int
    replication: int


class NamespaceManager:
    """Centralized file-to-BLOB namespace service of BSFS."""

    def __init__(
        self,
        *,
        namespace_shards: int = 1,
        quotas: QuotaManager | None = None,
    ) -> None:
        self._tree: NamespaceTree[int] | ShardedNamespaceTree[int] = make_namespace_tree(
            namespace_shards
        )
        self._tree.set_quota_manager(quotas)
        self.quotas = quotas

    @property
    def tree(self) -> NamespaceTree[int] | ShardedNamespaceTree[int]:
        """The underlying namespace tree (exposed for the file system layer)."""
        return self._tree

    # -- file <-> blob mapping -------------------------------------------------------
    def register_file(
        self,
        path: str,
        blob_id: int,
        *,
        block_size: int,
        replication: int,
        overwrite: bool = False,
        lease_holder: str | None = None,
        on_overwrite=None,
    ) -> None:
        """Bind ``path`` to ``blob_id`` in the namespace."""
        self._tree.create_file(
            path,
            payload_factory=lambda: blob_id,
            block_size=block_size,
            replication=replication,
            overwrite=overwrite,
            lease_holder=lease_holder,
            on_overwrite=on_overwrite,
        )

    def blob_of(self, path: str) -> int:
        """Return the BLOB id backing the file at ``path``."""
        return self._tree.get_file(path).payload

    def record(self, path: str) -> BSFSFileRecord:
        """Return the full file-to-BLOB record of ``path``."""
        entry = self._tree.get_file(path)
        return BSFSFileRecord(
            path=fspath.normalize(path),
            blob_id=entry.payload,
            size=entry.size,
            block_size=entry.block_size,
            replication=entry.replication,
        )

    def update_size(self, path: str, size: int) -> None:
        """Record the new size of ``path`` after a write completed."""
        self._tree.update_file(path, size=size)

    def update_size_monotonic(self, path: str, size: int) -> int:
        """Raise the recorded size of ``path`` to ``size``, never lowering it.

        Used by concurrent appends, where clients observe their post-append
        blob size in an arbitrary order: a check-then-act sequence on the
        caller's side would let a stale observation shrink the namespace
        size.  Returns the size actually recorded.
        """
        return self._tree.update_file_size_monotonic(path, size)

    # -- status helpers ---------------------------------------------------------------
    def status_of(self, path: str) -> FileStatus:
        """Build a :class:`FileStatus` for ``path``."""
        norm = fspath.normalize(path)
        entry = self._tree.get_entry(norm)
        if isinstance(entry, DirectoryEntry):
            return FileStatus(
                path=norm,
                is_dir=True,
                size=0,
                block_size=0,
                replication=0,
                modification_time=entry.modification_time,
            )
        return FileStatus(
            path=norm,
            is_dir=False,
            size=entry.size,
            block_size=entry.block_size,
            replication=entry.replication,
            modification_time=entry.modification_time,
        )

    def list_status(self, path: str) -> list[FileStatus]:
        """Statuses of the children of directory ``path`` (sorted by path)."""
        statuses = []
        for child_path, entry in self._tree.list_dir(path):
            if isinstance(entry, FileEntry):
                statuses.append(
                    FileStatus(
                        path=child_path,
                        is_dir=False,
                        size=entry.size,
                        block_size=entry.block_size,
                        replication=entry.replication,
                        modification_time=entry.modification_time,
                    )
                )
            else:
                statuses.append(
                    FileStatus(
                        path=child_path,
                        is_dir=True,
                        size=0,
                        block_size=0,
                        replication=0,
                        modification_time=entry.modification_time,
                    )
                )
        return statuses

    def all_records(self) -> list[BSFSFileRecord]:
        """Every file-to-BLOB binding in the namespace (for reports/GC)."""
        return [
            BSFSFileRecord(
                path=file_path,
                blob_id=entry.payload,
                size=entry.size,
                block_size=entry.block_size,
                replication=entry.replication,
            )
            for file_path, entry in self._tree.walk_files()
        ]
