"""BSFS: the BlobSeer File System, a Hadoop-compatible storage backend.

This is the paper's primary contribution: a file-system layer on top of the
BlobSeer service so that the Hadoop framework can use it in place of HDFS.
It combines

* the centralized :class:`~repro.bsfs.namespace.NamespaceManager` (file →
  BLOB mapping, directory tree, single-writer leases),
* the client-side cache (whole-block read prefetching and write
  aggregation, see :mod:`repro.bsfs.cache`),
* the data-layout exposure primitive (:mod:`repro.bsfs.locality`), and
* BlobSeer versioning, surfaced through ``open(version=...)`` and
  ``snapshot()`` — the capability §V of the paper identifies as enabling
  concurrent workflows over different snapshots of the same data.

Unlike HDFS, BSFS supports appending to an existing file and — through
:meth:`BSFS.concurrent_append` — concurrent appends by multiple clients to
the *same* file, which the paper lists as future work enabled by BlobSeer.
"""

from __future__ import annotations

import itertools
import threading

from ..core.client import BlobSeer
from ..core.config import MB, BlobSeerConfig
from ..core.errors import BlobPinnedError
from ..fs import path as fspath
from ..fs.errors import InvalidRangeError, NoSuchPathError
from ..fs.interface import BlockLocation, FileStatus, FileSystem
from ..fs.quota import QuotaManager
from ..versions.pins import SnapshotHandle
from .cache import VersionedBlockCache
from .file import BSFSInputStream, BSFSOutputStream
from .locality import block_locations_for_blob
from .namespace import NamespaceManager

__all__ = ["BSFS"]

#: Default Hadoop-style block size used by BSFS files (the paper uses 64 MB).
DEFAULT_BLOCK_SIZE = 64 * MB


class BSFS(FileSystem):
    """BlobSeer File System facade implementing the shared FileSystem API."""

    scheme = "bsfs"

    def __init__(
        self,
        blobseer: BlobSeer | None = None,
        *,
        config: BlobSeerConfig | None = None,
        default_block_size: int = DEFAULT_BLOCK_SIZE,
        cache_blocks: int = 4,
        shared_cache_blocks: int | None = None,
        quotas: QuotaManager | None = None,
    ) -> None:
        """Create a BSFS instance.

        Parameters
        ----------
        blobseer:
            An existing BlobSeer deployment to build on; a fresh in-process
            deployment is created from ``config`` when omitted.
        config:
            Configuration for the implicit deployment (ignored when
            ``blobseer`` is given).
        default_block_size:
            Block size used for files that do not specify one.
        cache_blocks:
            Number of blocks each input stream caches (LRU).
        shared_cache_blocks:
            Capacity of the instance-wide block store all input streams
            share.  Blocks are keyed ``(blob, version, block)``, so streams
            of the same snapshot share fetches while a pinned-snapshot
            reader can never be served a concurrent latest-reader's bytes.
            Defaults to ``8 × cache_blocks`` (at least 32).
        quotas:
            Optional per-tenant :class:`~repro.fs.quota.QuotaManager`
            enforcing file/byte budgets on namespace writes.
        """
        self.blobseer = blobseer if blobseer is not None else BlobSeer(config)
        self.namespace = NamespaceManager(
            namespace_shards=self.blobseer.config.namespace_shards,
            quotas=quotas,
        )
        self.quotas = quotas
        self._default_block_size = default_block_size
        self._cache_blocks = cache_blocks
        if shared_cache_blocks is None:
            shared_cache_blocks = max(32, cache_blocks * 8)
        #: Instance-wide version-keyed block store shared by every input
        #: stream (see :class:`~repro.bsfs.cache.VersionedBlockCache`).
        self.block_store = VersionedBlockCache(shared_cache_blocks)
        self._client_ids = itertools.count(1)
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ creation
    def _next_client(self, client_host: str | None) -> str:
        with self._lock:
            return f"{client_host or 'client'}-{next(self._client_ids)}"

    @property
    def default_block_size(self) -> int:
        """Block size applied to files created without an explicit one."""
        return self._default_block_size

    def create(
        self,
        path: str,
        *,
        overwrite: bool = False,
        block_size: int | None = None,
        replication: int | None = None,
        client_host: str | None = None,
    ) -> BSFSOutputStream:
        """Create a file backed by a fresh BLOB and return its output stream."""
        norm = fspath.normalize(path)
        block_size = block_size or self._default_block_size
        replication = replication or self.blobseer.config.replication
        holder = self._next_client(client_host)
        blob_id = self.blobseer.create_blob(replication=replication)

        def _release_overwritten(entry) -> None:
            self._release_blob(entry.payload)

        self.namespace.register_file(
            norm,
            blob_id,
            block_size=block_size,
            replication=replication,
            overwrite=overwrite,
            lease_holder=holder,
            on_overwrite=_release_overwritten,
        )

        def _on_close(final_size: int) -> None:
            # Release the lease even when the size commit is rejected (a
            # tenant over its byte quota): the failed write must leave the
            # file deletable, not leased forever.
            try:
                self._commit_size(norm, blob_id, final_size)
            finally:
                self.namespace.tree.release_lease(norm, holder)

        return BSFSOutputStream(
            self.blobseer,
            blob_id,
            block_size=block_size,
            initial_size=0,
            on_close=_on_close,
        )

    def _commit_size(self, norm: str, blob_id: int, observed_size: int) -> None:
        """Publish a writer's final size without racing concurrent appends.

        A leased writer computes its final size from what *it* wrote, but
        ``concurrent_append`` bypasses the lease by design, so the blob may
        have grown past that in the meantime.  Re-reading the blob size and
        applying the larger value monotonically keeps the namespace from
        moving backwards (the same check-then-act class of bug fixed in
        :meth:`concurrent_append`)."""
        actual = self.blobseer.get_size(blob_id)
        self.namespace.update_size_monotonic(norm, max(observed_size, actual))

    def append(
        self, path: str, *, client_host: str | None = None
    ) -> BSFSOutputStream:
        """Re-open an existing file for appending (supported, unlike HDFS)."""
        norm = fspath.normalize(path)
        record = self.namespace.record(norm)
        holder = self._next_client(client_host)
        self.namespace.tree.acquire_lease(norm, holder)

        def _on_close(final_size: int) -> None:
            try:
                self._commit_size(norm, record.blob_id, final_size)
            finally:
                self.namespace.tree.release_lease(norm, holder)

        return BSFSOutputStream(
            self.blobseer,
            record.blob_id,
            block_size=record.block_size,
            initial_size=record.size,
            on_close=_on_close,
        )

    def concurrent_append(self, path: str, data: bytes) -> int:
        """Append ``data`` to ``path`` without taking the write lease.

        Multiple clients may call this concurrently on the same file: each
        append becomes a new version of the backing blob with a disjoint
        byte range assigned by the version manager, exactly the §V "future
        work" scenario (e.g. all reducers writing to a single output file).
        Returns the byte offset at which ``data`` landed.
        """
        norm = fspath.normalize(path)
        record = self.namespace.record(norm)
        # Admission against the owner's byte budget happens *before* the blob
        # write; the monotonic size update consumes the reservation (possibly
        # on behalf of a racing appender whose observation covered our bytes).
        owner = self.namespace.tree.get_file(norm).owner_tenant
        if self.quotas is not None:
            self.quotas.reserve_bytes(owner, len(data))
        try:
            version = self.blobseer.append(record.blob_id, data)
            info = self.blobseer.version_manager.version_info(record.blob_id, version)
            new_size = self.blobseer.get_size(record.blob_id)
            # Two appenders may observe their post-append sizes in either order;
            # the monotonic update makes the namespace size the max ever seen
            # instead of the last write racing it backwards.
            self.namespace.update_size_monotonic(norm, new_size)
        except BaseException:
            if self.quotas is not None:
                self.quotas.unreserve_bytes(owner, len(data))
            raise
        return info.write_offset

    # ------------------------------------------------------------------- reading
    def open(
        self,
        path: str,
        *,
        client_host: str | None = None,
        version: int | None = None,
        read_ahead: bool = True,
    ) -> BSFSInputStream:
        """Open a file for reading; ``version`` selects an older blob snapshot.

        The snapshot may equivalently be named inline (``/logs/events@v12``).
        With ``version=None`` the stream captures the latest published
        version *at open time* and keeps reading it while writers publish
        newer ones — one stream never mixes bytes of two snapshots.

        ``read_ahead=False`` disables the stream's engine-side next-block
        prefetch — worth it for scattered positional reads, where
        prefetching the following block is pure read amplification.
        """
        bare, version = self._resolve_read_target(path, version)
        record = self.namespace.record(bare)
        if version is None:
            # Capture the snapshot here so size and version agree: the
            # namespace size is maintained monotonically from published
            # versions, so it can never exceed the latest version's extent,
            # but clamping makes the invariant local and obvious.
            version = self.blobseer.latest_version(record.blob_id)
            size = min(record.size, self.blobseer.get_size(record.blob_id, version))
        else:
            size = self.blobseer.get_size(record.blob_id, version)
        return BSFSInputStream(
            self.blobseer,
            record.blob_id,
            size=size,
            block_size=record.block_size,
            version=version,
            cache_blocks=self._cache_blocks,
            read_ahead=read_ahead,
            store=self.block_store,
        )

    def open_read(
        self,
        path: str,
        *,
        offset: int = 0,
        length: int | None = None,
        chunk_size: int = 1024 * 1024,
        client_host: str | None = None,
        version: int | None = None,
    ):
        """Stream a file's bytes page by page with concurrent read-ahead.

        Bypasses the whole-block read cache (useless for a single forward
        pass) and streams straight from the blob through the client's
        transfer engine: pages are fetched in parallel, bounded by
        ``BlobSeerConfig.read_ahead_pages``, so provider latency overlaps
        with the consumer.  ``chunk_size`` is advisory here — chunks arrive
        page-sized, the natural transfer unit.

        Like :meth:`open`, the snapshot is resolved *before* streaming
        starts (``version=None`` captures the latest published version), so
        a stream started during concurrent appends is byte-stable.
        """
        self._validate_stream_range(offset, length, chunk_size)
        bare, version = self._resolve_read_target(path, version)
        record = self.namespace.record(bare)
        if version is None:
            version = self.blobseer.latest_version(record.blob_id)
            size = min(record.size, self.blobseer.get_size(record.blob_id, version))
        else:
            size = self.blobseer.get_size(record.blob_id, version)
        end = size if length is None else min(offset + length, size)
        span = max(end - offset, 0)
        if span == 0:
            return iter(())
        return self.blobseer.open_read(
            record.blob_id, offset, span, version=version
        )

    @property
    def transfer(self):
        """The deployment's shared transfer engine (for shuffle/prefetch use)."""
        return self.blobseer.transfer

    # ----------------------------------------------------------------- namespace
    def mkdirs(self, path: str) -> None:
        self.namespace.tree.mkdirs(path)

    def delete(self, path: str, *, recursive: bool = False) -> None:
        def _release(file_path: str, entry) -> None:
            self._release_blob(entry.payload)

        self.namespace.tree.delete(path, recursive=recursive, on_delete_file=_release)

    def _release_blob(self, blob_id: int) -> None:
        """Reclaim a blob whose file was deleted or overwritten.

        A blob with in-flight snapshot pins cannot be deleted (the version
        manager's delete guard raises :class:`BlobPinnedError`); the
        namespace entry is gone either way, so the delete is *deferred*
        until the last pin drains rather than orphaning the blob's pages.
        Cached blocks of the blob are dropped eagerly — the keys can never
        be served again once the file is unlinked.
        """
        self.block_store.invalidate(prefix=(blob_id,))
        try:
            self.blobseer.delete_blob(blob_id)
        except BlobPinnedError:
            self.blobseer.pins.on_drain(
                blob_id, lambda: self._delete_drained(blob_id)
            )
        except Exception:
            pass

    def _delete_drained(self, blob_id: int) -> None:
        """Drain hook: complete a deferred blob delete (never raises)."""
        try:
            self.blobseer.delete_blob(blob_id)
        except Exception:
            pass

    def rename(self, src: str, dst: str) -> None:
        self.namespace.tree.rename(src, dst)

    def exists(self, path: str) -> bool:
        return self.namespace.tree.exists(path)

    def status(self, path: str) -> FileStatus:
        if not self.exists(path):
            raise NoSuchPathError(fspath.normalize(path))
        return self.namespace.status_of(path)

    def list_dir(self, path: str) -> list[FileStatus]:
        return self.namespace.list_status(path)

    # ------------------------------------------------------------------ locality
    def block_locations(
        self, path: str, offset: int = 0, length: int | None = None
    ) -> list[BlockLocation]:
        record = self.namespace.record(path)
        if offset < 0 or offset > record.size:
            raise InvalidRangeError(record.path, offset, record.size)
        if length is not None and length < 0:
            raise InvalidRangeError(record.path, offset, record.size, length=length)
        if length is None or offset + length > record.size:
            length = record.size - offset
        return block_locations_for_blob(
            self.blobseer,
            record.blob_id,
            offset=offset,
            length=length,
            block_size=record.block_size,
            file_size=record.size,
        )

    # ----------------------------------------------------------------- versioning
    def file_versions(self, path: str) -> list[int]:
        """Published versions of the blob backing ``path`` (oldest first)."""
        record = self.namespace.record(path)
        return self.blobseer.versions(record.blob_id)

    def snapshot(self, path: str) -> int:
        """Return a version number capturing the file's current content.

        Because BlobSeer versions are immutable snapshots, "taking" a
        snapshot is free: the latest published version *is* the snapshot.
        The returned number can be passed to ``open(path, version=...)`` at
        any later time, even after further appends.
        """
        record = self.namespace.record(path)
        return self.blobseer.latest_version(record.blob_id)

    def snapshot_size(self, path: str, version: int | None = None) -> int:
        """Size of ``path`` as of blob snapshot ``version`` (current when None)."""
        record = self.namespace.record(path)
        if version is None:
            return record.size
        return self.blobseer.get_size(record.blob_id, version)

    def pin(
        self,
        path: str,
        version: int | None = None,
        *,
        owner: str = "reader",
        ttl: float | None = None,
    ) -> SnapshotHandle:
        """Take a real lease on a snapshot of ``path`` in the pin registry.

        Unlike the base class's token pin, the returned
        :class:`~repro.versions.pins.SnapshotHandle` actually protects the
        snapshot: the version GC will not retire a pinned version and
        :meth:`delete` defers blob reclamation until the pin drains.
        ``version=None`` pins the latest published version.
        """
        record = self.namespace.record(path)
        return self.blobseer.pin_version(
            record.blob_id, version, owner=owner, ttl=ttl
        )

    # ----------------------------------------------------------------- monitoring
    def stats(self) -> dict:
        """Aggregate statistics of the file system and its BlobSeer deployment."""
        stats = self.blobseer.stats()
        stats["files"] = self.namespace.tree.count_files()
        stats["scheme"] = self.scheme
        return stats
