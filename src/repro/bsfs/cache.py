"""Client-side caching for BSFS: whole-block prefetching and write aggregation.

MapReduce applications "usually process data in small records (4 KB, whereas
Hadoop is concerned)"; issuing a BlobSeer operation per record would be
prohibitively chatty.  The paper therefore adds a caching layer that

* *prefetches a whole block* when a read misses the cache, so subsequent
  small sequential reads are served locally, and
* *delays committing writes* until a whole block has accumulated, so the
  blob receives large, page-aligned appends.

Both sides are implemented here, independent from the stream classes so
they can be unit- and property-tested in isolation.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable

from ..core.transfer import ChunkBuffer

__all__ = [
    "CacheStats",
    "VersionedBlockCache",
    "BlockReadCache",
    "WriteAggregator",
]


class CacheStats:
    """Mutable counters describing cache effectiveness."""

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.prefetched_blocks = 0
        #: Blocks deposited by the engine-side next-block read-ahead
        #: (:meth:`BlockReadCache.populate`) — kept separate from
        #: ``prefetched_blocks``, which counts ordinary miss fetches.
        self.read_ahead_blocks = 0
        self.flushed_blocks = 0
        self.flushed_bytes = 0

    @property
    def hit_ratio(self) -> float:
        """Fraction of block accesses served from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict[str, float | int]:
        """JSON-friendly snapshot of the counters."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_ratio": self.hit_ratio,
            "prefetched_blocks": self.prefetched_blocks,
            "read_ahead_blocks": self.read_ahead_blocks,
            "flushed_blocks": self.flushed_blocks,
            "flushed_bytes": self.flushed_bytes,
        }


class VersionedBlockCache:
    """Shared LRU store of whole blocks keyed by ``(blob, version, block)``.

    Snapshots are immutable, so a block cached under its full
    ``(blob, version, block)`` identity can never go stale — and, crucially,
    a pinned-snapshot reader can never be served newer bytes deposited by a
    stream reading the latest version of the same file: the two streams use
    different version components and therefore different keys.  One store is
    shared by every stream of a BSFS instance, so two readers of the *same*
    snapshot share each other's fetches.
    """

    def __init__(self, capacity_blocks: int = 32) -> None:
        if capacity_blocks < 1:
            raise ValueError("capacity_blocks must be at least 1")
        self._capacity = capacity_blocks
        self._blocks: OrderedDict[tuple, bytes] = OrderedDict()
        self._lock = threading.Lock()
        self.insertions = 0
        self.evictions = 0

    @property
    def capacity_blocks(self) -> int:
        return self._capacity

    def get(self, key: tuple) -> bytes | None:
        """The block under ``key`` (LRU touch), or ``None`` on miss."""
        with self._lock:
            data = self._blocks.get(key)
            if data is not None:
                self._blocks.move_to_end(key)
            return data

    def put(self, key: tuple, data: bytes) -> bool:
        """Insert-if-absent; returns whether the block was inserted."""
        with self._lock:
            if key in self._blocks:
                return False
            self._blocks[key] = data
            self.insertions += 1
            while len(self._blocks) > self._capacity:
                self._blocks.popitem(last=False)
                self.evictions += 1
        return True

    def contains(self, key: tuple) -> bool:
        with self._lock:
            return key in self._blocks

    def invalidate(
        self, key: tuple | None = None, *, prefix: tuple | None = None
    ) -> None:
        """Drop one key, every key under ``prefix``, or everything."""
        with self._lock:
            if key is not None:
                self._blocks.pop(key, None)
            elif prefix is not None:
                for k in [k for k in self._blocks if k[: len(prefix)] == prefix]:
                    del self._blocks[k]
            else:
                self._blocks.clear()

    def keys(self) -> list[tuple]:
        """Every cached key (LRU order, oldest first)."""
        with self._lock:
            return list(self._blocks.keys())

    def __len__(self) -> int:
        with self._lock:
            return len(self._blocks)


class BlockReadCache:
    """Per-stream view over an LRU block store, with miss-triggered prefetch.

    Parameters
    ----------
    block_size:
        Size of one cached block in bytes.
    fetch_block:
        Callback ``fetch_block(block_index) -> bytes`` returning the block's
        content (possibly shorter than ``block_size`` for the file's last
        block).
    capacity_blocks:
        Maximum number of blocks kept (LRU eviction) when the cache owns a
        private store; ignored when ``store`` is supplied.
    store:
        Optional shared :class:`VersionedBlockCache`.  When given, blocks
        live in the shared store under ``key + (block_index,)`` so streams
        of the same snapshot share fetches while streams of different
        versions can never serve each other's bytes.
    key:
        Namespace prefix of this stream's blocks in the store — for BSFS,
        ``(blob_id, version)``.
    """

    def __init__(
        self,
        block_size: int,
        fetch_block: Callable[[int], bytes],
        *,
        capacity_blocks: int = 4,
        on_access: Callable[[int], None] | None = None,
        store: VersionedBlockCache | None = None,
        key: tuple = (),
    ) -> None:
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        if capacity_blocks < 1:
            raise ValueError("capacity_blocks must be at least 1")
        self._block_size = block_size
        self._fetch_block = fetch_block
        self._store = store if store is not None else VersionedBlockCache(
            capacity_blocks
        )
        self._key = key
        self._lock = threading.Lock()
        #: Called (outside the lock) with every accessed block index, hit
        #: or miss — the read-ahead hook: firing on hits too is what keeps
        #: a sequential scan's prefetch pipeline primed instead of
        #: stalling on every other block.
        self._on_access = on_access
        self.stats = CacheStats()

    @property
    def block_size(self) -> int:
        """Size of one cached block."""
        return self._block_size

    @property
    def store(self) -> VersionedBlockCache:
        """The backing block store (shared or private)."""
        return self._store

    def _full_key(self, block_index: int) -> tuple:
        return self._key + (block_index,)

    def _get_block(self, block_index: int) -> bytes:
        data = self._store.get(self._full_key(block_index))
        with self._lock:
            if data is not None:
                self.stats.hits += 1
            else:
                self.stats.misses += 1
        if data is None:
            # Fetch outside any lock: the fetch may be slow (a real
            # BlobSeer read).  A concurrent fetch of the same immutable
            # block produces identical bytes, so losing the put race is
            # harmless.
            data = self._fetch_block(block_index)
            self._store.put(self._full_key(block_index), data)
            with self._lock:
                self.stats.prefetched_blocks += 1
        if self._on_access is not None:
            self._on_access(block_index)
        return data

    def read(self, offset: int, size: int) -> bytes:
        """Read ``size`` bytes at ``offset``, prefetching whole blocks on miss."""
        if offset < 0 or size < 0:
            raise ValueError("offset and size must be non-negative")
        if size == 0:
            return b""
        result = bytearray()
        position = offset
        end = offset + size
        while position < end:
            block_index = position // self._block_size
            block_start = block_index * self._block_size
            block = self._get_block(block_index)
            start_in_block = position - block_start
            if start_in_block >= len(block):
                break  # reading past the end of the file
            take = min(end - position, len(block) - start_in_block)
            result += block[start_in_block : start_in_block + take]
            position += take
        return bytes(result)

    def contains(self, block_index: int) -> bool:
        """Whether a block is currently cached (no LRU touch, no stats)."""
        return self._store.contains(self._full_key(block_index))

    def populate(self, block_index: int, data: bytes) -> bool:
        """Insert an externally fetched block if it is not cached yet.

        The read-ahead hook: the BSFS input stream fetches the *next*
        block on the transfer engine during a miss and deposits it here,
        so a sequential scan finds it already local.  Returns whether the
        block was inserted (``False`` when it raced an ordinary fetch —
        both fetched identical bytes, so dropping one copy is harmless).
        """
        inserted = self._store.put(self._full_key(block_index), data)
        if inserted:
            with self._lock:
                self.stats.read_ahead_blocks += 1
        return inserted

    def invalidate(self, block_index: int | None = None) -> None:
        """Drop one block (or this stream's whole namespace on ``None``)."""
        if block_index is None:
            self._store.invalidate(prefix=self._key)
        else:
            self._store.invalidate(self._full_key(block_index))

    def cached_blocks(self) -> list[int]:
        """Indices of this stream's cached blocks (LRU order, oldest first)."""
        prefix_len = len(self._key)
        return [
            k[-1]
            for k in self._store.keys()
            if k[:prefix_len] == self._key and len(k) == prefix_len + 1
        ]


class WriteAggregator:
    """Accumulates sequential writes and flushes them block by block.

    ``flush_block(data)`` is invoked with exactly ``block_size`` bytes for
    every full block, and once more with the remainder when :meth:`close`
    is called.  The aggregator never reorders or drops bytes — a property
    the test suite checks with Hypothesis.

    Buffering uses a chunk list with a running length
    (:class:`~repro.core.transfer.ChunkBuffer`), not a growing byte
    string: the old ``self._buffer += data`` / ``del self._buffer[:n]``
    pattern re-copied the whole pending buffer on every write, turning a
    stream of many small records into O(n²) byte movement.
    """

    def __init__(
        self,
        block_size: int,
        flush_block: Callable[[bytes], None],
    ) -> None:
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        self._block_size = block_size
        self._flush_block = flush_block
        self._buffer = ChunkBuffer()
        self._closed = False
        self.stats = CacheStats()

    @property
    def block_size(self) -> int:
        """Size of one aggregated block."""
        return self._block_size

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered and not yet flushed."""
        return len(self._buffer)

    @property
    def buffer(self) -> ChunkBuffer:
        """The underlying chunk buffer (exposed for the linearity tests)."""
        return self._buffer

    def write(self, data: bytes) -> None:
        """Buffer ``data``, flushing every complete block."""
        if self._closed:
            raise ValueError("write on a closed aggregator")
        self._buffer.append(data)
        while len(self._buffer) >= self._block_size:
            block = self._buffer.take(self._block_size)
            self._flush_block(block)
            self.stats.flushed_blocks += 1
            self.stats.flushed_bytes += len(block)

    def flush(self) -> None:
        """Flush any buffered partial block immediately.

        Used by callers that need durability before the block fills (e.g. a
        file being closed, or an application calling ``flush()``); flushing
        a partial block means the next flush starts a new blob write, so the
        aggregator is normally left to its own pacing.
        """
        if len(self._buffer):
            block = self._buffer.take_all()
            self._flush_block(block)
            self.stats.flushed_blocks += 1
            self.stats.flushed_bytes += len(block)

    def close(self) -> None:
        """Flush the remaining bytes and refuse further writes."""
        if self._closed:
            return
        self.flush()
        self._closed = True
