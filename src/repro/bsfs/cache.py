"""Client-side caching for BSFS: whole-block prefetching and write aggregation.

MapReduce applications "usually process data in small records (4 KB, whereas
Hadoop is concerned)"; issuing a BlobSeer operation per record would be
prohibitively chatty.  The paper therefore adds a caching layer that

* *prefetches a whole block* when a read misses the cache, so subsequent
  small sequential reads are served locally, and
* *delays committing writes* until a whole block has accumulated, so the
  blob receives large, page-aligned appends.

Both sides are implemented here, independent from the stream classes so
they can be unit- and property-tested in isolation.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable

from ..core.transfer import ChunkBuffer

__all__ = ["CacheStats", "BlockReadCache", "WriteAggregator"]


class CacheStats:
    """Mutable counters describing cache effectiveness."""

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.prefetched_blocks = 0
        #: Blocks deposited by the engine-side next-block read-ahead
        #: (:meth:`BlockReadCache.populate`) — kept separate from
        #: ``prefetched_blocks``, which counts ordinary miss fetches.
        self.read_ahead_blocks = 0
        self.flushed_blocks = 0
        self.flushed_bytes = 0

    @property
    def hit_ratio(self) -> float:
        """Fraction of block accesses served from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict[str, float | int]:
        """JSON-friendly snapshot of the counters."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_ratio": self.hit_ratio,
            "prefetched_blocks": self.prefetched_blocks,
            "read_ahead_blocks": self.read_ahead_blocks,
            "flushed_blocks": self.flushed_blocks,
            "flushed_bytes": self.flushed_bytes,
        }


class BlockReadCache:
    """LRU cache of whole blocks with miss-triggered prefetching.

    Parameters
    ----------
    block_size:
        Size of one cached block in bytes.
    fetch_block:
        Callback ``fetch_block(block_index) -> bytes`` returning the block's
        content (possibly shorter than ``block_size`` for the file's last
        block).
    capacity_blocks:
        Maximum number of blocks kept (LRU eviction).
    """

    def __init__(
        self,
        block_size: int,
        fetch_block: Callable[[int], bytes],
        *,
        capacity_blocks: int = 4,
        on_access: Callable[[int], None] | None = None,
    ) -> None:
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        if capacity_blocks < 1:
            raise ValueError("capacity_blocks must be at least 1")
        self._block_size = block_size
        self._fetch_block = fetch_block
        self._capacity = capacity_blocks
        self._blocks: OrderedDict[int, bytes] = OrderedDict()
        self._lock = threading.Lock()
        #: Called (outside the lock) with every accessed block index, hit
        #: or miss — the read-ahead hook: firing on hits too is what keeps
        #: a sequential scan's prefetch pipeline primed instead of
        #: stalling on every other block.
        self._on_access = on_access
        self.stats = CacheStats()

    @property
    def block_size(self) -> int:
        """Size of one cached block."""
        return self._block_size

    def _get_block(self, block_index: int) -> bytes:
        data: bytes | None = None
        with self._lock:
            if block_index in self._blocks:
                self._blocks.move_to_end(block_index)
                self.stats.hits += 1
                data = self._blocks[block_index]
            else:
                self.stats.misses += 1
        if data is None:
            # Fetch outside the lock: the fetch may be slow (a real BlobSeer
            # read).
            data = self._fetch_block(block_index)
            with self._lock:
                self._blocks[block_index] = data
                self._blocks.move_to_end(block_index)
                self.stats.prefetched_blocks += 1
                while len(self._blocks) > self._capacity:
                    self._blocks.popitem(last=False)
        if self._on_access is not None:
            self._on_access(block_index)
        return data

    def read(self, offset: int, size: int) -> bytes:
        """Read ``size`` bytes at ``offset``, prefetching whole blocks on miss."""
        if offset < 0 or size < 0:
            raise ValueError("offset and size must be non-negative")
        if size == 0:
            return b""
        result = bytearray()
        position = offset
        end = offset + size
        while position < end:
            block_index = position // self._block_size
            block_start = block_index * self._block_size
            block = self._get_block(block_index)
            start_in_block = position - block_start
            if start_in_block >= len(block):
                break  # reading past the end of the file
            take = min(end - position, len(block) - start_in_block)
            result += block[start_in_block : start_in_block + take]
            position += take
        return bytes(result)

    def contains(self, block_index: int) -> bool:
        """Whether a block is currently cached (no LRU touch, no stats)."""
        with self._lock:
            return block_index in self._blocks

    def populate(self, block_index: int, data: bytes) -> bool:
        """Insert an externally fetched block if it is not cached yet.

        The read-ahead hook: the BSFS input stream fetches the *next*
        block on the transfer engine during a miss and deposits it here,
        so a sequential scan finds it already local.  Returns whether the
        block was inserted (``False`` when it raced an ordinary fetch —
        both fetched identical bytes, so dropping one copy is harmless).
        """
        with self._lock:
            if block_index in self._blocks:
                return False
            self._blocks[block_index] = data
            self._blocks.move_to_end(block_index)
            self.stats.read_ahead_blocks += 1
            while len(self._blocks) > self._capacity:
                self._blocks.popitem(last=False)
        return True

    def invalidate(self, block_index: int | None = None) -> None:
        """Drop one block (or the whole cache when ``block_index`` is ``None``)."""
        with self._lock:
            if block_index is None:
                self._blocks.clear()
            else:
                self._blocks.pop(block_index, None)

    def cached_blocks(self) -> list[int]:
        """Indices of the blocks currently cached (LRU order, oldest first)."""
        with self._lock:
            return list(self._blocks.keys())


class WriteAggregator:
    """Accumulates sequential writes and flushes them block by block.

    ``flush_block(data)`` is invoked with exactly ``block_size`` bytes for
    every full block, and once more with the remainder when :meth:`close`
    is called.  The aggregator never reorders or drops bytes — a property
    the test suite checks with Hypothesis.

    Buffering uses a chunk list with a running length
    (:class:`~repro.core.transfer.ChunkBuffer`), not a growing byte
    string: the old ``self._buffer += data`` / ``del self._buffer[:n]``
    pattern re-copied the whole pending buffer on every write, turning a
    stream of many small records into O(n²) byte movement.
    """

    def __init__(
        self,
        block_size: int,
        flush_block: Callable[[bytes], None],
    ) -> None:
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        self._block_size = block_size
        self._flush_block = flush_block
        self._buffer = ChunkBuffer()
        self._closed = False
        self.stats = CacheStats()

    @property
    def block_size(self) -> int:
        """Size of one aggregated block."""
        return self._block_size

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered and not yet flushed."""
        return len(self._buffer)

    @property
    def buffer(self) -> ChunkBuffer:
        """The underlying chunk buffer (exposed for the linearity tests)."""
        return self._buffer

    def write(self, data: bytes) -> None:
        """Buffer ``data``, flushing every complete block."""
        if self._closed:
            raise ValueError("write on a closed aggregator")
        self._buffer.append(data)
        while len(self._buffer) >= self._block_size:
            block = self._buffer.take(self._block_size)
            self._flush_block(block)
            self.stats.flushed_blocks += 1
            self.stats.flushed_bytes += len(block)

    def flush(self) -> None:
        """Flush any buffered partial block immediately.

        Used by callers that need durability before the block fills (e.g. a
        file being closed, or an application calling ``flush()``); flushing
        a partial block means the next flush starts a new blob write, so the
        aggregator is normally left to its own pacing.
        """
        if len(self._buffer):
            block = self._buffer.take_all()
            self._flush_block(block)
            self.stats.flushed_blocks += 1
            self.stats.flushed_bytes += len(block)

    def close(self) -> None:
        """Flush the remaining bytes and refuse further writes."""
        if self._closed:
            return
        self.flush()
        self._closed = True
