"""Simulated MapReduce execution: job completion time at cluster scale.

Experiments E4 and E5 of the paper compare the completion time of two real
MapReduce applications (Random Text Writer and Distributed Grep) when
Hadoop runs over BSFS versus HDFS.  At Grid'5000 scale that cannot be
executed in process, so this module models a job's execution on the
simulated cluster:

* map tasks are scheduled onto task-tracker nodes with the same greedy
  locality preference as the functional engine (a task prefers a node that
  holds its input block);
* each map task reads its input range from the simulated storage system,
  spends a configurable amount of CPU time, and writes its output through
  the same storage system;
* reduce tasks start once every map finished (Hadoop's barrier), fetch
  their share of the intermediate data from the nodes that ran the maps,
  and write their output files;
* every node offers a fixed number of task slots, so tasks execute in
  waves exactly like a real Hadoop deployment.

The factory helpers :func:`random_text_writer_spec` and
:func:`distributed_grep_spec` build the two applications' job specs with
the paper's characteristics (write-only maps for the former, read-dominated
maps with a tiny reduce output for the latter).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from .engine import SimulationEngine
from .network import FlowNetwork
from .storage_models import SimulatedStorage, TransferSpec
from .topology import ClusterTopology

__all__ = [
    "SimMapTask",
    "SimReduceTask",
    "SimJobSpec",
    "SimJobResult",
    "simulate_job",
    "random_text_writer_spec",
    "distributed_grep_spec",
]


@dataclass(frozen=True, slots=True)
class SimMapTask:
    """One simulated map task."""

    task_id: int
    input_file: str | None
    input_offset: int
    input_length: int
    output_bytes: int
    compute_seconds: float = 0.0


@dataclass(frozen=True, slots=True)
class SimReduceTask:
    """One simulated reduce task."""

    task_id: int
    shuffle_bytes: int
    output_bytes: int
    compute_seconds: float = 0.0


@dataclass
class SimJobSpec:
    """A complete simulated job."""

    name: str
    map_tasks: list[SimMapTask]
    reduce_tasks: list[SimReduceTask] = field(default_factory=list)
    slots_per_node: int = 2


@dataclass
class SimJobResult:
    """Timing breakdown of one simulated job execution."""

    job_name: str
    system: str
    completion_time: float
    map_phase_time: float
    reduce_phase_time: float
    map_tasks: int
    reduce_tasks: int
    node_local_maps: int

    @property
    def locality_ratio(self) -> float:
        """Fraction of map tasks scheduled on a node holding their input."""
        return self.node_local_maps / self.map_tasks if self.map_tasks else 0.0

    def as_row(self) -> dict[str, float | int | str]:
        """One row of the application benchmark tables."""
        return {
            "job": self.job_name,
            "system": self.system,
            "completion_time_s": round(self.completion_time, 2),
            "map_phase_s": round(self.map_phase_time, 2),
            "reduce_phase_s": round(self.reduce_phase_time, 2),
            "maps": self.map_tasks,
            "reduces": self.reduce_tasks,
            "locality": round(self.locality_ratio, 2),
        }


class _TaskRunner:
    """Drives one task through read -> compute -> write on the flow network."""

    def __init__(
        self,
        network: FlowNetwork,
        *,
        node: int,
        read_steps: list[list[TransferSpec]],
        compute_seconds: float,
        write_steps_factory,
        on_done,
    ) -> None:
        self._network = network
        self._node = node
        self._read_steps = read_steps
        self._compute_seconds = compute_seconds
        self._write_steps_factory = write_steps_factory
        self._on_done = on_done
        self._phase = "read"
        self._step_index = 0
        self._outstanding = 0
        self._write_steps: list[list[TransferSpec]] | None = None

    def start(self) -> None:
        """Begin the task at the current simulated time."""
        self._advance()

    def _advance(self) -> None:
        engine = self._network.engine
        if self._phase == "read":
            if self._step_index < len(self._read_steps):
                self._launch(self._read_steps[self._step_index])
                self._step_index += 1
                return
            self._phase = "compute"
            engine.schedule(self._compute_seconds, self._after_compute)
            return
        if self._phase == "write":
            assert self._write_steps is not None
            if self._step_index < len(self._write_steps):
                self._launch(self._write_steps[self._step_index])
                self._step_index += 1
                return
            self._on_done()

    def _after_compute(self) -> None:
        self._phase = "write"
        self._step_index = 0
        self._write_steps = self._write_steps_factory()
        self._advance()

    def _launch(self, transfers: list[TransferSpec]) -> None:
        if not transfers:
            self._advance()
            return
        self._outstanding = len(transfers)
        for spec in transfers:
            self._network.start_transfer(
                spec.src,
                spec.dst,
                spec.nbytes,
                src_disk=spec.src_disk,
                dst_disk=spec.dst_disk,
                on_complete=self._transfer_done,
            )

    def _transfer_done(self, _flow) -> None:
        self._outstanding -= 1
        if self._outstanding == 0:
            self._advance()


def _schedule_map_tasks(
    storage: SimulatedStorage,
    tasks: Sequence[SimMapTask],
    nodes: Sequence[int],
    slots_per_node: int,
) -> tuple[dict[int, int], int]:
    """Assign map tasks to nodes, preferring nodes that hold the input block.

    Returns ``(task id -> node, number of node-local assignments)``.  The
    greedy pass mirrors the functional scheduler: walk the tasks, place each
    on the least-loaded of its local candidates unless that candidate is
    already clearly busier than the cluster average, else on the least
    loaded node overall.
    """
    load = {node: 0 for node in nodes}
    node_set = set(nodes)
    assignment: dict[int, int] = {}
    node_local = 0
    for task in tasks:
        candidates: list[int] = []
        if task.input_file is not None and storage.file_blocks(task.input_file):
            block_index = min(
                task.input_offset // storage.block_size,
                storage.file_blocks(task.input_file) - 1,
            )
            candidates = [
                n for n in storage.block_hosts(task.input_file, block_index) if n in node_set
            ]
        chosen: int | None = None
        if candidates:
            best = min(candidates, key=lambda n: load[n])
            if load[best] <= min(load.values()) + slots_per_node:
                chosen = best
        if chosen is None:
            chosen = min(nodes, key=lambda n: load[n])
        if candidates and chosen in candidates:
            node_local += 1
        load[chosen] += 1
        assignment[task.task_id] = chosen
    return assignment, node_local


def simulate_job(
    topology: ClusterTopology,
    storage: SimulatedStorage,
    spec: SimJobSpec,
    *,
    tasktracker_nodes: Sequence[int] | None = None,
) -> SimJobResult:
    """Execute ``spec`` on the simulated cluster and return its timing."""
    nodes = (
        list(tasktracker_nodes)
        if tasktracker_nodes is not None
        else [n.node_id for n in topology.nodes]
    )
    engine = SimulationEngine()
    network = FlowNetwork(topology, engine)
    assignment, node_local = _schedule_map_tasks(
        storage, spec.map_tasks, nodes, spec.slots_per_node
    )

    free_slots = {node: spec.slots_per_node for node in nodes}
    pending_by_node: dict[int, list[SimMapTask]] = {node: [] for node in nodes}
    for task in spec.map_tasks:
        pending_by_node[assignment[task.task_id]].append(task)
    maps_remaining = len(spec.map_tasks)
    map_finish_time = 0.0
    map_nodes_used: list[int] = []

    def _start_reduce_phase() -> None:
        nonlocal reduce_finish_time
        if not spec.reduce_tasks:
            return
        reduce_nodes = nodes[: max(len(spec.reduce_tasks), 1)]
        sources = map_nodes_used or nodes
        remaining = {"count": len(spec.reduce_tasks)}
        for index, reduce_task in enumerate(spec.reduce_tasks):
            node = reduce_nodes[index % len(reduce_nodes)]
            shuffle_steps: list[list[TransferSpec]] = []
            if reduce_task.shuffle_bytes > 0 and sources:
                per_source = reduce_task.shuffle_bytes / len(sources)
                shuffle_steps = [
                    [
                        TransferSpec(
                            src=source,
                            dst=node,
                            nbytes=per_source,
                            src_disk=True,
                            dst_disk=False,
                        )
                        for source in sources
                    ]
                ]

            def _write_factory(n=node, rt=reduce_task):
                if rt.output_bytes <= 0:
                    return []
                specs = storage.write_block(
                    n, f"{spec.name}-reduce-out-{rt.task_id}", rt.output_bytes
                )
                return [specs]

            def _reduce_done() -> None:
                nonlocal reduce_finish_time
                remaining["count"] -= 1
                reduce_finish_time = engine.now

            runner = _TaskRunner(
                network,
                node=node,
                read_steps=shuffle_steps,
                compute_seconds=reduce_task.compute_seconds,
                write_steps_factory=_write_factory,
                on_done=_reduce_done,
            )
            engine.schedule(0.0, runner.start)

    reduce_finish_time = 0.0

    def _maybe_start_next(node: int) -> None:
        nonlocal maps_remaining, map_finish_time
        while free_slots[node] > 0 and pending_by_node[node]:
            task = pending_by_node[node].pop(0)
            free_slots[node] -= 1
            read_steps: list[list[TransferSpec]] = []
            if task.input_file is not None and task.input_length > 0:
                read_steps = storage.read_range(
                    node, task.input_file, task.input_offset, task.input_length
                )

            def _write_factory(n=node, t=task):
                if t.output_bytes <= 0:
                    return []
                remaining_bytes = t.output_bytes
                steps = []
                while remaining_bytes > 0:
                    chunk = min(storage.block_size, remaining_bytes)
                    steps.append(
                        storage.write_block(n, f"{spec.name}-map-out-{t.task_id}", chunk)
                    )
                    remaining_bytes -= chunk
                return steps

            def _map_done(n=node, t=task) -> None:
                nonlocal maps_remaining, map_finish_time
                free_slots[n] += 1
                maps_remaining -= 1
                map_finish_time = engine.now
                map_nodes_used.append(n)
                if maps_remaining == 0:
                    _start_reduce_phase()
                else:
                    _maybe_start_next(n)

            runner = _TaskRunner(
                network,
                node=node,
                read_steps=read_steps,
                compute_seconds=task.compute_seconds,
                write_steps_factory=_write_factory,
                on_done=_map_done,
            )
            engine.schedule(0.0, runner.start)

    for node in nodes:
        engine.schedule(0.0, _maybe_start_next, node)
    engine.run()

    completion = max(map_finish_time, reduce_finish_time)
    return SimJobResult(
        job_name=spec.name,
        system=storage.name,
        completion_time=completion,
        map_phase_time=map_finish_time,
        reduce_phase_time=max(reduce_finish_time - map_finish_time, 0.0),
        map_tasks=len(spec.map_tasks),
        reduce_tasks=len(spec.reduce_tasks),
        node_local_maps=node_local,
    )


# ------------------------------------------------------------------- job spec factories
def random_text_writer_spec(
    *,
    num_map_tasks: int,
    bytes_per_map: int,
    compute_seconds_per_map: float = 2.0,
    slots_per_node: int = 2,
) -> SimJobSpec:
    """E4 — Random Text Writer: map-only, every map writes ``bytes_per_map``."""
    maps = [
        SimMapTask(
            task_id=i,
            input_file=None,
            input_offset=0,
            input_length=0,
            output_bytes=bytes_per_map,
            compute_seconds=compute_seconds_per_map,
        )
        for i in range(num_map_tasks)
    ]
    return SimJobSpec(
        name="random-text-writer", map_tasks=maps, reduce_tasks=[], slots_per_node=slots_per_node
    )


def distributed_grep_spec(
    storage: SimulatedStorage,
    *,
    input_file: str,
    input_bytes: int,
    writer_node: int,
    num_reduce_tasks: int = 1,
    match_fraction: float = 1e-4,
    compute_seconds_per_map: float = 1.0,
    slots_per_node: int = 2,
) -> SimJobSpec:
    """E5 — Distributed Grep over one huge input file.

    The input file is laid out on ``storage`` (as written by
    ``writer_node``) and split into block-sized map inputs; each map emits a
    tiny fraction of its input as matches, which one (or a few) reducers
    aggregate into a small output file.
    """
    storage.populate_file(input_file, input_bytes, writer_node)
    maps: list[SimMapTask] = []
    offset = 0
    task_id = 0
    while offset < input_bytes:
        length = min(storage.block_size, input_bytes - offset)
        maps.append(
            SimMapTask(
                task_id=task_id,
                input_file=input_file,
                input_offset=offset,
                input_length=length,
                output_bytes=0,
                compute_seconds=compute_seconds_per_map,
            )
        )
        offset += length
        task_id += 1
    match_bytes = int(input_bytes * match_fraction)
    reduces = [
        SimReduceTask(
            task_id=i,
            shuffle_bytes=match_bytes // max(num_reduce_tasks, 1),
            output_bytes=max(match_bytes // max(num_reduce_tasks, 1), 1),
            compute_seconds=0.5,
        )
        for i in range(num_reduce_tasks)
    ]
    return SimJobSpec(
        name="distributed-grep",
        map_tasks=maps,
        reduce_tasks=reduces,
        slots_per_node=slots_per_node,
    )
