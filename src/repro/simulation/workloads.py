"""Microbenchmark workload drivers for the simulated cluster.

These drivers reproduce the three access patterns of the paper's
microbenchmarks (Section IV.B) plus the concurrent-append extension of
Section V, at Grid'5000 scale:

* :func:`run_write_different_files`  — "clients concurrently writing to
  different files" (the Reduce-phase pattern, experiment E3);
* :func:`run_read_different_files`   — "clients concurrently reading from
  different files" (Map-phase pattern, E1);
* :func:`run_read_same_file`         — "clients concurrently reading
  non-overlapping parts of the same huge file" (Map-phase pattern, E2);
* :func:`run_append_same_file`       — concurrent appends to a single file
  (E6, BSFS only — the capability HDFS lacks).

Each driver builds a fresh discrete-event engine and flow network, creates
one simulated client per requested concurrency level, and lets every client
move its data block by block (a client starts its next block only when the
previous one finished, like the real Hadoop/BlobSeer client libraries).
The result is a :class:`ThroughputResult` carrying per-client and aggregate
throughput — the quantities the paper's figures plot against the number of
concurrent clients.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from .engine import SimulationEngine
from .network import FlowNetwork
from .storage_models import SimulatedStorage, TransferSpec
from .topology import ClusterTopology, MBps

__all__ = [
    "ClientResult",
    "ThroughputResult",
    "run_write_different_files",
    "run_read_different_files",
    "run_read_same_file",
    "run_append_same_file",
]


@dataclass
class ClientResult:
    """Outcome of one simulated client."""

    client_id: int
    node: int
    total_bytes: float
    started_at: float = 0.0
    finished_at: float = 0.0

    @property
    def duration(self) -> float:
        """Seconds the client needed to move all of its data."""
        return max(self.finished_at - self.started_at, 0.0)

    @property
    def throughput_mbps(self) -> float:
        """Per-client throughput in MiB/s (the paper's y-axis unit)."""
        if self.duration <= 0:
            return 0.0
        return self.total_bytes / self.duration / MBps


@dataclass
class ThroughputResult:
    """Outcome of one microbenchmark run (one point of a paper figure)."""

    system: str
    pattern: str
    num_clients: int
    bytes_per_client: float
    clients: list[ClientResult] = field(default_factory=list)
    makespan: float = 0.0

    @property
    def aggregate_throughput_mbps(self) -> float:
        """Total data moved divided by the time until the last client finished."""
        total = sum(c.total_bytes for c in self.clients)
        if self.makespan <= 0:
            return 0.0
        return total / self.makespan / MBps

    @property
    def mean_client_throughput_mbps(self) -> float:
        """Average of the per-client throughputs (the paper's main metric)."""
        if not self.clients:
            return 0.0
        return sum(c.throughput_mbps for c in self.clients) / len(self.clients)

    @property
    def min_client_throughput_mbps(self) -> float:
        """Slowest client's throughput."""
        if not self.clients:
            return 0.0
        return min(c.throughput_mbps for c in self.clients)

    def as_row(self) -> dict[str, float | int | str]:
        """One row of the benchmark report tables."""
        return {
            "system": self.system,
            "pattern": self.pattern,
            "clients": self.num_clients,
            "per_client_MBps": round(self.mean_client_throughput_mbps, 2),
            "aggregate_MBps": round(self.aggregate_throughput_mbps, 2),
            "makespan_s": round(self.makespan, 2),
        }


# --------------------------------------------------------------------------- driver
class _SimClient:
    """State machine advancing one client through its sequence of block steps.

    Each *step* is a thunk returning the transfers of one block; the next
    step starts when every transfer of the current one has completed.
    """

    def __init__(
        self,
        result: ClientResult,
        steps: list[Callable[[], list[TransferSpec]]],
        network: FlowNetwork,
        on_done: Callable[["_SimClient"], None],
    ) -> None:
        self.result = result
        self._steps = steps
        self._network = network
        self._on_done = on_done
        self._current = 0
        self._outstanding = 0

    def start(self) -> None:
        """Begin the client's first step at the current simulated time."""
        self.result.started_at = self._network.engine.now
        self._next_step()

    def _next_step(self) -> None:
        if self._current >= len(self._steps):
            self.result.finished_at = self._network.engine.now
            self._on_done(self)
            return
        transfers = self._steps[self._current]()
        self._current += 1
        if not transfers:
            self._next_step()
            return
        self._outstanding = len(transfers)
        for spec in transfers:
            self._network.start_transfer(
                spec.src,
                spec.dst,
                spec.nbytes,
                src_disk=spec.src_disk,
                dst_disk=spec.dst_disk,
                on_complete=self._transfer_done,
            )

    def _transfer_done(self, _flow) -> None:
        self._outstanding -= 1
        if self._outstanding == 0:
            self._next_step()


def _run_clients(
    topology: ClusterTopology,
    storage: SimulatedStorage,
    pattern: str,
    client_plans: list[tuple[int, list[Callable[[], list[TransferSpec]]], float]],
) -> ThroughputResult:
    """Execute one client plan list on a fresh engine and collect the result."""
    engine = SimulationEngine()
    network = FlowNetwork(topology, engine)
    result = ThroughputResult(
        system=storage.name,
        pattern=pattern,
        num_clients=len(client_plans),
        bytes_per_client=client_plans[0][2] if client_plans else 0.0,
    )
    finished: list[_SimClient] = []

    def _done(client: _SimClient) -> None:
        finished.append(client)

    clients: list[_SimClient] = []
    for client_id, (node, steps, total_bytes) in enumerate(client_plans):
        client_result = ClientResult(
            client_id=client_id, node=node, total_bytes=total_bytes
        )
        result.clients.append(client_result)
        clients.append(_SimClient(client_result, steps, network, _done))
    for client in clients:
        engine.schedule(0.0, client.start)
    engine.run()
    result.makespan = max((c.finished_at for c in result.clients), default=0.0)
    return result


def _client_nodes(
    topology: ClusterTopology, num_clients: int, offset: int = 0
) -> list[int]:
    """Co-deploy clients on the cluster nodes round-robin (the paper's setup)."""
    nodes = [n.node_id for n in topology.nodes]
    return [nodes[(i + offset) % len(nodes)] for i in range(num_clients)]


def _blocks_of(total_bytes: int, block_size: int) -> list[int]:
    sizes = []
    remaining = total_bytes
    while remaining > 0:
        sizes.append(min(block_size, remaining))
        remaining -= block_size
    return sizes


# ------------------------------------------------------------------ E3: write distinct
def run_write_different_files(
    topology: ClusterTopology,
    storage: SimulatedStorage,
    *,
    num_clients: int,
    bytes_per_client: int,
    client_nodes: Sequence[int] | None = None,
) -> ThroughputResult:
    """E3 — every client writes its own file of ``bytes_per_client`` bytes."""
    nodes = (
        list(client_nodes)
        if client_nodes is not None
        else _client_nodes(topology, num_clients)
    )
    plans = []
    for client_id, node in enumerate(nodes):
        file_id = f"write-{client_id}"
        steps = [
            (lambda n=node, f=file_id, b=block: storage.write_block(n, f, b))
            for block in _blocks_of(bytes_per_client, storage.block_size)
        ]
        plans.append((node, steps, float(bytes_per_client)))
    return _run_clients(topology, storage, "write_different_files", plans)


# ------------------------------------------------------------------- E1: read distinct
def run_read_different_files(
    topology: ClusterTopology,
    storage: SimulatedStorage,
    *,
    num_clients: int,
    bytes_per_client: int,
    client_nodes: Sequence[int] | None = None,
    shuffle_readers: bool = True,
    layout_seed: int = 0x5EED,
) -> ThroughputResult:
    """E1 — every client reads its own (pre-existing) file.

    The input files are laid out beforehand by the system's own placement
    policy.  With ``shuffle_readers`` (the default) each file was written
    from a pseudo-randomly chosen cluster node — the common case for map
    tasks processing a dataset produced by an earlier job, where several
    files can happen to have been written from the same node (for HDFS this
    concentrates those whole files on that node).  Set it to ``False`` to
    model readers consuming files they wrote themselves.
    """
    import random

    nodes = (
        list(client_nodes)
        if client_nodes is not None
        else _client_nodes(topology, num_clients)
    )
    rng = random.Random(layout_seed)
    all_nodes = [n.node_id for n in topology.nodes]
    for client_id in range(num_clients):
        if shuffle_readers:
            writer = rng.choice(all_nodes)
        else:
            writer = nodes[client_id]
        storage.populate_file(f"read-{client_id}", bytes_per_client, writer)
    plans = []
    for client_id, node in enumerate(nodes):
        file_id = f"read-{client_id}"
        num_blocks = storage.file_blocks(file_id)
        steps = [
            (lambda n=node, f=file_id, i=index: storage.read_block(n, f, i))
            for index in range(num_blocks)
        ]
        plans.append((node, steps, float(bytes_per_client)))
    return _run_clients(topology, storage, "read_different_files", plans)


# ------------------------------------------------------------------- E2: read same file
def run_read_same_file(
    topology: ClusterTopology,
    storage: SimulatedStorage,
    *,
    num_clients: int,
    bytes_per_client: int,
    client_nodes: Sequence[int] | None = None,
    writer_node: int | None = None,
) -> ThroughputResult:
    """E2 — clients read disjoint parts of one huge shared file.

    The file (``num_clients * bytes_per_client`` bytes) is laid out
    beforehand as if written by ``writer_node`` (default: node 0) — for
    HDFS that concentrates a replica of every block on the writer, which is
    precisely the hotspot the paper blames for HDFS's degradation.
    """
    nodes = (
        list(client_nodes)
        if client_nodes is not None
        else _client_nodes(topology, num_clients)
    )
    writer = writer_node if writer_node is not None else topology.nodes[0].node_id
    file_id = "shared-input"
    total = num_clients * bytes_per_client
    storage.populate_file(file_id, total, writer)
    plans = []
    for client_id, node in enumerate(nodes):
        offset = client_id * bytes_per_client
        block_steps = storage.read_range(node, file_id, offset, bytes_per_client)
        steps = [
            (lambda specs=specs: specs)
            for specs in block_steps
        ]
        plans.append((node, steps, float(bytes_per_client)))
    return _run_clients(topology, storage, "read_same_file", plans)


# ------------------------------------------------------------------ E6: append same file
def run_append_same_file(
    topology: ClusterTopology,
    storage: SimulatedStorage,
    *,
    num_clients: int,
    bytes_per_client: int,
    client_nodes: Sequence[int] | None = None,
) -> ThroughputResult:
    """E6 — clients append concurrently to one shared file (BSFS capability).

    Every appended block lands in the same logical file; the storage model
    places each block independently (BlobSeer assigns disjoint offsets per
    appender through its version manager, so appenders never wait for each
    other's data transfers).
    """
    nodes = (
        list(client_nodes)
        if client_nodes is not None
        else _client_nodes(topology, num_clients)
    )
    file_id = "shared-append"
    plans = []
    for client_id, node in enumerate(nodes):
        steps = [
            (lambda n=node, b=block: storage.write_block(n, file_id, b))
            for block in _blocks_of(bytes_per_client, storage.block_size)
        ]
        plans.append((node, steps, float(bytes_per_client)))
    return _run_clients(topology, storage, "append_same_file", plans)
