"""Cluster topology: nodes, racks and the capacities of their resources.

The paper's experiments ran on Grid'5000, "a large-scale experimental grid
platform, with an infrastructure geographically distributed on 9 different
sites in France", using 270 nodes with both the storage layer (BSFS or
HDFS) and the clients co-deployed.  :func:`grid5000_like` builds a topology
with that shape; the hardware figures (1 Gb/s NICs, ~10 Gb/s site uplinks,
~60-70 MB/s commodity disks) are representative of the 2009-era clusters
the paper used and can all be overridden.

Every node exposes four simulated resources — disk read, disk write, NIC in
and NIC out — and every rack two (uplink in/out); the flow-level network
model shares their capacities max-min fairly among concurrent transfers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["MBps", "NodeSpec", "RackSpec", "ClusterTopology", "grid5000_like", "small_cluster"]

#: One megabyte per second, the bandwidth unit used throughout the simulator.
MBps = 1024.0 * 1024.0


@dataclass(frozen=True, slots=True)
class NodeSpec:
    """Static description of one cluster node."""

    node_id: int
    host: str
    rack: str
    disk_read_bw: float
    disk_write_bw: float
    nic_in_bw: float
    nic_out_bw: float

    def resource(self, kind: str) -> str:
        """Resource id of one of the node's four capacities."""
        return f"node:{self.node_id}:{kind}"


@dataclass(frozen=True, slots=True)
class RackSpec:
    """Static description of one rack (or Grid'5000 site)."""

    name: str
    uplink_in_bw: float
    uplink_out_bw: float

    def resource(self, direction: str) -> str:
        """Resource id of the rack uplink in the given direction (``in``/``out``)."""
        return f"rack:{self.name}:{direction}"


@dataclass
class ClusterTopology:
    """A set of nodes grouped into racks, plus per-resource capacities."""

    nodes: list[NodeSpec] = field(default_factory=list)
    racks: dict[str, RackSpec] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._by_id = {n.node_id: n for n in self.nodes}
        self._by_host = {n.host: n for n in self.nodes}

    # -- lookups ----------------------------------------------------------------------
    def node(self, node_id: int) -> NodeSpec:
        """Node by id."""
        return self._by_id[node_id]

    def node_by_host(self, host: str) -> NodeSpec:
        """Node by host name."""
        return self._by_host[host]

    def rack_of(self, node_id: int) -> RackSpec:
        """Rack of a node."""
        return self.racks[self.node(node_id).rack]

    @property
    def num_nodes(self) -> int:
        """Number of nodes in the topology."""
        return len(self.nodes)

    def hosts(self) -> list[str]:
        """Host names of every node (in node-id order)."""
        return [n.host for n in sorted(self.nodes, key=lambda n: n.node_id)]

    def same_rack(self, a: int, b: int) -> bool:
        """Whether two nodes share a rack."""
        return self.node(a).rack == self.node(b).rack

    # -- resource capacities ------------------------------------------------------------
    def resource_capacities(self) -> dict[str, float]:
        """Map every resource id to its capacity in bytes/second."""
        capacities: dict[str, float] = {}
        for node in self.nodes:
            capacities[node.resource("disk_read")] = node.disk_read_bw
            capacities[node.resource("disk_write")] = node.disk_write_bw
            capacities[node.resource("nic_in")] = node.nic_in_bw
            capacities[node.resource("nic_out")] = node.nic_out_bw
        for rack in self.racks.values():
            capacities[rack.resource("in")] = rack.uplink_in_bw
            capacities[rack.resource("out")] = rack.uplink_out_bw
        return capacities

    def transfer_path(
        self,
        src: int,
        dst: int,
        *,
        src_disk: bool = True,
        dst_disk: bool = True,
    ) -> list[str]:
        """Resource ids traversed by a transfer from ``src`` to ``dst``.

        A local transfer (``src == dst``) only touches the node's disks; a
        remote one adds both NICs and, across racks, both rack uplinks.
        ``src_disk``/``dst_disk`` model whether the data actually touches
        the disk at each end (a client generating synthetic data, or
        discarding what it reads, does not).
        """
        src_node = self.node(src)
        dst_node = self.node(dst)
        path: list[str] = []
        if src_disk:
            path.append(src_node.resource("disk_read"))
        if src != dst:
            path.append(src_node.resource("nic_out"))
            if src_node.rack != dst_node.rack:
                path.append(self.racks[src_node.rack].resource("out"))
                path.append(self.racks[dst_node.rack].resource("in"))
            path.append(dst_node.resource("nic_in"))
        if dst_disk:
            path.append(dst_node.resource("disk_write"))
        return path


def _build(
    num_nodes: int,
    num_racks: int,
    *,
    disk_read_bw: float,
    disk_write_bw: float,
    nic_bw: float,
    uplink_bw: float,
) -> ClusterTopology:
    nodes = [
        NodeSpec(
            node_id=i,
            host=f"node-{i}",
            rack=f"rack-{i % num_racks}",
            disk_read_bw=disk_read_bw,
            disk_write_bw=disk_write_bw,
            nic_in_bw=nic_bw,
            nic_out_bw=nic_bw,
        )
        for i in range(num_nodes)
    ]
    racks = {
        f"rack-{r}": RackSpec(
            name=f"rack-{r}", uplink_in_bw=uplink_bw, uplink_out_bw=uplink_bw
        )
        for r in range(num_racks)
    }
    return ClusterTopology(nodes=nodes, racks=racks)


def grid5000_like(
    *,
    num_nodes: int = 270,
    num_racks: int = 9,
    disk_read_bw: float = 70 * MBps,
    disk_write_bw: float = 60 * MBps,
    nic_bw: float = 117 * MBps,
    uplink_bw: float = 1200 * MBps,
) -> ClusterTopology:
    """Topology modelled on the paper's Grid'5000 deployment.

    270 nodes over 9 sites (racks), 1 Gb/s NICs (~117 MB/s of goodput),
    ~10 Gb/s site uplinks and 2009-era commodity SATA disks.
    """
    return _build(
        num_nodes,
        num_racks,
        disk_read_bw=disk_read_bw,
        disk_write_bw=disk_write_bw,
        nic_bw=nic_bw,
        uplink_bw=uplink_bw,
    )


def small_cluster(
    *,
    num_nodes: int = 16,
    num_racks: int = 4,
    disk_read_bw: float = 70 * MBps,
    disk_write_bw: float = 60 * MBps,
    nic_bw: float = 117 * MBps,
    uplink_bw: float = 1200 * MBps,
) -> ClusterTopology:
    """A small topology for tests and quick benchmark runs."""
    return _build(
        num_nodes,
        num_racks,
        disk_read_bw=disk_read_bw,
        disk_write_bw=disk_write_bw,
        nic_bw=nic_bw,
        uplink_bw=uplink_bw,
    )
