"""Simulated storage systems: BSFS and HDFS data paths at cluster scale.

The paper's evaluation runs on 270 nodes with up to 250 concurrent clients
moving a gigabyte each — far beyond what the in-process functional layer
can execute for real.  These models reproduce the *data movement* of each
system on the flow-level cluster simulator while taking their placement
decisions from the very same policy code the functional layer uses:

* :class:`SimulatedBSFS` allocates page stripes with
  :class:`repro.core.provider_manager.LoadBalancedStrategy` (or any other
  core strategy), so a write fans out across the least-loaded providers
  exactly as the real provider manager would spread it;
* :class:`SimulatedHDFS` places block replicas with
  :class:`repro.hdfs.block_placement.DefaultPlacementPolicy` (first replica
  on the writer's node, second in the same rack, third in a remote rack)
  and reads from the closest replica.

Both expose the same small interface — ``write_block``, ``read_block``,
``populate_file``, ``block_hosts`` — consumed by the microbenchmark drivers
(:mod:`repro.simulation.workloads`) and the MapReduce completion-time model
(:mod:`repro.simulation.mapreduce_model`).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Sequence

from ..core.provider import ProviderStats
from ..core.provider_manager import AllocationStrategy, LoadBalancedStrategy
from ..hdfs.block_placement import BlockPlacementPolicy, DefaultPlacementPolicy
from ..hdfs.datanode import DataNode
from .topology import ClusterTopology

__all__ = ["TransferSpec", "SimulatedStorage", "SimulatedBSFS", "SimulatedHDFS"]

#: Default Hadoop block size used by the simulated workloads (64 MiB).
DEFAULT_BLOCK_SIZE = 64 * 1024 * 1024


@dataclass(frozen=True, slots=True)
class TransferSpec:
    """One data movement required by a storage operation."""

    src: int
    dst: int
    nbytes: float
    src_disk: bool
    dst_disk: bool


class SimulatedStorage(ABC):
    """Interface of a simulated storage system."""

    #: Human-readable system name used in benchmark reports.
    name: str = "storage"

    def __init__(
        self,
        topology: ClusterTopology,
        *,
        storage_nodes: Sequence[int] | None = None,
        block_size: int = DEFAULT_BLOCK_SIZE,
        replication: int = 1,
    ) -> None:
        self.topology = topology
        self.storage_nodes: list[int] = (
            list(storage_nodes)
            if storage_nodes is not None
            else [n.node_id for n in topology.nodes]
        )
        if not self.storage_nodes:
            raise ValueError("a simulated storage system needs storage nodes")
        if replication < 1:
            raise ValueError("replication must be at least 1")
        if replication > len(self.storage_nodes):
            raise ValueError("replication cannot exceed the number of storage nodes")
        self.block_size = block_size
        self.replication = replication
        #: ``file_id -> list`` of per-block placements (model specific records).
        self._files: dict[str, list] = {}
        #: Per-node counters used for replica selection and reporting.
        self._read_load: dict[int, int] = {n: 0 for n in self.storage_nodes}
        self._write_load: dict[int, int] = {n: 0 for n in self.storage_nodes}

    # -- abstract placement hooks --------------------------------------------------
    @abstractmethod
    def _place_block(self, client: int, nbytes: int) -> list:
        """Choose where one block's bytes go; returns a model-specific record."""

    @abstractmethod
    def _write_transfers(self, client: int, placement: list, nbytes: int) -> list[TransferSpec]:
        """Transfers needed to write one placed block."""

    @abstractmethod
    def _read_transfers(self, client: int, placement: list, nbytes: int) -> list[TransferSpec]:
        """Transfers needed to read one placed block back."""

    # -- shared bookkeeping ----------------------------------------------------------
    def file_blocks(self, file_id: str) -> int:
        """Number of blocks currently recorded for ``file_id``."""
        return len(self._files.get(file_id, []))

    def file_size(self, file_id: str) -> int:
        """Total bytes recorded for ``file_id``."""
        return sum(size for size, _ in self._files.get(file_id, []))

    def write_block(self, client: int, file_id: str, nbytes: int) -> list[TransferSpec]:
        """Place the next block of ``file_id`` and return its write transfers."""
        placement = self._place_block(client, nbytes)
        self._files.setdefault(file_id, []).append((nbytes, placement))
        return self._write_transfers(client, placement, nbytes)

    def read_block(self, client: int, file_id: str, block_index: int) -> list[TransferSpec]:
        """Return the transfers needed for ``client`` to read one block."""
        blocks = self._files.get(file_id)
        if not blocks:
            raise KeyError(f"unknown simulated file {file_id!r}")
        nbytes, placement = blocks[block_index % len(blocks)]
        return self._read_transfers(client, placement, nbytes)

    def read_range(
        self, client: int, file_id: str, offset: int, length: int
    ) -> list[list[TransferSpec]]:
        """Per-block transfer lists covering the byte range ``[offset, offset+length)``."""
        blocks = self._files.get(file_id)
        if blocks is None:
            raise KeyError(f"unknown simulated file {file_id!r}")
        result: list[list[TransferSpec]] = []
        position = 0
        end = offset + length
        for index, (nbytes, placement) in enumerate(blocks):
            block_start, block_end = position, position + nbytes
            position = block_end
            if block_end <= offset or block_start >= end:
                continue
            overlap = min(end, block_end) - max(offset, block_start)
            specs = self._read_transfers(client, placement, nbytes)
            scale = overlap / nbytes if nbytes else 0.0
            result.append(
                [
                    TransferSpec(
                        src=s.src,
                        dst=s.dst,
                        nbytes=s.nbytes * scale,
                        src_disk=s.src_disk,
                        dst_disk=s.dst_disk,
                    )
                    for s in specs
                ]
            )
        return result

    def populate_file(self, file_id: str, total_bytes: int, writer: int) -> None:
        """Record a pre-existing file (placement decided, no simulated time charged).

        Used by read-oriented experiments to lay out the input data exactly
        as the system under test would have written it.
        """
        remaining = total_bytes
        self._files[file_id] = []
        while remaining > 0:
            nbytes = min(self.block_size, remaining)
            placement = self._place_block(writer, nbytes)
            self._files[file_id].append((nbytes, placement))
            remaining -= nbytes

    @abstractmethod
    def block_hosts(self, file_id: str, block_index: int) -> list[int]:
        """Nodes holding (most of) one block — feeds locality-aware scheduling."""

    # -- reporting --------------------------------------------------------------------
    def storage_distribution(self) -> dict[int, int]:
        """Bytes-written counter per storage node (placement balance metric)."""
        return dict(self._write_load)


class SimulatedBSFS(SimulatedStorage):
    """BSFS/BlobSeer data path: page stripes spread by the load-balancing strategy."""

    name = "bsfs"

    def __init__(
        self,
        topology: ClusterTopology,
        *,
        storage_nodes: Sequence[int] | None = None,
        block_size: int = DEFAULT_BLOCK_SIZE,
        replication: int = 1,
        page_size: int = 64 * 1024,
        fragments_per_block: int | None = None,
        strategy: AllocationStrategy | None = None,
        seed: int = 0,
    ) -> None:
        """``fragments_per_block`` bounds how many providers one client block
        fans out to concurrently (the client's effective stripe width).  The
        default — every storage node, capped at 32 — mirrors BlobSeer's
        behaviour of striping a large write's pages over the whole provider
        pool."""
        super().__init__(
            topology,
            storage_nodes=storage_nodes,
            block_size=block_size,
            replication=replication,
        )
        if fragments_per_block is None:
            fragments_per_block = min(32, len(self.storage_nodes))
        if fragments_per_block < 1:
            raise ValueError("fragments_per_block must be at least 1")
        self.page_size = page_size
        self.fragments_per_block = fragments_per_block
        self._strategy = strategy or LoadBalancedStrategy(seed=seed)
        #: Simulated page count per provider node, consumed by the strategy.
        self._pages_stored: dict[int, int] = {n: 0 for n in self.storage_nodes}
        self._pages_written: dict[int, int] = {n: 0 for n in self.storage_nodes}

    def _provider_stats(self) -> list[ProviderStats]:
        return [
            ProviderStats(
                provider_id=node,
                pages_stored=self._pages_stored[node],
                bytes_stored=self._pages_stored[node] * self.page_size,
                pages_written=self._pages_written[node],
                pages_read=self._read_load[node],
                bytes_written=0,
                bytes_read=0,
                available=True,
            )
            for node in self.storage_nodes
        ]

    def _place_block(self, client: int, nbytes: int) -> list:
        """Split the block into fragments and place each with the real strategy."""
        num_pages = max((nbytes + self.page_size - 1) // self.page_size, 1)
        fragments = min(self.fragments_per_block, num_pages)
        pages_per_fragment = num_pages / fragments
        pending: dict[int, int] = {}
        placement: list[tuple[float, tuple[int, ...]]] = []
        stats = self._provider_stats()
        for fragment in range(fragments):
            replicas = tuple(
                self._strategy.select(
                    stats,
                    self.replication,
                    client_hint=client,
                    pending=pending,
                )
            )
            fragment_bytes = nbytes / fragments
            placement.append((fragment_bytes, replicas))
            for node in replicas:
                pending[node] = pending.get(node, 0) + int(pages_per_fragment) + 1
        # Commit the simulated load: every replica of every fragment lands.
        for fragment_bytes, replicas in placement:
            for node in replicas:
                pages = max(int(round(fragment_bytes / self.page_size)), 1)
                self._pages_stored[node] += pages
                self._pages_written[node] += pages
                self._write_load[node] += int(fragment_bytes)
        return placement

    def _write_transfers(self, client: int, placement: list, nbytes: int) -> list[TransferSpec]:
        transfers: list[TransferSpec] = []
        for fragment_bytes, replicas in placement:
            for node in replicas:
                transfers.append(
                    TransferSpec(
                        src=client,
                        dst=node,
                        nbytes=fragment_bytes,
                        src_disk=False,
                        dst_disk=True,
                    )
                )
        return transfers

    def _read_transfers(self, client: int, placement: list, nbytes: int) -> list[TransferSpec]:
        transfers: list[TransferSpec] = []
        for fragment_bytes, replicas in placement:
            source = min(replicas, key=lambda node: self._read_load[node])
            self._read_load[source] += 1
            transfers.append(
                TransferSpec(
                    src=source,
                    dst=client,
                    nbytes=fragment_bytes,
                    src_disk=True,
                    dst_disk=False,
                )
            )
        return transfers

    def block_hosts(self, file_id: str, block_index: int) -> list[int]:
        nbytes, placement = self._files[file_id][block_index]
        bytes_per_node: dict[int, float] = {}
        for fragment_bytes, replicas in placement:
            for node in replicas:
                bytes_per_node[node] = bytes_per_node.get(node, 0.0) + fragment_bytes
        ranked = sorted(bytes_per_node.items(), key=lambda kv: (-kv[1], kv[0]))
        return [node for node, _ in ranked[:3]]


class SimulatedHDFS(SimulatedStorage):
    """HDFS data path: whole-block replicas placed by the rack-aware policy."""

    name = "hdfs"

    def __init__(
        self,
        topology: ClusterTopology,
        *,
        storage_nodes: Sequence[int] | None = None,
        block_size: int = DEFAULT_BLOCK_SIZE,
        replication: int = 1,
        policy: BlockPlacementPolicy | None = None,
        seed: int = 0,
    ) -> None:
        super().__init__(
            topology,
            storage_nodes=storage_nodes,
            block_size=block_size,
            replication=replication,
        )
        self._policy = policy or DefaultPlacementPolicy(seed=seed)
        # Lightweight datanode descriptors for the real placement policy.
        self._datanodes: dict[int, DataNode] = {
            node_id: DataNode(
                node_id,
                host=topology.node(node_id).host,
                rack=topology.node(node_id).rack,
            )
            for node_id in self.storage_nodes
        }

    def _place_block(self, client: int, nbytes: int) -> list:
        writer_host = self.topology.node(client).host
        targets = self._policy.choose_targets(
            list(self._datanodes.values()),
            self.replication,
            writer_host=writer_host,
        )
        placement = [d.node_id for d in targets]
        for node in placement:
            self._write_load[node] += nbytes
        return placement

    def _write_transfers(self, client: int, placement: list, nbytes: int) -> list[TransferSpec]:
        """The HDFS write pipeline: client -> replica 1 -> replica 2 -> ..."""
        transfers: list[TransferSpec] = []
        previous = client
        for index, node in enumerate(placement):
            transfers.append(
                TransferSpec(
                    src=previous,
                    dst=node,
                    nbytes=float(nbytes),
                    # Forwarding happens from memory as the block streams in.
                    src_disk=False,
                    dst_disk=True,
                )
            )
            previous = node
        return transfers

    def _read_transfers(self, client: int, placement: list, nbytes: int) -> list[TransferSpec]:
        source = self._closest_replica(client, placement)
        self._read_load[source] += 1
        return [
            TransferSpec(
                src=source,
                dst=client,
                nbytes=float(nbytes),
                src_disk=True,
                dst_disk=False,
            )
        ]

    def _closest_replica(self, client: int, placement: list) -> int:
        client_rack = self.topology.node(client).rack

        def distance(node: int) -> tuple[int, int]:
            if node == client:
                return (0, self._read_load[node])
            if self.topology.node(node).rack == client_rack:
                return (1, self._read_load[node])
            return (2, self._read_load[node])

        return min(placement, key=distance)

    def block_hosts(self, file_id: str, block_index: int) -> list[int]:
        _nbytes, placement = self._files[file_id][block_index]
        return list(placement)
