"""Discrete-event simulation engine.

A minimal but complete event-driven kernel: events are callbacks scheduled
at absolute simulated times, executed in time order (FIFO for equal
timestamps), with support for cancellation.  The flow-level network model
(:mod:`repro.simulation.network`) and the workload drivers build on it.

The engine is deliberately simple — a binary heap of events — because the
experiments' event counts are modest (thousands of flow completions), and
simplicity keeps the simulated results easy to audit.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["Event", "SimulationEngine"]


@dataclass(order=True)
class Event:
    """One scheduled callback.  Ordering: time, then insertion sequence."""

    time: float
    seq: int
    callback: Callable[..., None] = field(compare=False)
    args: tuple[Any, ...] = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event so the engine skips it when its time comes."""
        self.cancelled = True


class SimulationEngine:
    """Priority-queue discrete-event scheduler."""

    def __init__(self) -> None:
        self._queue: list[Event] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._queue)

    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError("cannot schedule an event in the past")
        event = Event(self._now + delay, next(self._seq), callback, args)
        heapq.heappush(self._queue, event)
        return event

    def schedule_at(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute simulated time ``time``."""
        return self.schedule(max(time - self._now, 0.0), callback, *args)

    def run(self, *, until: float | None = None, max_events: int | None = None) -> float:
        """Run events until the queue drains (or a time/count limit is hit).

        Returns the simulated time of the last executed event.
        """
        executed = 0
        while self._queue:
            event = self._queue[0]
            if until is not None and event.time > until:
                self._now = until
                break
            heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            event.callback(*event.args)
            self._processed += 1
            executed += 1
            if max_events is not None and executed >= max_events:
                break
        return self._now

    def step(self) -> bool:
        """Execute exactly one (non-cancelled) event; returns ``False`` when empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            event.callback(*event.args)
            self._processed += 1
            return True
        return False

    def reset(self) -> None:
        """Clear the queue and rewind the clock (used between experiments)."""
        self._queue.clear()
        self._now = 0.0
        self._processed = 0
