"""Cluster simulation layer: Grid'5000-scale replay of the paper's experiments.

A discrete-event engine (:mod:`repro.simulation.engine`), a flow-level
network/disk model with max-min fair sharing (:mod:`repro.simulation.network`),
cluster topologies (:mod:`repro.simulation.topology`), simulated BSFS/HDFS
data paths driven by the functional layer's placement policies
(:mod:`repro.simulation.storage_models`), the paper's microbenchmark
workloads (:mod:`repro.simulation.workloads`) and a MapReduce job
completion-time model (:mod:`repro.simulation.mapreduce_model`).
"""

from .engine import Event, SimulationEngine
from .mapreduce_model import (
    SimJobResult,
    SimJobSpec,
    SimMapTask,
    SimReduceTask,
    distributed_grep_spec,
    random_text_writer_spec,
    simulate_job,
)
from .network import Flow, FlowNetwork, TransferStats
from .storage_models import (
    DEFAULT_BLOCK_SIZE,
    SimulatedBSFS,
    SimulatedHDFS,
    SimulatedStorage,
    TransferSpec,
)
from .topology import (
    ClusterTopology,
    MBps,
    NodeSpec,
    RackSpec,
    grid5000_like,
    small_cluster,
)
from .workloads import (
    ClientResult,
    ThroughputResult,
    run_append_same_file,
    run_read_different_files,
    run_read_same_file,
    run_write_different_files,
)

__all__ = [
    "SimulationEngine",
    "Event",
    "FlowNetwork",
    "Flow",
    "TransferStats",
    "ClusterTopology",
    "NodeSpec",
    "RackSpec",
    "MBps",
    "grid5000_like",
    "small_cluster",
    "SimulatedStorage",
    "SimulatedBSFS",
    "SimulatedHDFS",
    "TransferSpec",
    "DEFAULT_BLOCK_SIZE",
    "ThroughputResult",
    "ClientResult",
    "run_write_different_files",
    "run_read_different_files",
    "run_read_same_file",
    "run_append_same_file",
    "SimJobSpec",
    "SimJobResult",
    "SimMapTask",
    "SimReduceTask",
    "simulate_job",
    "random_text_writer_spec",
    "distributed_grep_spec",
    "DEFAULT_BLOCK_SIZE",
]
