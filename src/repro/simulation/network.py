"""Flow-level network/disk model with max-min fair bandwidth sharing.

Transfers are modelled as *fluid flows*: a flow has a byte size and a path
of resources (source disk, NICs, rack uplinks, destination disk) taken from
the :class:`~repro.simulation.topology.ClusterTopology`.  At any instant
every active flow receives a rate computed by **water-filling** (max-min
fairness): all unfrozen flows' rates grow together until one or more
resources saturate, the flows crossing them freeze at that level, and the
process repeats.  Whenever a flow starts or completes, rates are recomputed
and the completion events of the flows whose rate changed are rescheduled.

This fluid model is standard for storage/network simulation at this scale;
its key property for the paper's experiments is that it charges contention
where it actually happens — a single hot disk serving 200 readers gives
each of them 1/200th of its bandwidth, while 200 readers spread over 270
disks barely interfere.

Implementation note: the experiments run with thousands of concurrent
flows and tens of thousands of flow completions, so the two hot loops —
progress accounting and the water-filling itself — operate on NumPy arrays
indexed by a per-flow *row* (assigned when the flow starts, recycled when
it finishes).  Only flows whose rate actually changed get their completion
event rescheduled; for an unchanged rate the previously scheduled event
time remains exact.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from .engine import Event, SimulationEngine
from .topology import ClusterTopology

__all__ = ["Flow", "FlowNetwork", "TransferStats"]

_EPSILON = 1e-9
#: Maximum number of resources a path can traverse (disk, 2 NICs, 2 uplinks, disk).
_MAX_PATH = 6


@dataclass
class Flow:
    """One in-flight transfer."""

    flow_id: int
    src: int
    dst: int
    size: float
    path: tuple[str, ...]
    on_complete: Callable[["Flow"], None] | None = field(default=None, repr=False)
    rate: float = field(default=0.0)
    started_at: float = field(default=0.0)
    finished_at: float | None = field(default=None)
    completion_event: Event | None = field(default=None, repr=False)
    row: int = field(default=-1, repr=False)

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError("flow size cannot be negative")

    @property
    def elapsed(self) -> float | None:
        """Transfer duration, once finished."""
        if self.finished_at is None:
            return None
        return self.finished_at - self.started_at

    @property
    def throughput(self) -> float | None:
        """Average throughput in bytes/second, once finished."""
        if self.elapsed is None or self.elapsed <= 0:
            return None
        return self.size / self.elapsed


@dataclass(frozen=True, slots=True)
class TransferStats:
    """Summary of the transfers observed by a :class:`FlowNetwork`."""

    flows_completed: int
    bytes_transferred: float
    simulated_time: float

    @property
    def aggregate_throughput(self) -> float:
        """Total bytes moved divided by total simulated time."""
        if self.simulated_time <= 0:
            return 0.0
        return self.bytes_transferred / self.simulated_time


class FlowNetwork:
    """Manages active flows over a topology and drives their completion."""

    #: Relative rate change below which a flow's completion event is not
    #: rescheduled (bounds the timing error of the fluid model; see
    #: ``_recompute_rates``).
    RESCHEDULE_TOLERANCE = 0.02

    def __init__(self, topology: ClusterTopology, engine: SimulationEngine) -> None:
        self.topology = topology
        self.engine = engine
        self._capacities = topology.resource_capacities()
        # Dense integer indexing of resources; the last index is a dummy
        # "infinite" resource used to pad paths shorter than _MAX_PATH.
        self._resource_index: dict[str, int] = {
            name: index for index, name in enumerate(sorted(self._capacities))
        }
        self._num_resources = len(self._resource_index)
        self._dummy = self._num_resources
        capacity = np.zeros(self._num_resources + 1, dtype=np.float64)
        for name, index in self._resource_index.items():
            capacity[index] = self._capacities[name]
        capacity[self._dummy] = np.inf
        self._capacity_arr = capacity

        # Row-aligned flow state (grown on demand, rows recycled).
        initial_rows = 64
        self._paths = np.full((initial_rows, _MAX_PATH), self._dummy, dtype=np.int64)
        self._remaining = np.zeros(initial_rows, dtype=np.float64)
        self._rates = np.zeros(initial_rows, dtype=np.float64)
        self._scheduled_rates = np.zeros(initial_rows, dtype=np.float64)
        self._active = np.zeros(initial_rows, dtype=bool)
        self._flow_by_row: list[Flow | None] = [None] * initial_rows
        self._free_rows: list[int] = list(range(initial_rows))

        self._flows: dict[int, Flow] = {}
        self._flow_ids = itertools.count(1)
        self._last_update = 0.0
        self._completed = 0
        self._bytes_done = 0.0

    # -- public API -----------------------------------------------------------------
    @property
    def active_flows(self) -> list[Flow]:
        """Currently in-flight flows."""
        return list(self._flows.values())

    def stats(self) -> TransferStats:
        """Aggregate statistics up to the current simulated time."""
        return TransferStats(
            flows_completed=self._completed,
            bytes_transferred=self._bytes_done,
            simulated_time=self.engine.now,
        )

    def remaining_bytes(self, flow: Flow) -> float:
        """Bytes the flow still has to transfer (as of the last rate change)."""
        if flow.finished_at is not None or flow.row < 0:
            return 0.0
        return float(self._remaining[flow.row])

    def start_transfer(
        self,
        src: int,
        dst: int,
        size: float,
        *,
        src_disk: bool = True,
        dst_disk: bool = True,
        on_complete: Callable[[Flow], None] | None = None,
    ) -> Flow:
        """Begin a transfer of ``size`` bytes from node ``src`` to node ``dst``.

        Returns the flow object; ``on_complete`` fires (inside the engine)
        when the last byte arrives.  Zero-byte transfers complete
        immediately at the current simulated time.
        """
        path = tuple(
            self.topology.transfer_path(src, dst, src_disk=src_disk, dst_disk=dst_disk)
        )
        flow = Flow(
            flow_id=next(self._flow_ids),
            src=src,
            dst=dst,
            size=float(size),
            path=path,
            on_complete=on_complete,
            started_at=self.engine.now,
        )
        if flow.size <= _EPSILON or not path:
            # Nothing to move (or a purely in-memory local operation).
            flow.finished_at = self.engine.now
            self._completed += 1
            self._bytes_done += flow.size
            if on_complete is not None:
                self.engine.schedule(0.0, on_complete, flow)
            return flow
        self._advance_progress()
        row = self._allocate_row(flow)
        flow.row = row
        path_indices = [self._resource_index[r] for r in path]
        self._paths[row, :] = self._dummy
        self._paths[row, : len(path_indices)] = path_indices
        self._remaining[row] = flow.size
        self._rates[row] = 0.0
        self._active[row] = True
        self._flows[flow.flow_id] = flow
        self._recompute_rates()
        return flow

    # -- internal mechanics -------------------------------------------------------------
    def _allocate_row(self, flow: Flow) -> int:
        if not self._free_rows:
            old_rows = self._paths.shape[0]
            new_rows = old_rows * 2
            self._paths = np.vstack(
                [self._paths, np.full((old_rows, _MAX_PATH), self._dummy, dtype=np.int64)]
            )
            self._remaining = np.concatenate(
                [self._remaining, np.zeros(old_rows, dtype=np.float64)]
            )
            self._rates = np.concatenate(
                [self._rates, np.zeros(old_rows, dtype=np.float64)]
            )
            self._scheduled_rates = np.concatenate(
                [self._scheduled_rates, np.zeros(old_rows, dtype=np.float64)]
            )
            self._active = np.concatenate(
                [self._active, np.zeros(old_rows, dtype=bool)]
            )
            self._flow_by_row.extend([None] * old_rows)
            self._free_rows.extend(range(old_rows, new_rows))
        row = self._free_rows.pop()
        self._flow_by_row[row] = flow
        return row

    def _release_row(self, row: int) -> None:
        self._active[row] = False
        self._rates[row] = 0.0
        self._scheduled_rates[row] = 0.0
        self._remaining[row] = 0.0
        self._paths[row, :] = self._dummy
        self._flow_by_row[row] = None
        self._free_rows.append(row)

    def _advance_progress(self) -> None:
        """Account for the bytes moved since the last rate change."""
        now = self.engine.now
        elapsed = now - self._last_update
        if elapsed > 0:
            active = self._active
            np.subtract(
                self._remaining,
                self._rates * elapsed,
                out=self._remaining,
                where=active,
            )
            np.maximum(self._remaining, 0.0, out=self._remaining, where=active)
        self._last_update = now

    def _recompute_rates(self) -> None:
        """Water-filling over the active rows; reschedule flows whose rate changed."""
        active_rows = np.nonzero(self._active)[0]
        if active_rows.size == 0:
            return
        paths = self._paths[active_rows]  # (F, _MAX_PATH)
        remaining_cap = self._capacity_arr.copy()
        new_rates = np.zeros(active_rows.size, dtype=np.float64)
        unfrozen = np.ones(active_rows.size, dtype=bool)
        guard = 0
        while unfrozen.any():
            guard += 1
            if guard > self._num_resources + 2:
                break  # numerical safety net; cannot trigger with sane capacities
            counts = np.bincount(
                paths[unfrozen].ravel(), minlength=self._num_resources + 1
            ).astype(np.float64)
            counts[self._dummy] = 0.0
            constrained = counts > 0
            if not constrained.any():
                break
            shares = np.divide(
                remaining_cap,
                counts,
                out=np.full_like(remaining_cap, np.inf),
                where=constrained,
            )
            increment = float(shares.min())
            if not np.isfinite(increment):
                break
            increment = max(increment, 0.0)
            remaining_cap -= increment * counts
            saturated = constrained & (
                remaining_cap <= _EPSILON * np.maximum(self._capacity_arr, 1.0)
            )
            saturated[self._dummy] = False
            new_rates[unfrozen] += increment
            frozen_now = unfrozen & saturated[paths].any(axis=1)
            if not frozen_now.any():
                break
            unfrozen &= ~frozen_now

        # Completion events are only rescheduled when the rate moved (relative
        # to the rate the current event was scheduled with) by more than
        # RESCHEDULE_TOLERANCE.  A slightly-stale event that fires early
        # simply re-checks the remaining bytes and re-arms; one that fires
        # late bounds the timing error by the same tolerance.  This keeps
        # shared-bottleneck scenarios (hundreds of flows on one disk) from
        # rescheduling every flow on every completion.
        scheduled = self._scheduled_rates[active_rows]
        tolerance = self.RESCHEDULE_TOLERANCE * np.maximum(
            np.maximum(new_rates, scheduled), _EPSILON
        )
        changed = np.abs(new_rates - scheduled) > tolerance
        self._rates[active_rows] = new_rates
        for position in np.nonzero(changed)[0]:
            row = int(active_rows[position])
            flow = self._flow_by_row[row]
            if flow is None:
                continue
            flow.rate = float(new_rates[position])
            self._reschedule_completion(flow)
        # Flows with an unchanged rate but no scheduled completion yet (e.g.
        # a rate of exactly zero twice in a row) are left alone on purpose.

    def _reschedule_completion(self, flow: Flow) -> None:
        if flow.completion_event is not None:
            flow.completion_event.cancel()
        rate = float(self._rates[flow.row])
        self._scheduled_rates[flow.row] = rate
        flow.rate = rate
        if rate <= _EPSILON:
            flow.completion_event = None
            return
        delay = float(self._remaining[flow.row]) / rate
        flow.completion_event = self.engine.schedule(delay, self._finish_flow, flow.flow_id)

    def _finish_flow(self, flow_id: int) -> None:
        flow = self._flows.get(flow_id)
        if flow is None:
            return
        self._advance_progress()
        if self._remaining[flow.row] > 1.0:
            # Spurious wake-up (stale event after a rate drop): re-plan.
            self._reschedule_completion(flow)
            return
        del self._flows[flow_id]
        self._release_row(flow.row)
        flow.row = -1
        flow.finished_at = self.engine.now
        flow.rate = 0.0
        self._completed += 1
        self._bytes_done += flow.size
        self._recompute_rates()
        if flow.on_complete is not None:
            flow.on_complete(flow)
