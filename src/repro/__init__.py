"""repro: reproduction of "Large-Scale Distributed Storage for Highly
Concurrent MapReduce Applications" (Moise, Antoniu, Bougé — IPDPS 2010
Workshops).

The package is organised in two layers (see DESIGN.md):

* a **functional layer** that stores real bytes in process —
  :mod:`repro.core` (BlobSeer), :mod:`repro.bsfs` (the BlobSeer File
  System), :mod:`repro.hdfs` (the HDFS-like baseline) and
  :mod:`repro.mapreduce` (a Hadoop-style MapReduce engine); and
* a **simulation layer** — :mod:`repro.simulation` — that replays the
  paper's Grid'5000-scale experiments (270 nodes, up to 250 concurrent
  clients) with a flow-level cluster model driven by the same placement
  policies as the functional layer.

Quickstart::

    from repro import BlobSeer

    blobseer = BlobSeer()
    blob = blobseer.create_blob(page_size=64 * 1024)
    v1 = blobseer.append(blob, b"hello, blobseer")
    print(blobseer.read(blob, 0, 5))          # b"hello"
    v2 = blobseer.write(blob, 0, b"HELLO")
    print(blobseer.read(blob, 0, 5, version=v1))  # still b"hello"
"""

from .core import GB, KB, MB, BlobHandle, BlobSeer, BlobSeerConfig

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "BlobSeer",
    "BlobSeerConfig",
    "BlobHandle",
    "KB",
    "MB",
    "GB",
    "Session",
    "connect",
]


def __getattr__(name: str):
    # Lazy: the session facade pulls in the whole MapReduce stack, which
    # pure-storage users of the package should not pay for at import time.
    if name in ("Session", "connect"):
        from . import api

        return getattr(api, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
