"""The session facade: one connect call, one object, the whole stack.

Applications previously assembled the pieces by hand — resolve a file
system from the registry, build a cluster, construct a jobtracker, manage
snapshot pins — and nothing tied the resulting writes and jobs to a
tenant.  :func:`connect` replaces that boilerplate::

    from repro.api import connect

    session = connect("bsfs://demo", tenant="alice")
    with session.create("/data/in.txt") as out:      # owned by alice
        out.write(b"hello world\\n")
    handle = session.submit(job)                      # alice's queue
    result = handle.wait()
    v = session.snapshot("/data/in.txt")              # AS-OF reads
    with session.open(f"/data/in.txt@v{v}") as stream:
        stream.read()

A :class:`Session` bundles the file-system handle, the deployment's
multi-tenant :class:`~repro.mapreduce.service.JobService` (one per file
system, shared by every session connecting to it) and the tenant identity:
writes made through the session are attributed to the tenant (quota
enforcement), and submitted jobs land in the tenant's fair-share queue.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Any, Iterator

from .fs.interface import FileStatus, FileSystem, InputStream, OutputStream
from .fs.quota import tenant_scope
from .fs.registry import get_filesystem
from .mapreduce.service import JobHandle, JobService

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .mapreduce.faults import FaultPlan
    from .mapreduce.job import Job
    from .mapreduce.jobtracker import JobResult

__all__ = ["Session", "connect"]

#: One JobService per file-system deployment, shared across sessions.
_services_lock = threading.Lock()


def connect(
    uri: "FileSystem | str",
    *,
    tenant: str | None = None,
    service: JobService | None = None,
    num_trackers: int = 4,
    slots_per_tracker: int = 2,
    max_concurrent_jobs: int | None = 4,
    **fs_options: Any,
) -> "Session":
    """Open a :class:`Session` against a deployment.

    ``uri`` is a file-system URI (``"bsfs://demo"``, ``"hdfs://prod"``,
    ``"local://scratch"``) resolved through the scheme registry — extra
    keyword options are forwarded to the backend factory on first build —
    or an already-constructed file system.  All sessions connecting to one
    deployment share a single :class:`~repro.mapreduce.service.JobService`
    (pass ``service=`` to supply your own, e.g. one fronting a remote
    cluster); the cluster-shape keywords apply only when this call builds
    the service.
    """
    fs = uri if isinstance(uri, FileSystem) else get_filesystem(uri, **fs_options)
    if service is None:
        with _services_lock:
            service = getattr(fs, "_session_service", None)
            if service is None:
                service = JobService.local(
                    fs,
                    num_trackers=num_trackers,
                    slots_per_tracker=slots_per_tracker,
                    max_concurrent_jobs=max_concurrent_jobs,
                )
                fs._session_service = service  # type: ignore[attr-defined]
    return Session(fs, service, tenant=tenant)


class Session:
    """One tenant's view of a deployment: storage plus job submission.

    Storage helpers delegate to the bundled file system with writes
    attributed to the session's tenant; :meth:`submit` routes jobs into
    the tenant's fair-share queue.  Sessions are lightweight and
    thread-safe — the heavy state (file system, job service) is shared.
    """

    def __init__(
        self,
        fs: FileSystem,
        service: JobService,
        *,
        tenant: str | None = None,
    ) -> None:
        self.fs = fs
        self.service = service
        self.tenant = tenant

    # -- jobs --------------------------------------------------------------------------
    def submit(
        self,
        job: "Job",
        *,
        priority: int | None = None,
        fault_plan: "FaultPlan | None" = None,
    ) -> JobHandle:
        """Submit a job as this session's tenant; returns a
        :class:`~repro.mapreduce.service.JobHandle` immediately."""
        tenant = self.tenant if self.tenant is not None else job.conf.tenant
        return self.service.submit(
            job, tenant=tenant, priority=priority, fault_plan=fault_plan
        )

    def run(
        self, job: "Job", *, fault_plan: "FaultPlan | None" = None
    ) -> "JobResult":
        """Submit and wait — the blocking convenience."""
        return self.submit(job, fault_plan=fault_plan).wait()

    # -- tenant attribution ------------------------------------------------------------
    def scope(self):
        """Context manager attributing arbitrary writes to this tenant.

        For code paths not covered by the helpers below (e.g. handing
        ``session.fs`` to a library that creates files itself)::

            with session.scope():
                third_party_export(session.fs, "/out")
        """
        return tenant_scope(self.tenant)

    # -- storage plane -----------------------------------------------------------------
    def create(self, path: str, **kwargs: Any) -> OutputStream:
        """Create a file owned by this tenant (kwargs as ``fs.create``)."""
        with tenant_scope(self.tenant):
            return self.fs.create(path, **kwargs)

    def append(self, path: str, **kwargs: Any) -> OutputStream:
        """Append to a file (charged to the file's owner)."""
        with tenant_scope(self.tenant):
            return self.fs.append(path, **kwargs)

    def open(
        self, path: str, *, version: int | None = None, **kwargs: Any
    ) -> InputStream:
        """Open for reading; ``version`` (or an ``@vN`` path suffix)
        reads an AS-OF snapshot."""
        return self.fs.open(path, version=version, **kwargs)

    def read(
        self, path: str, *, version: int | None = None, **kwargs: Any
    ) -> bytes:
        """Read a whole file (optionally AS OF a snapshot version)."""
        with self.open(path, version=version, **kwargs) as stream:
            return stream.read()

    def write(self, path: str, data: bytes, **kwargs: Any) -> None:
        """Create ``path`` owned by this tenant and write ``data``."""
        with self.create(path, **kwargs) as stream:
            stream.write(data)

    def snapshot(self, path: str) -> int:
        """Capture a snapshot token for AS-OF reads of ``path``."""
        return self.fs.snapshot(path)

    def pin(self, path: str, version: int | None = None, **kwargs: Any):
        """Pin a snapshot against reclamation; owner defaults to the
        tenant so pin dashboards show who holds what."""
        kwargs.setdefault("owner", self.tenant or "reader")
        return self.fs.pin(path, version, **kwargs)

    def mkdirs(self, path: str) -> None:
        """Create a directory and missing ancestors."""
        self.fs.mkdirs(path)

    def delete(self, path: str, *, recursive: bool = False) -> None:
        """Delete a file or directory (releases the owner's quota)."""
        self.fs.delete(path, recursive=recursive)

    def exists(self, path: str) -> bool:
        """Whether ``path`` exists."""
        return self.fs.exists(path)

    def list_dir(self, path: str) -> list[FileStatus]:
        """List a directory."""
        return self.fs.list_dir(path)

    def open_read(self, path: str, **kwargs: Any) -> Iterator[memoryview]:
        """Stream a byte range (see ``fs.open_read``)."""
        return self.fs.open_read(path, **kwargs)

    # -- introspection -----------------------------------------------------------------
    def usage(self):
        """This tenant's quota usage, when the deployment tracks quotas."""
        quotas = getattr(self.fs, "quotas", None)
        if quotas is None or self.tenant is None:
            return None
        return quotas.usage(self.tenant)

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Session(fs={self.fs.uri!r}, tenant={self.tenant!r})"
