"""Generic hierarchical namespace shared by the BSFS namespace manager and
the HDFS namenode.

Both systems the paper discusses keep a *centralized* namespace: BSFS has a
"centralized namespace manager ... responsible for maintaining a file system
namespace, and for mapping files to BLOBs", and HDFS's namenode "takes care
of the file system namespace and the data location".  The tree structure,
path resolution, rename/delete semantics and write leases are identical in
both; only the per-file payload differs (a blob id for BSFS, a block list
for HDFS).  :class:`NamespaceTree` captures the shared behaviour and is
parameterised by that payload.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Generic, Iterator, TypeVar

from . import path as fspath
from .errors import (
    DirectoryNotEmptyError,
    IsADirectoryError,
    LeaseConflictError,
    NoSuchPathError,
    NotADirectoryError,
    PathExistsError,
)
from .quota import QuotaManager, current_tenant

__all__ = ["FileEntry", "DirectoryEntry", "NamespaceTree"]

PayloadT = TypeVar("PayloadT")


@dataclass
class FileEntry(Generic[PayloadT]):
    """A regular file in the namespace, carrying a storage-specific payload."""

    name: str
    payload: PayloadT
    size: int = 0
    block_size: int = 0
    replication: int = 1
    modification_time: float = field(default_factory=time.time)
    lease_holder: str | None = None
    #: Tenant whose quota this file counts against (the creator's tenant
    #: scope at creation time).  Travels with the entry through renames and
    #: cross-shard moves, so ownership never needs re-deriving.
    owner_tenant: str | None = None

    @property
    def is_dir(self) -> bool:
        """Always ``False`` for files."""
        return False


@dataclass
class DirectoryEntry:
    """A directory in the namespace."""

    name: str
    children: dict[str, object] = field(default_factory=dict)
    modification_time: float = field(default_factory=time.time)

    @property
    def is_dir(self) -> bool:
        """Always ``True`` for directories."""
        return True


class NamespaceTree(Generic[PayloadT]):
    """Thread-safe hierarchical namespace with single-writer leases.

    All public methods take normalised or raw paths (they normalise
    internally) and raise the shared :mod:`repro.fs.errors` exceptions, so
    BSFS and HDFS expose identical namespace semantics to applications.
    """

    def __init__(self) -> None:
        self._root = DirectoryEntry(name="")
        self._lock = threading.RLock()
        #: Optional per-tenant quota accounting (shared across shards and,
        #: when desired, across file systems).  ``None`` disables it.
        self.quotas: QuotaManager | None = None

    def set_quota_manager(self, quotas: QuotaManager | None) -> None:
        """Attach (or detach) the quota manager charging this tree's writes."""
        self.quotas = quotas

    @property
    def lock(self) -> threading.RLock:
        """The tree's re-entrant lock.

        Exposed so :class:`~repro.fs.sharded.ShardedNamespaceTree` can pin a
        whole shard across a multi-step operation: holding it and then
        calling the public methods is safe (they re-acquire re-entrantly).
        """
        return self._lock

    # -- resolution helpers ---------------------------------------------------------
    def _resolve(self, path: str) -> DirectoryEntry | FileEntry[PayloadT]:
        node: DirectoryEntry | FileEntry[PayloadT] = self._root
        for part in fspath.components(path):
            if not isinstance(node, DirectoryEntry):
                raise NotADirectoryError(path)
            if part not in node.children:
                raise NoSuchPathError(path)
            node = node.children[part]  # type: ignore[assignment]
        return node

    def _resolve_dir(self, path: str) -> DirectoryEntry:
        node = self._resolve(path)
        if not isinstance(node, DirectoryEntry):
            raise NotADirectoryError(path)
        return node

    def _resolve_file(self, path: str) -> FileEntry[PayloadT]:
        node = self._resolve(path)
        if isinstance(node, DirectoryEntry):
            raise IsADirectoryError(path)
        return node

    # -- queries ---------------------------------------------------------------------
    def exists(self, path: str) -> bool:
        """Whether ``path`` names an existing entry."""
        with self._lock:
            try:
                self._resolve(path)
                return True
            except (NoSuchPathError, NotADirectoryError):
                return False

    def is_dir(self, path: str) -> bool:
        """Whether ``path`` exists and is a directory."""
        with self._lock:
            try:
                return isinstance(self._resolve(path), DirectoryEntry)
            except (NoSuchPathError, NotADirectoryError):
                return False

    def get_file(self, path: str) -> FileEntry[PayloadT]:
        """Return the file entry at ``path`` (raising if absent or a directory)."""
        with self._lock:
            return self._resolve_file(path)

    def get_entry(self, path: str) -> DirectoryEntry | FileEntry[PayloadT]:
        """Return the entry at ``path`` whatever its kind."""
        with self._lock:
            return self._resolve(path)

    def list_dir(self, path: str) -> list[tuple[str, DirectoryEntry | FileEntry[PayloadT]]]:
        """Return ``(child path, entry)`` pairs of a directory, sorted by name."""
        with self._lock:
            directory = self._resolve_dir(path)
            base = fspath.normalize(path)
            return [
                (fspath.join(base, name), entry)  # type: ignore[arg-type]
                for name, entry in sorted(directory.children.items())
            ]

    def walk_files(self, path: str = fspath.ROOT) -> Iterator[tuple[str, FileEntry[PayloadT]]]:
        """Yield every file under ``path`` (depth-first, sorted)."""
        with self._lock:
            entries = self.list_dir(path)
        for child_path, entry in entries:
            if isinstance(entry, DirectoryEntry):
                yield from self.walk_files(child_path)
            else:
                yield child_path, entry

    # -- mutations --------------------------------------------------------------------
    def mkdirs(self, path: str) -> None:
        """Create a directory and any missing ancestors (idempotent)."""
        with self._lock:
            node = self._root
            for part in fspath.components(path):
                child = node.children.get(part)
                if child is None:
                    child = DirectoryEntry(name=part)
                    node.children[part] = child
                    node.modification_time = time.time()
                if not isinstance(child, DirectoryEntry):
                    raise NotADirectoryError(path)
                node = child

    def create_file(
        self,
        path: str,
        payload_factory: Callable[[], PayloadT],
        *,
        block_size: int,
        replication: int,
        overwrite: bool = False,
        lease_holder: str | None = None,
        on_overwrite: Callable[[FileEntry[PayloadT]], None] | None = None,
    ) -> FileEntry[PayloadT]:
        """Create a file entry, implicitly creating parent directories.

        ``payload_factory`` is only invoked once the namespace checks have
        passed, so no storage-side object leaks when creation is rejected.
        ``on_overwrite`` is called with the replaced entry so the caller can
        release its storage (delete the blob / the blocks).
        """
        norm = fspath.normalize(path)
        if norm == fspath.ROOT:
            raise PathExistsError(norm)
        with self._lock:
            parent_path = fspath.parent(norm)
            self.mkdirs(parent_path)
            parent_dir = self._resolve_dir(parent_path)
            name = fspath.basename(norm)
            existing = parent_dir.children.get(name)
            if existing is not None:
                if isinstance(existing, DirectoryEntry):
                    raise IsADirectoryError(norm)
                if not overwrite:
                    raise PathExistsError(norm)
                if existing.lease_holder is not None:
                    raise LeaseConflictError(norm, existing.lease_holder)
            tenant = current_tenant()
            if self.quotas is not None:
                # Enforced before the overwrite callback runs, so a rejected
                # create leaves the replaced entry (and its storage) intact.
                self.quotas.charge_create(
                    tenant,
                    replacing_owner=(
                        existing.owner_tenant
                        if isinstance(existing, FileEntry)
                        else None
                    ),
                    replacing_bytes=(
                        existing.size if isinstance(existing, FileEntry) else 0
                    ),
                )
            if isinstance(existing, FileEntry) and on_overwrite is not None:
                on_overwrite(existing)
            entry: FileEntry[PayloadT] = FileEntry(
                name=name,
                payload=payload_factory(),
                block_size=block_size,
                replication=replication,
                lease_holder=lease_holder,
                owner_tenant=tenant,
            )
            parent_dir.children[name] = entry
            parent_dir.modification_time = time.time()
            return entry

    def delete(
        self,
        path: str,
        *,
        recursive: bool = False,
        on_delete_file: Callable[[str, FileEntry[PayloadT]], None] | None = None,
    ) -> None:
        """Remove a file or directory, invoking ``on_delete_file`` per removed file."""
        norm = fspath.normalize(path)
        if norm == fspath.ROOT:
            raise DirectoryNotEmptyError(norm)
        with self._lock:
            parent_dir = self._resolve_dir(fspath.parent(norm))
            name = fspath.basename(norm)
            entry = parent_dir.children.get(name)
            if entry is None:
                raise NoSuchPathError(norm)
            removed_files: list[tuple[str, FileEntry[PayloadT]]] = []
            if isinstance(entry, DirectoryEntry):
                if entry.children and not recursive:
                    raise DirectoryNotEmptyError(norm)
                removed_files.extend(self._collect_files(norm, entry))
            else:
                if entry.lease_holder is not None:
                    raise LeaseConflictError(norm, entry.lease_holder)
                removed_files.append((norm, entry))
            del parent_dir.children[name]
            parent_dir.modification_time = time.time()
        if self.quotas is not None:
            # Quota tracks the namespace view: released as soon as the entry
            # is gone, even when blob/block reclamation is deferred (pins).
            for _file_path, file_entry in removed_files:
                self.quotas.release_entry(file_entry.owner_tenant, file_entry.size)
        if on_delete_file is not None:
            for file_path, file_entry in removed_files:
                on_delete_file(file_path, file_entry)

    def _collect_files(
        self, base: str, directory: DirectoryEntry
    ) -> list[tuple[str, FileEntry[PayloadT]]]:
        collected: list[tuple[str, FileEntry[PayloadT]]] = []
        for name, child in directory.children.items():
            child_path = fspath.join(base, name)
            if isinstance(child, DirectoryEntry):
                collected.extend(self._collect_files(child_path, child))
            else:
                if child.lease_holder is not None:
                    raise LeaseConflictError(child_path, child.lease_holder)
                collected.append((child_path, child))
        return collected

    def rename(self, src: str, dst: str) -> None:
        """Move ``src`` (file or directory) to ``dst``.

        ``dst`` must not exist; renaming a path under itself is rejected.
        """
        src_norm = fspath.normalize(src)
        dst_norm = fspath.normalize(dst)
        if src_norm == fspath.ROOT:
            raise NoSuchPathError(src_norm)
        if fspath.is_ancestor(src_norm, dst_norm):
            raise PathExistsError(
                f"cannot rename {src_norm!r} under itself ({dst_norm!r})"
            )
        with self._lock:
            src_parent = self._resolve_dir(fspath.parent(src_norm))
            src_name = fspath.basename(src_norm)
            if src_name not in src_parent.children:
                raise NoSuchPathError(src_norm)
            if self.exists(dst_norm):
                raise PathExistsError(dst_norm)
            self.mkdirs(fspath.parent(dst_norm))
            dst_parent = self._resolve_dir(fspath.parent(dst_norm))
            entry = src_parent.children.pop(src_name)
            new_name = fspath.basename(dst_norm)
            if isinstance(entry, DirectoryEntry):
                entry.name = new_name
            else:
                entry.name = new_name
            dst_parent.children[new_name] = entry
            src_parent.modification_time = time.time()
            dst_parent.modification_time = time.time()

    # -- entry transplantation --------------------------------------------------------
    def detach_entry(self, path: str) -> DirectoryEntry | FileEntry[PayloadT]:
        """Remove and return the entry at ``path`` without lease/emptiness checks.

        Building block for cross-tree moves (the sharded namespace relocates
        entries between shard trees under its own locking); not part of the
        application-facing API, which goes through :meth:`rename`.
        """
        norm = fspath.normalize(path)
        if norm == fspath.ROOT:
            raise NoSuchPathError(norm)
        with self._lock:
            parent_dir = self._resolve_dir(fspath.parent(norm))
            name = fspath.basename(norm)
            if name not in parent_dir.children:
                raise NoSuchPathError(norm)
            entry = parent_dir.children.pop(name)
            parent_dir.modification_time = time.time()
            return entry  # type: ignore[return-value]

    def attach_entry(
        self, path: str, entry: DirectoryEntry | FileEntry[PayloadT]
    ) -> None:
        """Insert ``entry`` at ``path`` (renaming it to the path's basename).

        The parent must already exist as a directory and the name must be
        free; the counterpart of :meth:`detach_entry` for cross-tree moves.
        """
        norm = fspath.normalize(path)
        if norm == fspath.ROOT:
            raise PathExistsError(norm)
        with self._lock:
            parent_dir = self._resolve_dir(fspath.parent(norm))
            name = fspath.basename(norm)
            if name in parent_dir.children:
                raise PathExistsError(norm)
            entry.name = name
            parent_dir.children[name] = entry
            parent_dir.modification_time = time.time()

    # -- leases ---------------------------------------------------------------------
    def acquire_lease(self, path: str, holder: str) -> None:
        """Grant the single-writer lease of ``path`` to ``holder``."""
        with self._lock:
            entry = self._resolve_file(path)
            if entry.lease_holder is not None and entry.lease_holder != holder:
                raise LeaseConflictError(path, entry.lease_holder)
            entry.lease_holder = holder

    def release_lease(self, path: str, holder: str) -> None:
        """Release the lease of ``path`` if held by ``holder``."""
        with self._lock:
            entry = self._resolve_file(path)
            if entry.lease_holder == holder:
                entry.lease_holder = None

    def lease_holder(self, path: str) -> str | None:
        """Current lease holder of ``path`` (``None`` when not being written)."""
        with self._lock:
            return self._resolve_file(path).lease_holder

    # -- bookkeeping -------------------------------------------------------------------
    def update_file(
        self,
        path: str,
        *,
        size: int | None = None,
        payload: PayloadT | None = None,
    ) -> None:
        """Update a file entry's size and/or payload after data was written."""
        with self._lock:
            entry = self._resolve_file(path)
            if size is not None:
                delta = size - entry.size
                if self.quotas is not None:
                    if delta > 0:
                        self.quotas.charge_bytes(entry.owner_tenant, delta)
                    elif delta < 0:
                        self.quotas.release_bytes(entry.owner_tenant, -delta)
                entry.size = size
            if payload is not None:
                entry.payload = payload
            entry.modification_time = time.time()

    def update_file_size_monotonic(self, path: str, size: int) -> int:
        """Raise a file's recorded size to ``size``, never lowering it.

        Concurrent appenders learn their post-append file size in an
        arbitrary order; applying each observation with plain
        :meth:`update_file` lets a stale observation move the size
        *backwards*.  This applies ``max(current, size)`` atomically under
        the namespace lock and returns the size actually recorded.
        """
        with self._lock:
            entry = self._resolve_file(path)
            if size > entry.size:
                if self.quotas is not None:
                    self.quotas.charge_bytes(entry.owner_tenant, size - entry.size)
                entry.size = size
            entry.modification_time = time.time()
            return entry.size

    def count_files(self) -> int:
        """Total number of regular files in the namespace."""
        return sum(1 for _ in self.walk_files())
