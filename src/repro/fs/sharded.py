"""Hash-partitioned namespace: the metadata decentralisation the paper credits.

The paper attributes BlobSeer's scalability under concurrent access to its
*decentralised* metadata — "the metadata ... is distributed" across nodes via
a DHT — whereas :class:`~repro.fs.namespace.NamespaceTree` funnels every
operation through one re-entrant lock.  :class:`ShardedNamespaceTree`
partitions the namespace over N independent :class:`NamespaceTree` shards
selected by the same consistent-hash ring the metadata DHT uses
(:class:`repro.core.dht.ConsistentHashRing`), so unrelated files contend on
different locks.

Placement invariants
--------------------

1. **Directories are mirrored**: a directory either exists on *every* shard
   or on none.  Directory creation/removal is a broadcast under all shard
   locks; in exchange, every file operation can verify its whole parent
   chain *locally* on one shard.
2. **Files are partitioned**: a file lives only on the shard owning its
   normalised path (``ring.owner(path)``).
3. **Kind-uniqueness**: no path is simultaneously a file on one shard and a
   directory on another (mutations that could violate this run under all
   shard locks).

Lock hierarchy
--------------

Single-file operations (create into an existing directory, read, lease,
update, delete, same/cross-shard file rename) take only the involved shard
locks, always in **canonical order** (ascending shard index).  Structural
operations (mkdirs, directory delete, directory rename) take *all* shard
locks in canonical order.  No operation acquires shard locks in any other
order, so the hierarchy is deadlock-free.
"""

from __future__ import annotations

import threading
from contextlib import ExitStack, contextmanager
from typing import Callable, Generic, Iterator, TypeVar

from ..core.dht import ConsistentHashRing
from . import path as fspath
from .errors import (
    DirectoryNotEmptyError,
    LeaseConflictError,
    NoSuchPathError,
    NotADirectoryError,
    PathExistsError,
)
from .namespace import DirectoryEntry, FileEntry, NamespaceTree
from .quota import QuotaManager

__all__ = ["ShardedNamespaceTree", "make_namespace_tree"]

PayloadT = TypeVar("PayloadT")

#: Virtual nodes per shard on the ring.  Shard counts are small (4-64), so a
#: modest multiplier already spreads paths evenly; see BENCH_metadata's
#: ``shard_balance_cv`` row.
_VIRTUAL_NODES = 64

#: Bounded optimistic retries for single-shard fast paths racing a broadcast
#: structural change before falling back to the all-locks slow path.
_FAST_PATH_RETRIES = 4


class ShardedNamespaceTree(Generic[PayloadT]):
    """Drop-in replacement for :class:`NamespaceTree` with per-shard locks.

    The public API (methods, signatures, raised error types) matches
    :class:`NamespaceTree`, so :class:`~repro.bsfs.namespace.NamespaceManager`,
    :class:`~repro.fs.local.LocalFS` and
    :class:`~repro.hdfs.namenode.NameNode` route through it unchanged.
    """

    def __init__(self, shards: int = 8, *, virtual_nodes: int = _VIRTUAL_NODES) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self._shards: list[NamespaceTree[PayloadT]] = [
            NamespaceTree() for _ in range(shards)
        ]
        self._ring = ConsistentHashRing(virtual_nodes=virtual_nodes)
        for index in range(shards):
            self._ring.add_member(index)
        self.quotas: QuotaManager | None = None

    def set_quota_manager(self, quotas: QuotaManager | None) -> None:
        """Attach one shared quota manager to every shard.

        File mutations delegate to the owner shard's tree, so per-shard
        attachment gives globally consistent accounting (the manager itself
        is thread-safe); cross-shard moves use detach/attach, which are
        quota-neutral because ownership travels with the entry.
        """
        self.quotas = quotas
        for tree in self._shards:
            tree.set_quota_manager(quotas)

    # -- shard topology ---------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        """Number of namespace partitions."""
        return len(self._shards)

    def shard_of(self, path: str) -> int:
        """Index of the shard owning ``path`` (its file home)."""
        return self._ring.owner(fspath.normalize(path))

    def shard_lock(self, index: int) -> threading.RLock:
        """The lock of shard ``index`` (tests pin a shard to prove isolation)."""
        return self._shards[index].lock

    def shard_file_counts(self) -> dict[int, int]:
        """Map shard index -> number of files homed there (balance analysis)."""
        return {i: tree.count_files() for i, tree in enumerate(self._shards)}

    def _tree_for(self, norm: str) -> NamespaceTree[PayloadT]:
        return self._shards[self._ring.owner(norm)]

    @contextmanager
    def _all_locks(self) -> Iterator[None]:
        """Hold every shard lock, acquired in canonical (ascending) order."""
        with ExitStack() as stack:
            for tree in self._shards:
                stack.enter_context(tree.lock)
            yield

    # -- error translation ------------------------------------------------------------
    def _entry_or_none(
        self, tree: NamespaceTree[PayloadT], norm: str
    ) -> DirectoryEntry | FileEntry[PayloadT] | None:
        try:
            return tree.get_entry(norm)
        except (NoSuchPathError, NotADirectoryError):
            return None

    def _raise_missing(self, norm: str, report: str | None = None) -> None:
        """Raise the error a single tree would for an unresolvable ``norm``.

        Walks the path top-down consulting each prefix's owner shard: a file
        ancestor means ``NotADirectoryError``, otherwise ``NoSuchPathError``
        — matching :meth:`NamespaceTree._resolve`'s reporting.
        """
        report = norm if report is None else report
        prefix = ""
        for part in fspath.components(norm):
            prefix = prefix + "/" + part
            if prefix == norm:
                break  # the leaf itself is simply absent
            entry = self._entry_or_none(self._tree_for(prefix), prefix)
            if entry is None:
                break
            if not entry.is_dir:
                raise NotADirectoryError(report)
        raise NoSuchPathError(report)

    def _require_dir(self, norm: str) -> None:
        """Raise like ``NamespaceTree._resolve_dir(norm)`` unless a directory."""
        entry = self._entry_or_none(self._tree_for(norm), norm)
        if entry is None:
            self._raise_missing(norm)
        if not entry.is_dir:
            raise NotADirectoryError(norm)

    def _check_chain_for_files(self, norm: str) -> None:
        """Reject mkdirs-style creation when an ancestor (or ``norm``) is a file."""
        prefix = ""
        for part in fspath.components(norm):
            prefix = prefix + "/" + part
            entry = self._entry_or_none(self._tree_for(prefix), prefix)
            if entry is not None and not entry.is_dir:
                raise NotADirectoryError(norm)

    # -- queries ----------------------------------------------------------------------
    def exists(self, path: str) -> bool:
        """Whether ``path`` names an existing entry."""
        norm = fspath.normalize(path)
        return self._tree_for(norm).exists(norm)

    def is_dir(self, path: str) -> bool:
        """Whether ``path`` exists and is a directory."""
        norm = fspath.normalize(path)
        return self._tree_for(norm).is_dir(norm)

    def get_file(self, path: str) -> FileEntry[PayloadT]:
        """Return the file entry at ``path`` (raising if absent or a directory)."""
        norm = fspath.normalize(path)
        try:
            return self._tree_for(norm).get_file(norm)
        except (NoSuchPathError, NotADirectoryError):
            self._raise_missing(norm)
            raise AssertionError("unreachable")

    def get_entry(self, path: str) -> DirectoryEntry | FileEntry[PayloadT]:
        """Return the entry at ``path`` whatever its kind."""
        norm = fspath.normalize(path)
        try:
            return self._tree_for(norm).get_entry(norm)
        except (NoSuchPathError, NotADirectoryError):
            self._raise_missing(norm)
            raise AssertionError("unreachable")

    def list_dir(self, path: str) -> list[tuple[str, DirectoryEntry | FileEntry[PayloadT]]]:
        """Return ``(child path, entry)`` pairs of a directory, sorted by name.

        Children are merged across shards: files are unique to their owner
        shard; a child *directory* appears in every shard's mirror and is
        reported once (freshest mtime wins).
        """
        norm = fspath.normalize(path)
        self._require_dir(norm)
        merged: dict[str, DirectoryEntry | FileEntry[PayloadT]] = {}
        for tree in self._shards:
            try:
                children = tree.list_dir(norm)
            except (NoSuchPathError, NotADirectoryError):
                continue  # raced a concurrent structural change; skip the shard
            for child_path, child in children:
                prev = merged.get(child_path)
                if prev is None or (
                    child.is_dir
                    and prev.is_dir
                    and child.modification_time > prev.modification_time
                ):
                    merged[child_path] = child
        return sorted(merged.items())

    def walk_files(self, path: str = fspath.ROOT) -> Iterator[tuple[str, FileEntry[PayloadT]]]:
        """Yield every file under ``path`` (depth-first, sorted)."""
        norm = fspath.normalize(path)
        self._require_dir(norm)
        collected: dict[str, FileEntry[PayloadT]] = {}
        for tree in self._shards:
            try:
                for file_path, entry in tree.walk_files(norm):
                    collected[file_path] = entry
            except (NoSuchPathError, NotADirectoryError):
                continue
        yield from sorted(collected.items(), key=lambda kv: fspath.components(kv[0]))

    def count_files(self) -> int:
        """Total number of regular files in the namespace."""
        return sum(tree.count_files() for tree in self._shards)

    # -- mutations --------------------------------------------------------------------
    def mkdirs(self, path: str) -> None:
        """Create a directory and any missing ancestors on every shard."""
        norm = fspath.normalize(path)
        with self._all_locks():
            self._check_chain_for_files(norm)
            for tree in self._shards:
                tree.mkdirs(norm)

    def create_file(
        self,
        path: str,
        payload_factory: Callable[[], PayloadT],
        *,
        block_size: int,
        replication: int,
        overwrite: bool = False,
        lease_holder: str | None = None,
        on_overwrite: Callable[[FileEntry[PayloadT]], None] | None = None,
    ) -> FileEntry[PayloadT]:
        """Create a file entry, implicitly creating parent directories.

        Fast path: when the parent directory already exists, the whole
        operation runs under the owner shard's lock alone — the directory
        mirror makes the parent-chain check local, and structural deletes
        need this same lock, so the check cannot go stale before the insert.
        """
        norm = fspath.normalize(path)
        if norm == fspath.ROOT:
            raise PathExistsError(norm)
        parent_path = fspath.parent(norm)
        owner = self._tree_for(norm)
        for _ in range(_FAST_PATH_RETRIES):
            with owner.lock:
                if owner.is_dir(parent_path):
                    return owner.create_file(
                        norm,
                        payload_factory,
                        block_size=block_size,
                        replication=replication,
                        overwrite=overwrite,
                        lease_holder=lease_holder,
                        on_overwrite=on_overwrite,
                    )
            # Parent missing on the owner mirror: broadcast-create it (this
            # raises NotADirectoryError if an ancestor is a file), then retry
            # the fast path in case a concurrent delete raced us.
            self.mkdirs(parent_path)
        with self._all_locks():
            self._check_chain_for_files(parent_path)
            for tree in self._shards:
                tree.mkdirs(parent_path)
            return owner.create_file(
                norm,
                payload_factory,
                block_size=block_size,
                replication=replication,
                overwrite=overwrite,
                lease_holder=lease_holder,
                on_overwrite=on_overwrite,
            )

    def delete(
        self,
        path: str,
        *,
        recursive: bool = False,
        on_delete_file: Callable[[str, FileEntry[PayloadT]], None] | None = None,
    ) -> None:
        """Remove a file or directory, invoking ``on_delete_file`` per removed file."""
        norm = fspath.normalize(path)
        if norm == fspath.ROOT:
            raise DirectoryNotEmptyError(norm)
        owner = self._tree_for(norm)
        removed: list[tuple[str, FileEntry[PayloadT]]] = []

        def collect(file_path: str, entry: FileEntry[PayloadT]) -> None:
            removed.append((file_path, entry))

        for _ in range(_FAST_PATH_RETRIES):
            with owner.lock:
                entry = self._entry_or_none(owner, norm)
                if entry is not None and not entry.is_dir:
                    # File delete: entirely owner-local.
                    owner.delete(norm, recursive=recursive, on_delete_file=collect)
                    break
            if entry is None:
                # Match NamespaceTree.delete's reporting: the parent is
                # resolved first (its path in the error), then the leaf.
                self._require_dir(fspath.parent(norm))
                raise NoSuchPathError(norm)
            with self._all_locks():
                entry = self._entry_or_none(owner, norm)
                if entry is None or not entry.is_dir:
                    continue  # raced; redo kind dispatch
                if not recursive:
                    for tree in self._shards:
                        try:
                            if tree.list_dir(norm):
                                raise DirectoryNotEmptyError(norm)
                        except (NoSuchPathError, NotADirectoryError):
                            continue
                # Lease pre-check across every shard before removing anything,
                # so a conflict leaves the namespace untouched (as the
                # single-tree _collect_files does).
                for tree in self._shards:
                    try:
                        for file_path, file_entry in tree.walk_files(norm):
                            if file_entry.lease_holder is not None:
                                raise LeaseConflictError(
                                    file_path, file_entry.lease_holder
                                )
                    except (NoSuchPathError, NotADirectoryError):
                        continue
                for tree in self._shards:
                    if tree.exists(norm):
                        tree.delete(norm, recursive=True, on_delete_file=collect)
                break
        else:
            raise NoSuchPathError(norm)
        if on_delete_file is not None:
            removed.sort(key=lambda kv: fspath.components(kv[0]))
            for file_path, file_entry in removed:
                on_delete_file(file_path, file_entry)

    def rename(self, src: str, dst: str) -> None:
        """Move ``src`` (file or directory) to ``dst``.

        ``dst`` must not exist; renaming a path under itself is rejected.
        A file rename takes only the two involved shard locks (canonical
        order); a directory rename is structural and takes all shard locks.
        """
        src_norm = fspath.normalize(src)
        dst_norm = fspath.normalize(dst)
        if src_norm == fspath.ROOT:
            raise NoSuchPathError(src_norm)
        if fspath.is_ancestor(src_norm, dst_norm):
            raise PathExistsError(
                f"cannot rename {src_norm!r} under itself ({dst_norm!r})"
            )
        for _ in range(_FAST_PATH_RETRIES):
            src_owner = self._tree_for(src_norm)
            entry = self._entry_or_none(src_owner, src_norm)
            if entry is None:
                self._require_dir(fspath.parent(src_norm))
                raise NoSuchPathError(src_norm)
            if entry.is_dir:
                with self._all_locks():
                    if self._rename_dir_locked(src_norm, dst_norm):
                        return
            else:
                if self._rename_file(src_norm, dst_norm):
                    return
        raise NoSuchPathError(src_norm)

    def _rename_file(self, src_norm: str, dst_norm: str) -> bool:
        """One attempt at a file rename; ``False`` means re-dispatch on kind."""
        src_owner_index = self._ring.owner(src_norm)
        dst_owner_index = self._ring.owner(dst_norm)
        src_tree = self._shards[src_owner_index]
        dst_tree = self._shards[dst_owner_index]
        ordered = sorted({src_owner_index, dst_owner_index})
        with ExitStack() as stack:
            for index in ordered:
                stack.enter_context(self._shards[index].lock)
            entry = self._entry_or_none(src_tree, src_norm)
            if entry is None or entry.is_dir:
                return False
            if dst_tree.exists(dst_norm):
                raise PathExistsError(dst_norm)
            dst_parent = fspath.parent(dst_norm)
            if not dst_tree.is_dir(dst_parent):
                # Destination parents are missing: creating them is a
                # broadcast, which must not nest inside shard locks.
                pass
            else:
                moved = src_tree.detach_entry(src_norm)
                dst_tree.attach_entry(dst_norm, moved)
                return True
        self.mkdirs(fspath.parent(dst_norm))
        return False  # parents now exist; retry the move

    def _rename_dir_locked(self, src_norm: str, dst_norm: str) -> bool:
        """Directory rename under all shard locks; ``False`` re-dispatches."""
        src_owner = self._tree_for(src_norm)
        entry = self._entry_or_none(src_owner, src_norm)
        if entry is None or not entry.is_dir:
            return False
        if self._tree_for(dst_norm).exists(dst_norm):
            raise PathExistsError(dst_norm)
        dst_parent = fspath.parent(dst_norm)
        self._check_chain_for_files(dst_parent)
        for tree in self._shards:
            tree.mkdirs(dst_parent)
        # Gather the subtree: directory paths seen on any shard, files from
        # their owner shard.
        dir_paths: set[str] = {src_norm}
        files: list[tuple[str, FileEntry[PayloadT]]] = []
        for tree in self._shards:
            try:
                for file_path, file_entry in tree.walk_files(src_norm):
                    files.append((file_path, file_entry))
            except (NoSuchPathError, NotADirectoryError):
                continue
            dir_paths.update(self._walk_dirs(tree, src_norm))
        for tree in self._shards:
            if tree.exists(src_norm):
                tree.detach_entry(src_norm)
        prefix_len = len(src_norm)
        remapped_dirs = sorted(
            dst_norm + d[prefix_len:] for d in dir_paths
        )
        for new_dir in remapped_dirs:
            for tree in self._shards:
                tree.mkdirs(new_dir)
        for old_path, file_entry in files:
            new_path = dst_norm + old_path[prefix_len:]
            self._tree_for(new_path).attach_entry(new_path, file_entry)
        return True

    def _walk_dirs(self, tree: NamespaceTree[PayloadT], base: str) -> Iterator[str]:
        try:
            children = tree.list_dir(base)
        except (NoSuchPathError, NotADirectoryError):
            return
        for child_path, child in children:
            if child.is_dir:
                yield child_path
                yield from self._walk_dirs(tree, child_path)

    # -- leases -----------------------------------------------------------------------
    def acquire_lease(self, path: str, holder: str) -> None:
        """Grant the single-writer lease of ``path`` to ``holder``."""
        norm = fspath.normalize(path)
        try:
            self._tree_for(norm).acquire_lease(norm, holder)
        except (NoSuchPathError, NotADirectoryError):
            self._raise_missing(norm, report=path)

    def release_lease(self, path: str, holder: str) -> None:
        """Release the lease of ``path`` if held by ``holder``."""
        norm = fspath.normalize(path)
        try:
            self._tree_for(norm).release_lease(norm, holder)
        except (NoSuchPathError, NotADirectoryError):
            self._raise_missing(norm, report=path)

    def lease_holder(self, path: str) -> str | None:
        """Current lease holder of ``path`` (``None`` when not being written)."""
        norm = fspath.normalize(path)
        try:
            return self._tree_for(norm).lease_holder(norm)
        except (NoSuchPathError, NotADirectoryError):
            self._raise_missing(norm, report=path)
            raise AssertionError("unreachable")

    # -- bookkeeping ------------------------------------------------------------------
    def update_file(
        self,
        path: str,
        *,
        size: int | None = None,
        payload: PayloadT | None = None,
    ) -> None:
        """Update a file entry's size and/or payload after data was written."""
        norm = fspath.normalize(path)
        try:
            self._tree_for(norm).update_file(norm, size=size, payload=payload)
        except (NoSuchPathError, NotADirectoryError):
            self._raise_missing(norm, report=path)

    def update_file_size_monotonic(self, path: str, size: int) -> int:
        """Raise a file's recorded size to ``size``, never lowering it."""
        norm = fspath.normalize(path)
        try:
            return self._tree_for(norm).update_file_size_monotonic(norm, size)
        except (NoSuchPathError, NotADirectoryError):
            self._raise_missing(norm, report=path)
            raise AssertionError("unreachable")


def make_namespace_tree(
    shards: int = 1, *, virtual_nodes: int = _VIRTUAL_NODES
) -> NamespaceTree | ShardedNamespaceTree:
    """Build a namespace tree with ``shards`` partitions.

    ``shards <= 1`` returns the plain single-lock :class:`NamespaceTree` —
    the true ablation baseline used by BENCH_metadata's sharded-vs-single
    comparison, not a sharded tree with one shard (which would still pay the
    ring lookup and mirroring bookkeeping).
    """
    if shards <= 1:
        return NamespaceTree()
    return ShardedNamespaceTree(shards, virtual_nodes=virtual_nodes)
