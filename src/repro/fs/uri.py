"""URI-addressed paths: ``scheme://authority/path`` parsing and formatting.

Hadoop resolves its pluggable ``FileSystem`` implementations from path URIs
(``hdfs://namenode/...``, ``file:///...``) rather than from concrete
classes.  This module gives the reproduction the same addressing layer: a
small, immutable :class:`FsUri` value type that splits a URI string into

* a **scheme** naming the file-system implementation (``bsfs``, ``hdfs``,
  ``file``) — ``None`` for scheme-less plain paths, which keep working
  everywhere for backward compatibility;
* an **authority** naming one deployment of that implementation (Hadoop's
  ``namenode:port``; here a free-form label such as ``demo`` or ``bench``),
  so several independent instances of one backend can coexist; and
* an absolute **path** inside that file system, normalised with the shared
  :mod:`repro.fs.path` helpers so URI paths and plain paths have identical
  semantics (no ``..``, collapsed slashes, no trailing slash).

:mod:`repro.fs.registry` maps ``(scheme, authority)`` pairs to live
:class:`~repro.fs.interface.FileSystem` instances.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, replace

from . import path as fspath
from .errors import InvalidPathError

__all__ = ["FsUri", "parse", "is_uri", "format_uri"]

#: RFC-3986-shaped scheme: a letter followed by letters/digits/``+``/``-``/``.``.
_SCHEME_RE = re.compile(r"^(?P<scheme>[A-Za-z][A-Za-z0-9+.\-]*)://(?P<rest>.*)$")

#: Characters allowed in an authority label (a deployment name, not a host).
_AUTHORITY_RE = re.compile(r"^[A-Za-z0-9_.\-:]*$")


def is_uri(value: str) -> bool:
    """Whether ``value`` carries an explicit ``scheme://`` prefix."""
    return isinstance(value, str) and _SCHEME_RE.match(value) is not None


def format_uri(scheme: str | None, authority: str, path: str) -> str:
    """Assemble a URI string from its parts (plain path when ``scheme`` is None)."""
    norm = fspath.normalize(path)
    if scheme is None:
        return norm
    # The root path is left implicit (``bsfs://demo``), matching Hadoop.
    tail = "" if norm == fspath.ROOT else norm
    return f"{scheme}://{authority}{tail}"


@dataclass(frozen=True, slots=True)
class FsUri:
    """An immutable ``scheme://authority/path`` address.

    ``scheme`` is ``None`` for plain scheme-less paths; ``authority`` is the
    empty string when the URI names no deployment (``file:///tmp/x``).  The
    ``path`` is always in the canonical form of :func:`repro.fs.path.normalize`.
    """

    scheme: str | None
    authority: str
    path: str

    def __post_init__(self) -> None:
        if self.scheme is not None:
            if not re.match(r"^[A-Za-z][A-Za-z0-9+.\-]*$", self.scheme):
                raise InvalidPathError(self.scheme, "malformed URI scheme")
            object.__setattr__(self, "scheme", self.scheme.lower())
        if not _AUTHORITY_RE.match(self.authority):
            raise InvalidPathError(self.authority, "malformed URI authority")
        if self.scheme is None and self.authority:
            raise InvalidPathError(
                self.authority, "an authority requires a scheme"
            )
        object.__setattr__(self, "path", fspath.normalize(self.path))

    # -- parsing / formatting --------------------------------------------------------
    @classmethod
    def parse(cls, value: "FsUri | str") -> "FsUri":
        """Parse a URI string (or pass an :class:`FsUri` through unchanged).

        Accepted forms::

            bsfs://demo/data/input.txt   -> ("bsfs", "demo", "/data/input.txt")
            hdfs://demo                  -> ("hdfs", "demo", "/")
            file:///tmp/scratch          -> ("file", "",     "/tmp/scratch")
            /plain/path                  -> (None,   "",     "/plain/path")
        """
        if isinstance(value, FsUri):
            return value
        if not isinstance(value, str) or not value:
            raise InvalidPathError(value, "URIs must be non-empty strings")
        match = _SCHEME_RE.match(value)
        if match is None:
            # No scheme: must be a plain absolute path.
            return cls(scheme=None, authority="", path=value)
        rest = match.group("rest")
        slash = rest.find("/")
        if slash < 0:
            authority, path = rest, fspath.ROOT
        else:
            authority, path = rest[:slash], rest[slash:]
        return cls(scheme=match.group("scheme"), authority=authority, path=path)

    def __str__(self) -> str:
        return format_uri(self.scheme, self.authority, self.path)

    # -- derived addresses -----------------------------------------------------------
    @property
    def has_scheme(self) -> bool:
        """Whether the address names an explicit backend scheme."""
        return self.scheme is not None

    @property
    def filesystem_uri(self) -> str:
        """The address of the file system alone (path stripped to the root)."""
        return format_uri(self.scheme, self.authority, fspath.ROOT)

    def with_path(self, path: str) -> "FsUri":
        """Same file system, different path."""
        return replace(self, path=path)

    def join(self, *parts: str) -> "FsUri":
        """Join path fragments under this address (see :func:`repro.fs.path.join`)."""
        return self.with_path(fspath.join(self.path, *parts))

    def parent(self) -> "FsUri":
        """The parent directory address (the root is its own parent)."""
        return self.with_path(fspath.parent(self.path))

    def basename(self) -> str:
        """The last path component (empty string for the root)."""
        return fspath.basename(self.path)


def parse(value: FsUri | str) -> FsUri:
    """Module-level alias of :meth:`FsUri.parse`."""
    return FsUri.parse(value)
