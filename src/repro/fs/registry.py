"""Pluggable scheme registry: URI strings to live ``FileSystem`` instances.

This is the reproduction's counterpart of Hadoop's ``FileSystem.get(uri,
conf)``: backends register a factory under a scheme name, and application
code addresses storage purely through URI strings —

    >>> from repro.fs import get_filesystem
    >>> fs = get_filesystem("bsfs://demo")        # a BSFS deployment
    >>> fs = get_filesystem("hdfs://demo")        # the HDFS baseline
    >>> fs = get_filesystem("file:///tmp/data")   # local disk (sandboxed)

Swapping the storage backend of an example, a benchmark or a MapReduce job
is therefore a one-string change, exactly the drop-in substitution the
paper claims for BSFS under Hadoop.

Instances are cached per ``(scheme, authority, options)`` so that every
component naming ``bsfs://demo`` talks to the *same* deployment — the
authority plays the role of Hadoop's namenode address.  The built-in
schemes (``bsfs``, ``hdfs``, ``file``) are registered when :mod:`repro.fs`
is imported; third-party backends can call :func:`register_scheme` with
their own factory.
"""

from __future__ import annotations

import threading
from typing import Callable

from .errors import FileSystemError
from .interface import FileSystem, copy_path
from .uri import FsUri

__all__ = [
    "UnknownSchemeError",
    "FileSystemFactory",
    "register_scheme",
    "unregister_scheme",
    "registered_schemes",
    "is_registered",
    "get_filesystem",
    "open_fs",
    "copy_uri",
    "clear_instance_cache",
]

#: A factory building one file-system deployment for one authority.
FileSystemFactory = Callable[..., FileSystem]


class UnknownSchemeError(FileSystemError):
    """Raised when a URI names a scheme no backend has registered."""

    def __init__(self, scheme: str | None, known: list[str]) -> None:
        shown = scheme if scheme is not None else "<none>"
        super().__init__(
            f"no file system registered for scheme {shown!r} "
            f"(registered schemes: {', '.join(known) or 'none'})"
        )
        self.scheme = scheme
        self.known = known


_registry_lock = threading.Lock()
_factories: dict[str, FileSystemFactory] = {}
#: Live deployments keyed by (scheme, authority); the string remembers the
#: options the instance was built with so conflicting re-requests fail loudly.
_instances: dict[tuple[str, str], tuple[FileSystem, str]] = {}


def register_scheme(
    scheme: str, factory: FileSystemFactory, *, overwrite: bool = False
) -> None:
    """Register ``factory`` as the implementation of ``scheme``.

    The factory is called as ``factory(authority, **options)`` and must
    return a :class:`~repro.fs.interface.FileSystem`.  Registering an
    already-registered scheme raises unless ``overwrite=True``.
    """
    key = scheme.lower()
    with _registry_lock:
        if key in _factories and not overwrite:
            raise ValueError(f"scheme {key!r} is already registered")
        _factories[key] = factory


def unregister_scheme(scheme: str) -> None:
    """Remove ``scheme`` from the registry (and drop its cached instances)."""
    key = scheme.lower()
    with _registry_lock:
        if key not in _factories:
            raise UnknownSchemeError(key, sorted(_factories))
        del _factories[key]
        for cache_key in [k for k in _instances if k[0] == key]:
            del _instances[cache_key]


def registered_schemes() -> list[str]:
    """The sorted list of registered scheme names."""
    with _registry_lock:
        return sorted(_factories)


def is_registered(scheme: str) -> bool:
    """Whether ``scheme`` has a registered implementation."""
    with _registry_lock:
        return scheme.lower() in _factories


def _options_key(options: dict) -> str:
    """Stable cache-key fragment for factory options (repr-based)."""
    return repr(sorted((name, repr(value)) for name, value in options.items()))


def get_filesystem(uri: FsUri | str, **options) -> FileSystem:
    """Resolve ``uri`` to a (cached) file-system instance.

    Every ``(scheme, authority)`` pair names exactly one deployment, so all
    components addressing ``bsfs://demo`` share one instance while distinct
    authorities (``bsfs://demo`` vs ``bsfs://other``) get independent ones —
    the authority plays the role of Hadoop's namenode address.

    ``options`` are forwarded to the backend factory when the deployment is
    first built; later calls either pass no options (getting the existing
    instance back) or the same options.  Re-requesting an existing
    deployment with *different* options raises ``ValueError`` — use a new
    authority or :func:`clear_instance_cache` instead of silently getting
    an instance configured some other way.
    """
    parsed = FsUri.parse(uri)
    if parsed.scheme is None:
        raise UnknownSchemeError(None, registered_schemes())
    cache_key = (parsed.scheme, parsed.authority)

    def _lookup() -> FileSystem | None:
        cached = _instances.get(cache_key)
        if cached is None:
            return None
        instance, built_with = cached
        if options and _options_key(options) != built_with:
            raise ValueError(
                f"deployment {parsed.filesystem_uri!r} already exists with "
                "different options; use another authority or "
                "clear_instance_cache() first"
            )
        return instance

    with _registry_lock:
        factory = _factories.get(parsed.scheme)
        if factory is None:
            raise UnknownSchemeError(parsed.scheme, sorted(_factories))
        existing = _lookup()
    if existing is not None:
        return existing
    # Build outside the lock: factories may be slow (a whole in-process
    # deployment) or themselves resolve other URIs; holding a
    # non-reentrant lock across the call would serialise or deadlock them.
    instance = factory(parsed.authority, **options)
    instance.authority = parsed.authority
    with _registry_lock:
        winner = _lookup()
        if winner is None:
            _instances[cache_key] = (instance, _options_key(options))
            return instance
    # Another thread built the deployment first; discard ours.
    closer = getattr(instance, "close", None)
    if callable(closer):
        closer()
    return winner


def open_fs(uri: FsUri | str, **options) -> tuple[FileSystem, str]:
    """Resolve ``uri`` to ``(filesystem, path)``.

    The convenience for code handed a full file URI: returns the backend
    instance plus the in-filesystem path, ready for ``fs.open(path)``.
    """
    parsed = FsUri.parse(uri)
    return get_filesystem(parsed.filesystem_uri, **options), parsed.path


def copy_uri(
    source: FsUri | str,
    target: FsUri | str,
    *,
    chunk_size: int = 4 * 1024 * 1024,
    overwrite: bool = False,
) -> int:
    """Copy one file between URI-addressed locations (possibly cross-backend).

    The URI-level counterpart of :func:`repro.fs.interface.copy_path`;
    returns the number of bytes copied.
    """
    source_fs, source_path = open_fs(source)
    target_fs, target_path = open_fs(target)
    return copy_path(
        source_fs,
        source_path,
        target_fs,
        target_path,
        chunk_size=chunk_size,
        overwrite=overwrite,
    )


def clear_instance_cache(scheme: str | None = None) -> None:
    """Drop cached instances (of one scheme, or all) so fresh ones are built.

    Used by tests and benchmarks that want deployment isolation while still
    addressing backends through URIs.
    """
    with _registry_lock:
        if scheme is None:
            _instances.clear()
        else:
            key = scheme.lower()
            for cache_key in [k for k in _instances if k[0] == key]:
                del _instances[cache_key]


# -- built-in schemes ---------------------------------------------------------------
# The factories import lazily so that registering them here (at
# ``repro.fs`` import time) cannot create circular imports with the
# backend packages, which themselves import ``repro.fs``.


def _bsfs_factory(authority: str, **options) -> FileSystem:
    from ..bsfs import BSFS

    return BSFS(**options)


def _hdfs_factory(authority: str, **options) -> FileSystem:
    from ..hdfs import HDFS

    return HDFS(**options)


def _local_factory(authority: str, **options) -> FileSystem:
    from .local import LocalFS

    return LocalFS(**options)


def _register_builtin_schemes() -> None:
    for scheme, factory in (
        ("bsfs", _bsfs_factory),
        ("hdfs", _hdfs_factory),
        ("file", _local_factory),
    ):
        if not is_registered(scheme):
            register_scheme(scheme, factory)


_register_builtin_schemes()
