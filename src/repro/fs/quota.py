"""Per-tenant namespace quotas: file-count and byte budgets with reservations.

Multi-tenant serving means many tenants writing into one shared namespace;
a quota bounds how much of it each tenant may hold.  The design has three
pieces:

* a **tenant context** — writes are attributed to the tenant named by
  :func:`tenant_scope`, a context-variable scope the job layer enters
  around task execution.  Files remember their owner
  (:attr:`~repro.fs.namespace.FileEntry.owner_tenant`), so later growth,
  deletion and rename charge the *owner* regardless of who performs them;
* a **:class:`QuotaManager`** — thread-safe per-tenant usage counters
  (files, bytes, reserved bytes) with optional limits.  One manager is
  shared by every shard of a namespace (and may be shared across file
  systems), so accounting is global however the metadata is partitioned;
* **reservations** — concurrent appenders reserve their byte count
  *before* touching storage (:meth:`QuotaManager.reserve_bytes` raises
  :class:`~repro.fs.errors.QuotaExceededError` when the budget is full),
  then the namespace size update converts the reservation into usage.
  Two appends racing a quota boundary therefore resolve deterministically:
  one is admitted, the other is rejected before writing a byte, and usage
  never overshoots the limit.

Accounting tracks the *namespace* view — recorded file sizes — so deleting
a file releases its quota immediately even when the backing storage is
reclaimed later (e.g. a pinned blob whose delete is deferred until the
version GC's pin drains).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Iterator

from .errors import QuotaExceededError

__all__ = [
    "QuotaManager",
    "TenantQuota",
    "TenantUsage",
    "attach_quota_manager",
    "current_tenant",
    "tenant_scope",
]

#: The tenant charged for namespace writes performed by the current task.
_current_tenant: ContextVar[str | None] = ContextVar("repro_fs_tenant", default=None)


def current_tenant() -> str | None:
    """The tenant the calling thread's writes are attributed to (or ``None``)."""
    return _current_tenant.get()


@contextmanager
def tenant_scope(tenant: str | None) -> Iterator[None]:
    """Attribute namespace writes inside the block to ``tenant``.

    Scopes nest; ``None`` restores anonymous (untracked) writes.  The scope
    is per-thread (a context variable), so each task-executor thread enters
    its own scope without interfering with concurrent tasks.
    """
    token = _current_tenant.set(tenant)
    try:
        yield
    finally:
        _current_tenant.reset(token)


@dataclass(frozen=True, slots=True)
class TenantQuota:
    """Limits of one tenant (``None`` means unlimited)."""

    max_files: int | None = None
    max_bytes: int | None = None


@dataclass(frozen=True, slots=True)
class TenantUsage:
    """Snapshot of one tenant's consumption."""

    files: int = 0
    bytes: int = 0
    #: Bytes admitted for in-flight appends but not yet recorded as usage.
    reserved: int = 0


class QuotaManager:
    """Thread-safe per-tenant files/bytes accounting with optional limits.

    Usage is tracked for every named tenant that writes; limits apply only
    to tenants with a quota set (:meth:`set_quota`).  Anonymous writes
    (no :func:`tenant_scope` active) are neither tracked nor limited.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._quotas: dict[str, TenantQuota] = {}
        self._files: dict[str, int] = {}
        self._bytes: dict[str, int] = {}
        self._reserved: dict[str, int] = {}

    # -- configuration ----------------------------------------------------------------
    def set_quota(
        self,
        tenant: str,
        *,
        max_files: int | None = None,
        max_bytes: int | None = None,
    ) -> None:
        """Set (or replace) the limits of ``tenant``."""
        with self._lock:
            self._quotas[tenant] = TenantQuota(
                max_files=max_files, max_bytes=max_bytes
            )

    def quota_for(self, tenant: str) -> TenantQuota:
        """The limits configured for ``tenant`` (unlimited when unset)."""
        with self._lock:
            return self._quotas.get(tenant, TenantQuota())

    def usage(self, tenant: str) -> TenantUsage:
        """Snapshot of ``tenant``'s current consumption."""
        with self._lock:
            return TenantUsage(
                files=self._files.get(tenant, 0),
                bytes=self._bytes.get(tenant, 0),
                reserved=self._reserved.get(tenant, 0),
            )

    def tenants(self) -> list[str]:
        """Every tenant with recorded usage or a configured quota."""
        with self._lock:
            return sorted(set(self._quotas) | set(self._files) | set(self._bytes))

    # -- file-count accounting ---------------------------------------------------------
    def charge_create(
        self,
        tenant: str | None,
        *,
        replacing_owner: str | None = None,
        replacing_bytes: int = 0,
    ) -> None:
        """Admit one file creation by ``tenant`` (enforced).

        ``replacing_owner``/``replacing_bytes`` describe an entry being
        overwritten in the same operation: its account is released
        atomically with the new charge, so overwriting your own file at the
        file-count limit succeeds while a fresh create is rejected.
        """
        with self._lock:
            if replacing_owner is not None:
                self._release_locked(replacing_owner, files=1, nbytes=replacing_bytes)
            if tenant is None:
                return
            files = self._files.get(tenant, 0)
            quota = self._quotas.get(tenant)
            if (
                quota is not None
                and quota.max_files is not None
                and files + 1 > quota.max_files
            ):
                raise QuotaExceededError(
                    tenant,
                    "files",
                    requested=1,
                    used=files,
                    limit=quota.max_files,
                )
            self._files[tenant] = files + 1

    def release_entry(self, tenant: str | None, nbytes: int) -> None:
        """Release one deleted file (and its recorded bytes) of ``tenant``."""
        if tenant is None:
            return
        with self._lock:
            self._release_locked(tenant, files=1, nbytes=nbytes)

    def _release_locked(self, tenant: str, *, files: int, nbytes: int) -> None:
        self._files[tenant] = max(self._files.get(tenant, 0) - files, 0)
        self._bytes[tenant] = max(self._bytes.get(tenant, 0) - nbytes, 0)

    # -- byte accounting ---------------------------------------------------------------
    def reserve_bytes(self, tenant: str | None, nbytes: int) -> None:
        """Admit ``nbytes`` of in-flight append data for ``tenant`` (enforced).

        Called *before* the storage write of a concurrent append; the later
        namespace size update (:meth:`charge_bytes`) consumes the
        reservation.  Raises :class:`QuotaExceededError` when usage plus
        reservations would exceed the byte limit — before any byte lands.
        """
        if tenant is None or nbytes <= 0:
            return
        with self._lock:
            used = self._bytes.get(tenant, 0)
            reserved = self._reserved.get(tenant, 0)
            quota = self._quotas.get(tenant)
            if (
                quota is not None
                and quota.max_bytes is not None
                and used + reserved + nbytes > quota.max_bytes
            ):
                raise QuotaExceededError(
                    tenant,
                    "bytes",
                    requested=nbytes,
                    used=used + reserved,
                    limit=quota.max_bytes,
                )
            self._reserved[tenant] = reserved + nbytes

    def unreserve_bytes(self, tenant: str | None, nbytes: int) -> None:
        """Return an unconsumed reservation (never goes negative)."""
        if tenant is None or nbytes <= 0:
            return
        with self._lock:
            self._reserved[tenant] = max(
                self._reserved.get(tenant, 0) - nbytes, 0
            )

    def charge_bytes(self, tenant: str | None, nbytes: int) -> None:
        """Record ``nbytes`` of recorded-size growth for ``tenant`` (enforced).

        Growth covered by an outstanding reservation was already admitted
        and converts reservation → usage without a limit check; only the
        excess beyond the reservation pool is enforced.  Raises (leaving
        state unchanged) when the excess does not fit.
        """
        if tenant is None or nbytes <= 0:
            return
        with self._lock:
            used = self._bytes.get(tenant, 0)
            reserved = self._reserved.get(tenant, 0)
            consumed = min(nbytes, reserved)
            excess = nbytes - consumed
            quota = self._quotas.get(tenant)
            if (
                excess > 0
                and quota is not None
                and quota.max_bytes is not None
                and used + reserved - consumed + nbytes > quota.max_bytes
            ):
                raise QuotaExceededError(
                    tenant,
                    "bytes",
                    requested=excess,
                    used=used + reserved - consumed,
                    limit=quota.max_bytes,
                )
            self._reserved[tenant] = reserved - consumed
            self._bytes[tenant] = used + nbytes

    def release_bytes(self, tenant: str | None, nbytes: int) -> None:
        """Release ``nbytes`` of recorded usage (truncation, shrink)."""
        if tenant is None or nbytes <= 0:
            return
        with self._lock:
            self._bytes[tenant] = max(self._bytes.get(tenant, 0) - nbytes, 0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        with self._lock:
            return (
                f"QuotaManager(tenants={sorted(set(self._files) | set(self._quotas))})"
            )


def attach_quota_manager(fs: object, quotas: QuotaManager) -> None:
    """Attach ``quotas`` to an already-built file system.

    Every backend also accepts ``quotas=`` at construction; this retrofits
    one onto an existing instance — the :class:`~repro.mapreduce.service
    .JobService` uses it when a tenant with namespace limits registers
    against a file system built without quota support.  Duck-typed over the
    three backends: the manager is installed on the namespace tree (create/
    delete/resize accounting) and on whichever component performs appends
    outside the tree (the HDFS namenode's block commits, the backends'
    ``concurrent_append`` reservations).
    """
    tree = None
    namenode = getattr(fs, "namenode", None)
    namespace = getattr(fs, "namespace", None)
    if namenode is not None:  # HDFS
        namenode.quotas = quotas
        tree = namenode.tree
    elif namespace is not None:  # BSFS
        namespace.quotas = quotas
        tree = namespace.tree
    else:  # LocalFS
        tree = getattr(fs, "_tree", None)
    if tree is not None and hasattr(tree, "set_quota_manager"):
        tree.set_quota_manager(quotas)
    fs.quotas = quotas  # type: ignore[attr-defined]
