"""LocalFS: a ``file://`` backend storing real bytes on the local disk.

A third :class:`~repro.fs.interface.FileSystem` implementation next to BSFS
and the HDFS baseline, registered under the ``file://`` scheme.  It serves
two purposes:

* a **ground-truth oracle** for differential testing — the namespace layer
  is the very same :class:`~repro.fs.namespace.NamespaceTree` used by BSFS
  and HDFS, so leases, rename/delete semantics and error types are
  identical by construction, while the data path is plain ``os`` file I/O
  whose correctness is trivial to trust;
* a **zero-setup backend** for examples and benchmarks that want real disk
  bytes without spinning up an in-process BlobSeer or HDFS deployment.

All paths are *virtual*: ``/a/b`` names an entry of the namespace tree, and
file bytes live in a flat object store under a sandboxed root directory
(one ``obj-N.bin`` per file).  Nothing outside the root is ever touched —
``..`` components are rejected by the shared path normaliser, and renames
are pure metadata operations.  Like BSFS (and unlike HDFS), LocalFS
supports ``append`` and lock-serialised ``concurrent_append``.
"""

from __future__ import annotations

import atexit
import os
import shutil
import tempfile
import threading

from . import path as fspath
from .errors import InvalidRangeError, IsADirectoryError
from .interface import BlockLocation, FileStatus, FileSystem, InputStream, OutputStream
from .namespace import DirectoryEntry, FileEntry, NamespaceTree
from .quota import QuotaManager
from .sharded import ShardedNamespaceTree, make_namespace_tree

__all__ = ["LocalFS", "DEFAULT_BLOCK_SIZE", "LocalFSInputStream", "LocalFSOutputStream"]

#: Default block size reported by LocalFS (matches the other backends' 64 MB).
DEFAULT_BLOCK_SIZE = 64 * 1024 * 1024


class LocalFSOutputStream(OutputStream):
    """Sequential writer backed by one real file on disk."""

    def __init__(self, backing_path: str, *, mode: str, on_close) -> None:
        super().__init__()
        self._file = open(backing_path, mode)
        self._on_close = on_close

    def _write(self, data: bytes) -> None:
        self._file.write(data)

    def flush(self) -> None:
        if not self.closed:
            self._file.flush()

    def _close(self) -> None:
        self._file.flush()
        self._file.close()
        self._on_close()


class LocalFSInputStream(InputStream):
    """Reader over one real file; positional reads are lock-serialised."""

    def __init__(self, backing_path: str, size: int) -> None:
        super().__init__(size)
        self._file = open(backing_path, "rb")
        self._io_lock = threading.Lock()

    def _pread(self, offset: int, size: int) -> bytes:
        with self._io_lock:
            self._file.seek(offset)
            return self._file.read(size)

    def close(self) -> None:
        if not self.closed:
            self._file.close()
        super().close()


class LocalFS(FileSystem):
    """Local-disk file system implementing the shared FileSystem API."""

    scheme = "file"

    def __init__(
        self,
        root: str | None = None,
        *,
        default_block_size: int = DEFAULT_BLOCK_SIZE,
        default_replication: int = 1,
        namespace_shards: int = 4,
        quotas: QuotaManager | None = None,
    ) -> None:
        """Create a LocalFS over a sandboxed root directory.

        Parameters
        ----------
        root:
            Directory holding the backing object files.  Created when
            missing; a fresh temporary directory (removed by
            :meth:`close`) is used when omitted.
        default_block_size:
            Block size reported for files created without an explicit one.
        default_replication:
            Replication factor reported in statuses (local disk stores one
            copy; the knob only affects reported metadata).
        namespace_shards:
            Namespace partitions (see :mod:`repro.fs.sharded`); ``1`` keeps
            the single-lock tree.
        quotas:
            Optional per-tenant :class:`~repro.fs.quota.QuotaManager`
            enforcing file/byte budgets on namespace writes.
        """
        self._owns_root = root is None
        if root is None:
            root = tempfile.mkdtemp(prefix="repro-localfs-")
            # Owned sandboxes are temporary by contract: reclaim them at
            # interpreter exit even when nobody calls close() explicitly
            # (registry-built instances are typically never closed).
            atexit.register(shutil.rmtree, root, ignore_errors=True)
        else:
            os.makedirs(root, exist_ok=True)
        self._root = os.path.abspath(root)
        self._default_block_size = default_block_size
        self._default_replication = default_replication
        self._tree: NamespaceTree[str] | ShardedNamespaceTree[str] = make_namespace_tree(
            namespace_shards
        )
        self._tree.set_quota_manager(quotas)
        self.quotas = quotas
        self._lock = threading.Lock()
        self._object_ids = iter(range(1, 2**62))
        self._client_ids = iter(range(1, 2**62))

    # -- helpers --------------------------------------------------------------------
    @property
    def root(self) -> str:
        """The sandbox directory holding the backing object files."""
        return self._root

    @property
    def default_block_size(self) -> int:
        """Block size applied to files created without an explicit one."""
        return self._default_block_size

    def _new_object_path(self) -> str:
        with self._lock:
            return os.path.join(self._root, f"obj-{next(self._object_ids)}.bin")

    def _next_client(self, client_host: str | None) -> str:
        with self._lock:
            return f"{client_host or 'client'}-{next(self._client_ids)}"

    def _remove_backing(self, entry: FileEntry[str]) -> None:
        try:
            os.remove(entry.payload)
        except OSError:
            pass

    # -- write path -----------------------------------------------------------------
    def create(
        self,
        path: str,
        *,
        overwrite: bool = False,
        block_size: int | None = None,
        replication: int | None = None,
        client_host: str | None = None,
    ) -> LocalFSOutputStream:
        """Create a file backed by a fresh on-disk object."""
        norm = fspath.normalize(path)
        holder = self._next_client(client_host)
        entry = self._tree.create_file(
            norm,
            payload_factory=self._new_object_path,
            block_size=block_size or self._default_block_size,
            replication=replication or self._default_replication,
            overwrite=overwrite,
            lease_holder=holder,
            on_overwrite=self._remove_backing,
        )
        backing = entry.payload

        def _on_close() -> None:
            # Release the lease even when the size update is rejected (a
            # tenant over its byte quota): the failed write must leave the
            # file deletable, not leased forever.
            try:
                self._tree.update_file(norm, size=os.path.getsize(backing))
            finally:
                self._tree.release_lease(norm, holder)

        return LocalFSOutputStream(backing, mode="wb", on_close=_on_close)

    def append(
        self, path: str, *, client_host: str | None = None
    ) -> LocalFSOutputStream:
        """Re-open an existing file for appending (supported, like BSFS)."""
        norm = fspath.normalize(path)
        entry = self._tree.get_file(norm)
        holder = self._next_client(client_host)
        self._tree.acquire_lease(norm, holder)

        def _on_close() -> None:
            try:
                self._tree.update_file(norm, size=os.path.getsize(entry.payload))
            finally:
                self._tree.release_lease(norm, holder)

        return LocalFSOutputStream(entry.payload, mode="ab", on_close=_on_close)

    def concurrent_append(self, path: str, data: bytes) -> int:
        """Append ``data`` without taking the write lease (lock-serialised).

        Mirrors :meth:`repro.bsfs.filesystem.BSFS.concurrent_append`: safe to
        call from many threads on the same file; returns the offset at which
        ``data`` landed.
        """
        norm = fspath.normalize(path)
        entry = self._tree.get_file(norm)
        # Reserve against the owner's byte budget before touching storage, so
        # an over-quota append is rejected without landing a single byte.  On
        # success the namespace size update consumes the reservation; it is
        # handed back only when the write never reached the namespace.
        if self.quotas is not None:
            self.quotas.reserve_bytes(entry.owner_tenant, len(data))
        try:
            with self._lock:
                offset = os.path.getsize(entry.payload)
                with open(entry.payload, "ab") as backing:
                    backing.write(data)
                self._tree.update_file(norm, size=offset + len(data))
        except BaseException:
            if self.quotas is not None:
                self.quotas.unreserve_bytes(entry.owner_tenant, len(data))
            raise
        return offset

    # -- read path -------------------------------------------------------------------
    def open(
        self,
        path: str,
        *,
        version: int | None = None,
        client_host: str | None = None,
    ) -> LocalFSInputStream:
        """Open a file for reading (size snapshot taken at open time).

        LocalFS is a size-token backend: files only grow (appends extend,
        overwrites replace the backing object), so ``version`` — the byte
        length captured by :meth:`~repro.fs.interface.FileSystem.snapshot`
        — reproduces the old content by truncating the readable range.
        """
        norm, version = self._resolve_read_target(path, version)
        entry = self._tree.get_file(norm)
        return LocalFSInputStream(
            entry.payload, size=self.snapshot_size(norm, version)
        )

    def open_read(
        self,
        path: str,
        *,
        offset: int = 0,
        length: int | None = None,
        chunk_size: int = 1024 * 1024,
        version: int | None = None,
        client_host: str | None = None,
    ):
        """Stream straight from disk: one sequential file handle, no
        per-chunk seek/lock round trip through the InputStream wrapper.
        ``version`` truncates the stream at the snapshot's size token."""
        self._validate_stream_range(offset, length, chunk_size)
        norm, version = self._resolve_read_target(path, version)
        entry = self._tree.get_file(norm)
        size = self.snapshot_size(norm, version)
        end = size if length is None else min(offset + length, size)

        def generate():
            with open(entry.payload, "rb") as backing:
                backing.seek(offset)
                position = offset
                while position < end:
                    chunk = backing.read(min(chunk_size, end - position))
                    if not chunk:
                        break
                    position += len(chunk)
                    yield memoryview(chunk)

        return generate()

    # -- namespace -------------------------------------------------------------------
    def mkdirs(self, path: str) -> None:
        self._tree.mkdirs(path)

    def delete(self, path: str, *, recursive: bool = False) -> None:
        self._tree.delete(
            path,
            recursive=recursive,
            on_delete_file=lambda _path, entry: self._remove_backing(entry),
        )

    def rename(self, src: str, dst: str) -> None:
        self._tree.rename(src, dst)

    def exists(self, path: str) -> bool:
        return self._tree.exists(path)

    def status(self, path: str) -> FileStatus:
        norm = fspath.normalize(path)
        entry = self._tree.get_entry(norm)
        return self._status_from_entry(norm, entry)

    def list_dir(self, path: str) -> list[FileStatus]:
        return [
            self._status_from_entry(child_path, entry)
            for child_path, entry in self._tree.list_dir(path)
        ]

    @staticmethod
    def _status_from_entry(
        path: str, entry: DirectoryEntry | FileEntry[str]
    ) -> FileStatus:
        if isinstance(entry, DirectoryEntry):
            return FileStatus(
                path=path,
                is_dir=True,
                size=0,
                block_size=0,
                replication=0,
                modification_time=entry.modification_time,
            )
        return FileStatus(
            path=path,
            is_dir=False,
            size=entry.size,
            block_size=entry.block_size,
            replication=entry.replication,
            modification_time=entry.modification_time,
        )

    # -- locality ----------------------------------------------------------------------
    def block_locations(
        self, path: str, offset: int = 0, length: int | None = None
    ) -> list[BlockLocation]:
        """Synthesise block-shaped regions, all living on ``localhost``."""
        norm = fspath.normalize(path)
        entry = self._tree.get_entry(norm)
        if isinstance(entry, DirectoryEntry):
            raise IsADirectoryError(norm)
        if offset < 0 or offset > entry.size:
            raise InvalidRangeError(norm, offset, entry.size)
        if length is not None and length < 0:
            raise InvalidRangeError(norm, offset, entry.size, length=length)
        if length is None:
            length = entry.size - offset
        end = min(entry.size, offset + length)
        if offset >= end:
            # Empty range (offset at EOF or zero length): no blocks, the
            # same answer BSFS and HDFS give.
            return []
        block_size = entry.block_size or self._default_block_size
        locations: list[BlockLocation] = []
        start = (offset // block_size) * block_size
        while start < end:
            block_end = min(start + block_size, entry.size)
            locations.append(
                BlockLocation(
                    offset=start, length=block_end - start, hosts=("localhost",)
                )
            )
            start += block_size
        return locations

    # -- monitoring ------------------------------------------------------------------
    def stats(self) -> dict:
        """Aggregate statistics (file count, bytes on disk, sandbox root)."""
        total = 0
        files = 0
        for _path, entry in self._tree.walk_files():
            files += 1
            total += entry.size
        return {
            "scheme": self.scheme,
            "files": files,
            "bytes_stored": total,
            "root": self._root,
        }

    # -- lifecycle ---------------------------------------------------------------------
    def close(self) -> None:
        """Remove the sandbox directory if this instance created it."""
        if self._owns_root:
            shutil.rmtree(self._root, ignore_errors=True)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LocalFS(root={self._root!r})"
