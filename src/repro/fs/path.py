"""Path handling shared by every file system implementation.

All file systems in this package use absolute, ``/``-separated paths with no
notion of a working directory (as HDFS and BSFS do).  The helpers here
normalise user-supplied paths, split them into components, and compute
parents and basenames; every namespace implementation builds on them so the
semantics of odd inputs (``//a//b/``, ``"."`` segments, empty strings) are
identical across BSFS and the HDFS baseline.
"""

from __future__ import annotations

import re

from .errors import InvalidPathError

__all__ = [
    "ROOT",
    "normalize",
    "components",
    "parent",
    "basename",
    "join",
    "is_ancestor",
    "split_as_of",
]

#: The root directory path.
ROOT = "/"


def normalize(path: str) -> str:
    """Return the canonical form of ``path``.

    The canonical form is absolute, uses single ``/`` separators, carries no
    trailing slash (except for the root itself) and contains no ``.`` or
    empty components.  ``..`` components are rejected — neither HDFS nor
    BSFS resolve relative traversal server-side.
    """
    if not isinstance(path, str) or not path:
        raise InvalidPathError(path, "paths must be non-empty strings")
    if not path.startswith("/"):
        raise InvalidPathError(path, "paths must be absolute (start with '/')")
    parts: list[str] = []
    for part in path.split("/"):
        if part in ("", "."):
            continue
        if part == "..":
            raise InvalidPathError(path, "'..' components are not supported")
        parts.append(part)
    return ROOT + "/".join(parts)


def components(path: str) -> list[str]:
    """Split a path into its (normalised) components; the root has none."""
    norm = normalize(path)
    if norm == ROOT:
        return []
    return norm[1:].split("/")


def parent(path: str) -> str:
    """Return the parent directory of ``path`` (the root is its own parent)."""
    parts = components(path)
    if not parts:
        return ROOT
    return ROOT + "/".join(parts[:-1])


def basename(path: str) -> str:
    """Return the last component of ``path`` (empty string for the root)."""
    parts = components(path)
    return parts[-1] if parts else ""


def join(base: str, *parts: str) -> str:
    """Join path fragments under ``base`` and normalise the result."""
    pieces = [normalize(base).rstrip("/")]
    for part in parts:
        cleaned = part.strip("/")
        if cleaned:
            pieces.append(cleaned)
    joined = "/".join(pieces)
    return normalize(joined if joined.startswith("/") else "/" + joined)


#: ``AS OF`` read suffix: ``/logs/events@v12`` reads snapshot 12 of the file.
_AS_OF = re.compile(r"^(?P<path>.+?)@v(?P<version>\d+)$")


def split_as_of(path: str) -> tuple[str, int | None]:
    """Split an ``AS OF`` suffix off a read path.

    ``"/a/b@v12"`` becomes ``("/a/b", 12)``; a path without the suffix is
    returned unchanged with ``None``.  Only *read* entry points (``open``,
    ``open_read`` and the input formats built on them) interpret the
    suffix; namespace operations treat ``@`` as an ordinary character.
    """
    if not isinstance(path, str):
        raise InvalidPathError(path, "paths must be strings")
    match = _AS_OF.match(path)
    if match is None:
        return path, None
    return match.group("path"), int(match.group("version"))


def is_ancestor(ancestor: str, path: str) -> bool:
    """Whether ``ancestor`` is ``path`` itself or one of its ancestors."""
    ancestor_norm = normalize(ancestor)
    path_norm = normalize(path)
    if ancestor_norm == ROOT:
        return True
    return path_norm == ancestor_norm or path_norm.startswith(ancestor_norm + "/")
