"""Exception hierarchy shared by the file-system layers (BSFS and HDFS)."""

from __future__ import annotations

__all__ = [
    "FileSystemError",
    "InvalidPathError",
    "NoSuchPathError",
    "PathExistsError",
    "NotADirectoryError",
    "IsADirectoryError",
    "DirectoryNotEmptyError",
    "LeaseConflictError",
    "InvalidRangeError",
    "StreamClosedError",
    "UnsupportedOperationError",
    "QuotaExceededError",
]


class FileSystemError(Exception):
    """Base class for every error raised by a file-system implementation."""


class InvalidPathError(FileSystemError):
    """Raised for malformed paths (relative, empty, containing ``..``)."""

    def __init__(self, path: object, reason: str) -> None:
        super().__init__(f"invalid path {path!r}: {reason}")
        self.path = path
        self.reason = reason


class NoSuchPathError(FileSystemError):
    """Raised when a path does not exist."""

    def __init__(self, path: str) -> None:
        super().__init__(f"path {path!r} does not exist")
        self.path = path


class PathExistsError(FileSystemError):
    """Raised when creating a path that already exists (without overwrite)."""

    def __init__(self, path: str) -> None:
        super().__init__(f"path {path!r} already exists")
        self.path = path


class NotADirectoryError(FileSystemError):  # noqa: A001 - mirrors the builtin name
    """Raised when a directory operation hits a regular file."""

    def __init__(self, path: str) -> None:
        super().__init__(f"path {path!r} is not a directory")
        self.path = path


class IsADirectoryError(FileSystemError):  # noqa: A001 - mirrors the builtin name
    """Raised when a file operation hits a directory."""

    def __init__(self, path: str) -> None:
        super().__init__(f"path {path!r} is a directory")
        self.path = path


class DirectoryNotEmptyError(FileSystemError):
    """Raised when removing a non-empty directory without ``recursive=True``."""

    def __init__(self, path: str) -> None:
        super().__init__(f"directory {path!r} is not empty")
        self.path = path


class LeaseConflictError(FileSystemError):
    """Raised when a second writer tries to open a file already being written.

    Both HDFS and BSFS follow the single-writer model for a given file: the
    namespace hands out a write lease per path.
    """

    def __init__(self, path: str, holder: str | None = None) -> None:
        message = f"path {path!r} is already opened for writing"
        if holder:
            message += f" by {holder!r}"
        super().__init__(message)
        self.path = path
        self.holder = holder


class InvalidRangeError(FileSystemError):
    """Raised when a byte range addresses data beyond a file's extent.

    Carries the offending path, offset (and negative length, when that is
    the problem) plus the file's size, so locality code and its callers get
    an actionable message instead of a bare ``ValueError`` surfacing from
    deep inside block-layout math.
    """

    def __init__(
        self, path: str, offset: int, size: int, *, length: int | None = None
    ) -> None:
        if length is not None and length < 0:
            message = (
                f"negative length {length} for file {path!r} "
                f"(offset {offset}, size {size})"
            )
        else:
            message = f"offset {offset} is outside file {path!r} (size {size})"
        super().__init__(message)
        self.path = path
        self.offset = offset
        self.size = size
        self.length = length


class StreamClosedError(FileSystemError):
    """Raised when reading from or writing to a closed stream."""


class QuotaExceededError(FileSystemError):
    """Raised when a namespace operation would push a tenant over its quota.

    Carries the tenant, the exhausted resource (``"files"`` or ``"bytes"``),
    the amount requested and the usage/limit pair, so admission-control and
    job layers can report precisely *which* budget ran out.
    """

    def __init__(
        self, tenant: str, resource: str, *, requested: int, used: int, limit: int
    ) -> None:
        super().__init__(
            f"tenant {tenant!r} would exceed its {resource} quota: "
            f"requested {requested}, used {used}, limit {limit}"
        )
        self.tenant = tenant
        self.resource = resource
        self.requested = requested
        self.used = used
        self.limit = limit


class UnsupportedOperationError(FileSystemError):
    """Raised for operations a file system does not support.

    The paper stresses that HDFS "does not support concurrent writes to the
    same file; moreover, once a file is created, written and closed, the
    data cannot be overwritten or appended to" — those restrictions surface
    through this exception in the HDFS baseline, while BSFS supports them.
    """
