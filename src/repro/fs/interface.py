"""Abstract file-system interface shared by BSFS, HDFS and MapReduce.

The MapReduce engine (and the examples and benchmarks) only talk to storage
through this interface, exactly as Hadoop talks to any of its pluggable
``FileSystem`` implementations.  Swapping HDFS for BSFS — the paper's whole
point — is therefore a one-line change in application code.

The interface follows Hadoop's semantics rather than POSIX:

* files are written sequentially through an :class:`OutputStream` obtained
  from :meth:`FileSystem.create` (or :meth:`FileSystem.append` where
  supported);
* reads go through an :class:`InputStream` supporting positional reads;
* :meth:`FileSystem.block_locations` exposes the data layout so a scheduler
  can place computation close to the data.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Iterator

from .errors import StreamClosedError

__all__ = [
    "BlockLocation",
    "FileStatus",
    "OutputStream",
    "InputStream",
    "SnapshotPin",
    "FileSystem",
    "copy_path",
]


@dataclass(frozen=True, slots=True)
class BlockLocation:
    """Location of one block (or block-sized region) of a file."""

    offset: int
    length: int
    hosts: tuple[str, ...]

    def __post_init__(self) -> None:
        if self.offset < 0 or self.length < 0:
            raise ValueError("block offset and length must be non-negative")


@dataclass(frozen=True, slots=True)
class FileStatus:
    """Metadata describing one namespace entry."""

    path: str
    is_dir: bool
    size: int
    block_size: int
    replication: int
    modification_time: float = field(default_factory=time.time)

    @property
    def is_file(self) -> bool:
        """Whether the entry is a regular file."""
        return not self.is_dir


class OutputStream(ABC):
    """Sequential writer for one file."""

    def __init__(self) -> None:
        self._closed = False
        self._written = 0

    @property
    def closed(self) -> bool:
        """Whether the stream has been closed."""
        return self._closed

    @property
    def bytes_written(self) -> int:
        """Total number of bytes accepted by :meth:`write` so far."""
        return self._written

    def write(self, data: bytes) -> int:
        """Append ``data`` to the file; returns the number of bytes written."""
        if self._closed:
            raise StreamClosedError("write on a closed output stream")
        if not isinstance(data, (bytes, bytearray, memoryview)):
            raise TypeError("output streams accept bytes-like objects only")
        data = bytes(data)
        if data:
            self._write(data)
            self._written += len(data)
        return len(data)

    @abstractmethod
    def _write(self, data: bytes) -> None:
        """Implementation hook performing the actual write."""

    def flush(self) -> None:
        """Push buffered data towards storage (best effort; may be a no-op)."""

    def close(self) -> None:
        """Flush outstanding data and seal the file."""
        if self._closed:
            return
        self._close()
        self._closed = True

    @abstractmethod
    def _close(self) -> None:
        """Implementation hook performing the final flush/commit."""

    def __enter__(self) -> "OutputStream":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class InputStream(ABC):
    """Reader for one file, supporting sequential and positional reads."""

    def __init__(self, size: int) -> None:
        self._size = size
        self._position = 0
        self._closed = False

    @property
    def size(self) -> int:
        """Length of the file when the stream was opened."""
        return self._size

    @property
    def closed(self) -> bool:
        """Whether the stream has been closed."""
        return self._closed

    def tell(self) -> int:
        """Current read position."""
        return self._position

    def seek(self, offset: int) -> int:
        """Move the read position to ``offset`` (clamped to the file size)."""
        if offset < 0:
            raise ValueError("cannot seek to a negative offset")
        self._position = min(offset, self._size)
        return self._position

    def read(self, size: int = -1) -> bytes:
        """Read up to ``size`` bytes from the current position (all when < 0)."""
        if self._closed:
            raise StreamClosedError("read on a closed input stream")
        remaining = self._size - self._position
        if remaining <= 0:
            return b""
        if size < 0 or size > remaining:
            size = remaining
        data = self._pread(self._position, size)
        self._position += len(data)
        return data

    def pread(self, offset: int, size: int) -> bytes:
        """Positional read that does not move the stream position."""
        if self._closed:
            raise StreamClosedError("pread on a closed input stream")
        if offset < 0 or size < 0:
            raise ValueError("offset and size must be non-negative")
        if offset >= self._size:
            return b""
        size = min(size, self._size - offset)
        return self._pread(offset, size)

    @abstractmethod
    def _pread(self, offset: int, size: int) -> bytes:
        """Implementation hook: read exactly ``size`` bytes at ``offset``."""

    def close(self) -> None:
        """Release the stream's resources."""
        self._closed = True

    def __enter__(self) -> "InputStream":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __iter__(self) -> Iterator[bytes]:
        """Iterate over the remaining content in 1 MiB chunks."""
        while True:
            chunk = self.read(1024 * 1024)
            if not chunk:
                return
            yield chunk


class SnapshotPin:
    """A held snapshot lease returned by :meth:`FileSystem.pin`.

    For backends without a version garbage collector this is a pure token
    (nothing can reclaim the snapshot, so there is nothing to hold); BSFS
    returns a handle backed by the deployment's real pin registry.  Either
    way it is a context manager carrying the pinned ``version``, so callers
    (the MapReduce jobtracker) pin uniformly across backends.
    """

    def __init__(self, path: str, version: int) -> None:
        self.path = path
        self.version = version
        self.released = False

    def release(self) -> None:
        self.released = True

    def renew(self, ttl: float) -> None:
        """Extend the lease (no-op for token pins)."""

    def __enter__(self) -> "SnapshotPin":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()


class FileSystem(ABC):
    """Hadoop-style file system API implemented by BSFS and the HDFS baseline."""

    #: Human-readable scheme name (``"bsfs"``, ``"hdfs"``, ``"file"``), used
    #: in reports and by the URI registry (:mod:`repro.fs.registry`).
    scheme: str = "fs"

    #: Deployment label from the resolving URI (``"demo"`` in
    #: ``bsfs://demo``); stamped by the registry, empty for instances built
    #: directly from the constructor.
    authority: str = ""

    @property
    def uri(self) -> str:
        """The URI addressing this deployment (``scheme://authority``)."""
        return f"{self.scheme}://{self.authority}"

    # -- file creation / access ----------------------------------------------------
    @abstractmethod
    def create(
        self,
        path: str,
        *,
        overwrite: bool = False,
        block_size: int | None = None,
        replication: int | None = None,
        client_host: str | None = None,
    ) -> OutputStream:
        """Create ``path`` and return a stream for writing its content."""

    @abstractmethod
    def open(
        self,
        path: str,
        *,
        version: int | None = None,
        client_host: str | None = None,
    ) -> InputStream:
        """Open an existing file for reading.

        ``version`` selects an ``AS OF`` snapshot of the file; ``None``
        captures the latest state at open time.  The snapshot can also be
        named inline with an ``@vN`` path suffix (``/logs/events@v12``);
        see :meth:`_resolve_read_target`.  What a version *is* differs by
        backend — BSFS uses real BlobSeer snapshot versions, while backends
        without multi-versioning use the file size as the snapshot token
        (see :meth:`snapshot`) — but in all cases a given version's bytes
        never change once it exists.
        """

    @staticmethod
    def _resolve_read_target(
        path: str, version: int | None
    ) -> tuple[str, int | None]:
        """Apply the ``@vN`` read suffix, reconciling it with ``version``.

        Every backend's read entry points call this first, so the suffix
        behaves identically across BSFS, HDFS and LocalFS.  Naming two
        *different* versions (suffix and keyword) is rejected; naming the
        same one twice is allowed.
        """
        from .errors import InvalidPathError
        from .path import split_as_of

        bare, suffix_version = split_as_of(path)
        if suffix_version is None:
            return path, version
        if version is not None and version != suffix_version:
            raise InvalidPathError(
                path,
                f"@v{suffix_version} suffix conflicts with version={version}",
            )
        return bare, suffix_version

    def append(self, path: str, *, client_host: str | None = None) -> OutputStream:
        """Open an existing file for appending (optional operation)."""
        from .errors import UnsupportedOperationError

        raise UnsupportedOperationError(
            f"{self.scheme} does not support appending to {path!r}"
        )

    # -- streaming -------------------------------------------------------------------
    @staticmethod
    def _validate_stream_range(
        offset: int, length: int | None, chunk_size: int
    ) -> None:
        """Shared argument validation for every backend's ``open_read``,
        so switching backends never changes which inputs are rejected."""
        if offset < 0:
            raise ValueError("offset must be non-negative")
        if length is not None and length < 0:
            raise ValueError("length must be non-negative when given")
        if chunk_size < 1:
            raise ValueError("chunk_size must be positive")

    def open_read(
        self,
        path: str,
        *,
        offset: int = 0,
        length: int | None = None,
        chunk_size: int = 1024 * 1024,
        version: int | None = None,
        client_host: str | None = None,
    ) -> Iterator[memoryview]:
        """Stream a byte range of ``path`` as an iterator of memoryview chunks.

        The streaming read API of the I/O engine: no caller ever needs to
        materialise a whole file.  The base implementation chunks through
        :meth:`open`; backends override it to pipeline transfers (BSFS
        fetches pages concurrently with read-ahead, HDFS prefetches block
        chunks, LocalFS streams straight from disk).  ``length=None``
        streams to the end of the file as sized at open time.  ``version``
        (or an ``@vN`` path suffix) streams an ``AS OF`` snapshot, as in
        :meth:`open`.
        """
        self._validate_stream_range(offset, length, chunk_size)

        def generate() -> Iterator[memoryview]:
            with self.open(path, version=version, client_host=client_host) as stream:
                end = stream.size if length is None else min(
                    offset + length, stream.size
                )
                position = offset
                while position < end:
                    chunk = stream.pread(position, min(chunk_size, end - position))
                    if not chunk:
                        break
                    position += len(chunk)
                    yield memoryview(chunk)

        return generate()

    def open_write(
        self,
        path: str,
        *,
        overwrite: bool = False,
        block_size: int | None = None,
        replication: int | None = None,
        client_host: str | None = None,
    ) -> OutputStream:
        """Open a streaming write sink for a new file.

        The streaming counterpart of :meth:`create` — semantically the same
        stream today, named separately so call sites that *only* stream
        (shuffle spills, output formats, copies) are explicit about it and
        backends can route the sink through their transfer engine.
        """
        return self.create(
            path,
            overwrite=overwrite,
            block_size=block_size,
            replication=replication,
            client_host=client_host,
        )

    # -- namespace -------------------------------------------------------------------
    @abstractmethod
    def mkdirs(self, path: str) -> None:
        """Create a directory and any missing ancestors (idempotent)."""

    @abstractmethod
    def delete(self, path: str, *, recursive: bool = False) -> None:
        """Delete a file or directory."""

    @abstractmethod
    def rename(self, src: str, dst: str) -> None:
        """Rename/move ``src`` to ``dst``."""

    @abstractmethod
    def exists(self, path: str) -> bool:
        """Whether ``path`` exists."""

    @abstractmethod
    def status(self, path: str) -> FileStatus:
        """Return the :class:`FileStatus` of ``path``."""

    @abstractmethod
    def list_dir(self, path: str) -> list[FileStatus]:
        """List the entries of a directory (sorted by path)."""

    # -- locality ----------------------------------------------------------------------
    @abstractmethod
    def block_locations(
        self, path: str, offset: int = 0, length: int | None = None
    ) -> list[BlockLocation]:
        """Expose where the blocks of ``path`` live (for locality-aware scheduling)."""

    # -- snapshots ---------------------------------------------------------------------
    def snapshot(self, path: str) -> int:
        """Capture a snapshot token for the current state of ``path``.

        Reading with ``version=snapshot(path)`` later returns exactly the
        bytes the file held now, regardless of concurrent appends.  The
        base implementation — the documented no-op passthrough for
        backends without multi-versioning (HDFS, LocalFS) — uses the
        *file size* as the token: their files only grow (HDFS files are
        immutable once closed, appends on LocalFS only extend), so
        truncating reads at the captured size reproduces the old content.
        BSFS overrides this with real BlobSeer snapshot versions.
        """
        return self.size(path)

    def snapshot_size(self, path: str, version: int | None = None) -> int:
        """Size of ``path`` as of ``version`` (current size when ``None``).

        For size-token backends the version *is* the byte length, clamped
        to the current size for robustness; BSFS overrides this to ask the
        version manager.
        """
        current = self.size(path)
        if version is None:
            return current
        if version < 0:
            raise ValueError("snapshot version must be non-negative")
        return min(current, version)

    def pin(
        self,
        path: str,
        version: int | None = None,
        *,
        owner: str = "reader",
        ttl: float | None = None,
    ) -> SnapshotPin:
        """Pin a snapshot of ``path`` against reclamation; returns the lease.

        ``version=None`` pins the snapshot captured right now (via
        :meth:`snapshot`).  On backends without a garbage collector the
        returned pin is a pure token — old content is implicitly retained
        because files only grow — so this base implementation never
        blocks or expires anything.  BSFS overrides it to take a real
        lease in the deployment's pin registry, which the version GC
        honours.
        """
        if version is None:
            version = self.snapshot(path)
        return SnapshotPin(path, version)

    # -- convenience helpers -------------------------------------------------------
    def is_dir(self, path: str) -> bool:
        """Whether ``path`` exists and is a directory."""
        return self.exists(path) and self.status(path).is_dir

    def is_file(self, path: str) -> bool:
        """Whether ``path`` exists and is a regular file."""
        return self.exists(path) and self.status(path).is_file

    def size(self, path: str) -> int:
        """Size in bytes of the file at ``path``."""
        return self.status(path).size

    def read_file(self, path: str) -> bytes:
        """Read an entire file into memory (convenience for small files)."""
        with self.open(path) as stream:
            return stream.read()

    def write_file(
        self,
        path: str,
        data: bytes,
        *,
        overwrite: bool = False,
        block_size: int | None = None,
        replication: int | None = None,
    ) -> None:
        """Create ``path`` with content ``data`` (convenience for small files)."""
        with self.create(
            path,
            overwrite=overwrite,
            block_size=block_size,
            replication=replication,
        ) as stream:
            stream.write(data)

    def list_files(self, path: str, *, recursive: bool = False) -> list[FileStatus]:
        """List the regular files under ``path`` (optionally recursively).

        When ``path`` itself names a regular file its own status is
        returned, matching Hadoop's ``listStatus`` globbing behaviour.
        """
        status = self.status(path)
        if status.is_file:
            return [status]
        result: list[FileStatus] = []
        for entry in self.list_dir(path):
            if entry.is_dir:
                if recursive:
                    result.extend(self.list_files(entry.path, recursive=True))
            else:
                result.append(entry)
        return sorted(result, key=lambda status: status.path)


def copy_path(
    source_fs: FileSystem,
    source_path: str,
    target_fs: FileSystem,
    target_path: str,
    *,
    chunk_size: int = 4 * 1024 * 1024,
    overwrite: bool = False,
) -> int:
    """Copy one file between (possibly different) file systems.

    Returns the number of bytes copied.  Used by examples and by the
    versioned-workflow extension benchmark to stage data between BSFS and
    HDFS deployments.  Both sides go through the streaming API, so the
    source's read-ahead overlaps with the target's block pushes.
    """
    copied = 0
    with target_fs.open_write(target_path, overwrite=overwrite) as dst:
        for chunk in source_fs.open_read(source_path, chunk_size=chunk_size):
            dst.write(chunk)
            copied += len(chunk)
    return copied
