"""Shared file-system abstractions: paths, URIs, errors, the Hadoop-style
API, and the scheme registry resolving URIs to pluggable backends."""

from .errors import (
    DirectoryNotEmptyError,
    FileSystemError,
    InvalidPathError,
    InvalidRangeError,
    IsADirectoryError,
    LeaseConflictError,
    NoSuchPathError,
    NotADirectoryError,
    PathExistsError,
    QuotaExceededError,
    StreamClosedError,
    UnsupportedOperationError,
)
from .interface import (
    BlockLocation,
    FileStatus,
    FileSystem,
    InputStream,
    OutputStream,
    copy_path,
)
from .local import LocalFS
from .quota import (
    QuotaManager,
    TenantQuota,
    TenantUsage,
    attach_quota_manager,
    current_tenant,
    tenant_scope,
)
from .sharded import ShardedNamespaceTree, make_namespace_tree
from .registry import (
    UnknownSchemeError,
    clear_instance_cache,
    copy_uri,
    get_filesystem,
    is_registered,
    open_fs,
    register_scheme,
    registered_schemes,
    unregister_scheme,
)
from .uri import FsUri
from . import path
from . import uri

__all__ = [
    "path",
    "uri",
    "FsUri",
    "FileSystem",
    "LocalFS",
    "ShardedNamespaceTree",
    "make_namespace_tree",
    "InputStream",
    "OutputStream",
    "BlockLocation",
    "FileStatus",
    "copy_path",
    "copy_uri",
    "register_scheme",
    "unregister_scheme",
    "registered_schemes",
    "is_registered",
    "get_filesystem",
    "open_fs",
    "clear_instance_cache",
    "UnknownSchemeError",
    "FileSystemError",
    "InvalidPathError",
    "InvalidRangeError",
    "NoSuchPathError",
    "PathExistsError",
    "NotADirectoryError",
    "IsADirectoryError",
    "DirectoryNotEmptyError",
    "LeaseConflictError",
    "StreamClosedError",
    "UnsupportedOperationError",
    "QuotaExceededError",
    "QuotaManager",
    "TenantQuota",
    "TenantUsage",
    "attach_quota_manager",
    "current_tenant",
    "tenant_scope",
]
