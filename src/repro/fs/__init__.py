"""Shared file-system abstractions: paths, errors and the Hadoop-style API."""

from .errors import (
    DirectoryNotEmptyError,
    FileSystemError,
    InvalidPathError,
    IsADirectoryError,
    LeaseConflictError,
    NoSuchPathError,
    NotADirectoryError,
    PathExistsError,
    StreamClosedError,
    UnsupportedOperationError,
)
from .interface import (
    BlockLocation,
    FileStatus,
    FileSystem,
    InputStream,
    OutputStream,
    copy_path,
)
from . import path

__all__ = [
    "path",
    "FileSystem",
    "InputStream",
    "OutputStream",
    "BlockLocation",
    "FileStatus",
    "copy_path",
    "FileSystemError",
    "InvalidPathError",
    "NoSuchPathError",
    "PathExistsError",
    "NotADirectoryError",
    "IsADirectoryError",
    "DirectoryNotEmptyError",
    "LeaseConflictError",
    "StreamClosedError",
    "UnsupportedOperationError",
]
