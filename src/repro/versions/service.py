"""Control-plane exposure of the version garbage collector.

A deployment can drive GC two ways:

* **in-process** — ``client.gc.start(interval)`` runs the daemon next to
  the version manager (the default for the functional deployment);
* **over the wire** — the node hosting the version manager registers a
  :class:`VersionGCService` in its :class:`~repro.net.service.ServiceRegistry`
  (alongside the control service that receives heartbeats), and an operator
  or coordinator drives cycles through a :class:`RemoteVersionGC` stub —
  optionally on a timer via :class:`~repro.versions.gc.GcDaemon`, exactly
  like :class:`~repro.net.liveness.HeartbeatPump` drives heartbeats.

Every RPC answer is a JSON-friendly dict so monitoring can forward it
verbatim.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from ..net.errors import NetError
from ..net.transport import Transport
from .gc import GcDaemon, VersionGC

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..net.service import ServiceRegistry

__all__ = [
    "GC_SERVICE",
    "GcUnreachableError",
    "VersionGCService",
    "RemoteVersionGC",
    "expose_gc",
    "connect_gc",
    "drive_remote_gc",
]

#: Service name the collector is exposed under on the version-manager node.
GC_SERVICE = "version_gc"


class VersionGCService:
    """Server-side adapter: the RPC surface of one :class:`VersionGC`."""

    def __init__(self, gc: VersionGC) -> None:
        self._gc = gc

    def run_once(self) -> dict:
        """Collect every blob once; returns the aggregate report."""
        return self._gc.run_once().describe()

    def collect(self, blob_id: int) -> dict:
        """Collect a single blob."""
        return self._gc.collect(blob_id).describe()

    def plan(self, blob_id: int) -> dict:
        """Mark phase only: what a collection of ``blob_id`` would reclaim."""
        plan = self._gc.plan(blob_id)
        return {
            "blob_id": plan.blob_id,
            "live_versions": list(plan.live_versions),
            "dead_versions": list(plan.dead_versions),
            "dead_pages": len(plan.dead_pages),
            "dead_nodes": len(plan.dead_nodes),
            "live_pages": plan.live_pages,
            "live_bytes": plan.live_bytes,
        }

    def describe(self) -> dict:
        """Space accounting and lifetime counters."""
        return self._gc.describe()


def expose_gc(
    registry: "ServiceRegistry", gc: VersionGC, *, name: str = GC_SERVICE
) -> VersionGCService:
    """Register ``gc`` in ``registry`` under ``name`` and return the adapter."""
    service = VersionGCService(gc)
    registry.register(name, service)
    return service


class GcUnreachableError(NetError):
    """The GC node cannot be reached (transport failure after retries)."""


class RemoteVersionGC:
    """Client stub mirroring :class:`VersionGCService` over a transport."""

    def __init__(self, transport: Transport, *, service: str = GC_SERVICE) -> None:
        self._transport = transport
        self._service = service

    def _call(self, method: str, *args: Any) -> Any:
        try:
            return self._transport.call(self._service, method, *args)
        except NetError as exc:
            raise GcUnreachableError(
                f"version GC at {self._transport.peer} unreachable: {exc!r}"
            ) from exc

    def run_once(self) -> dict:
        return self._call("run_once")

    def collect(self, blob_id: int) -> dict:
        return self._call("collect", blob_id)

    def plan(self, blob_id: int) -> dict:
        return self._call("plan", blob_id)

    def describe(self) -> dict:
        return self._call("describe")

    def close(self) -> None:
        self._transport.close()

    @property
    def transport(self) -> Transport:
        return self._transport

    def __enter__(self) -> "RemoteVersionGC":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def connect_gc(transport: Transport, *, service: str = GC_SERVICE) -> RemoteVersionGC:
    """Wrap ``transport`` in a :class:`RemoteVersionGC` stub."""
    return RemoteVersionGC(transport, service=service)


def drive_remote_gc(stub: RemoteVersionGC, interval: float) -> GcDaemon:
    """Start a daemon invoking ``stub.run_once`` every ``interval`` seconds."""
    return GcDaemon(stub.run_once, interval, name="remote-version-gc").start()
