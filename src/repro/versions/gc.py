"""Version garbage collector: mark-and-sweep page reachability over snapshots.

BlobSeer never overwrites data, so under write-heavy churn the provider pool
accumulates pages only old snapshots reference.  :class:`VersionGC` converts
the retention policy and pin registry into reclaimed space:

1. **mark** — for each blob, compute the *live* version set (retention rules
   ∪ pinned versions ∪ the latest published version ∪ any version an
   in-flight writer's boundary merge still depends on) and walk their
   metadata trees, collecting every reachable tree node and page key;
2. **retire** — drop the dead versions from the version manager's catalogue
   so new readers fail fast with ``VersionRetiredError``;
3. **sweep** — delete the dead versions' unreachable tree nodes from the
   metadata DHT and remove unreachable pages (including orphans left by
   aborted writers) from every provider.

Structural sharing makes the mark phase precise for free: a page or node
shared by a dead and a live version is reachable from the live root and is
therefore spared.  The collector is safe to run concurrently with writers —
pages of unpublished versions are newer than the head snapshot the plan was
computed against and are never touched.

The collector can run in-process (``run_once`` / the background daemon
started by :meth:`VersionGC.start`) or be exposed over the ``repro.net``
control plane (:mod:`repro.versions.service`).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable

from .pins import PinRegistry
from .retention import RetentionPolicy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..core.client import BlobSeer
    from ..core.metadata import NodeKey
    from ..core.pages import PageDescriptor, PageKey

__all__ = ["GcPlan", "GcReport", "VersionGC", "GcDaemon"]


@dataclass(frozen=True)
class GcPlan:
    """What one blob's collection cycle intends to do (mark-phase output)."""

    blob_id: int
    live_versions: tuple[int, ...]
    dead_versions: tuple[int, ...]
    dead_pages: tuple["PageKey", ...]
    dead_nodes: tuple[str, ...]
    live_pages: int
    live_bytes: int


@dataclass
class GcReport:
    """Aggregated result of one or more collection cycles."""

    blobs_scanned: int = 0
    versions_retired: int = 0
    pages_reclaimed: int = 0
    bytes_reclaimed: int = 0
    nodes_reclaimed: int = 0
    live_versions: int = 0
    live_pages: int = 0
    live_bytes: int = 0
    errors: int = 0

    def merge(self, other: "GcReport") -> None:
        self.blobs_scanned += other.blobs_scanned
        self.versions_retired += other.versions_retired
        self.pages_reclaimed += other.pages_reclaimed
        self.bytes_reclaimed += other.bytes_reclaimed
        self.nodes_reclaimed += other.nodes_reclaimed
        self.live_versions += other.live_versions
        self.live_pages += other.live_pages
        self.live_bytes += other.live_bytes
        self.errors += other.errors

    def describe(self) -> dict:
        return {
            "blobs_scanned": self.blobs_scanned,
            "versions_retired": self.versions_retired,
            "pages_reclaimed": self.pages_reclaimed,
            "bytes_reclaimed": self.bytes_reclaimed,
            "nodes_reclaimed": self.nodes_reclaimed,
            "live_versions": self.live_versions,
            "live_pages": self.live_pages,
            "live_bytes": self.live_bytes,
            "errors": self.errors,
        }


@dataclass
class _Totals:
    """Lifetime counters of one collector (monotonic, lock-protected)."""

    runs: int = 0
    versions_retired: int = 0
    pages_reclaimed: int = 0
    bytes_reclaimed: int = 0
    nodes_reclaimed: int = 0
    lock: threading.Lock = field(default_factory=threading.Lock)


class VersionGC:
    """Background (or on-demand) collector of dead blob versions."""

    def __init__(
        self,
        client: "BlobSeer",
        *,
        policy: RetentionPolicy | None = None,
        pins: PinRegistry | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._client = client
        self.policy = policy if policy is not None else RetentionPolicy()
        self.pins = pins if pins is not None else PinRegistry()
        self._clock = clock
        self._totals = _Totals()
        self._daemon: GcDaemon | None = None
        # One collection at a time: overlapping sweeps of the same blob
        # would double-count reclaimed space.
        self._run_lock = threading.Lock()

    # --------------------------------------------------------------------- mark
    def _walk(
        self, roots: Iterable["NodeKey | None"]
    ) -> tuple[set[str], dict["PageKey", "PageDescriptor"]]:
        """Reachable (node dht-keys, page descriptors) from ``roots``."""
        manager = self._client.metadata_manager
        nodes: set[str] = set()
        pages: dict["PageKey", "PageDescriptor"] = {}
        stack = [root for root in roots if root is not None]
        while stack:
            key = stack.pop()
            dht_key = key.dht_key()
            if dht_key in nodes:
                continue
            nodes.add(dht_key)
            node = manager.fetch(key)
            if node.page is not None:
                pages[node.page.key] = node.page
            if node.left is not None:
                stack.append(node.left)
            if node.right is not None:
                stack.append(node.right)
        return nodes, pages

    def live_versions(self, blob_id: int) -> set[int]:
        """The versions of ``blob_id`` this collector would retain right now."""
        return set(self._plan_versions(blob_id)[0])

    def _plan_versions(self, blob_id: int) -> tuple[set[int], set[int]]:
        vm = self._client.version_manager
        published = set(vm.published_versions(blob_id))
        pinned = self.pins.pinned_versions(blob_id)
        retained = self.policy.retained(
            published,
            pinned=pinned,
            published_times=vm.publication_times(blob_id),
            now=self._clock(),
        )
        # Writers in flight merge boundary pages from their base version:
        # everything at or above the lowest in-flight base must survive.
        floor = vm.inflight_floor(blob_id)
        if floor is not None:
            retained |= {v for v in published if v >= floor}
        return retained, published - retained

    def plan(self, blob_id: int) -> GcPlan:
        """Mark phase for one blob: compute what a collection would reclaim."""
        vm = self._client.version_manager
        # Snapshot the publication head *before* computing the version sets:
        # any page with a newer version belongs to a writer still in flight
        # (or one that published after this point) and must not be swept as
        # an orphan, because its tree may not be walked below.
        head = vm.latest_version(blob_id)
        live, dead = self._plan_versions(blob_id)
        roots = vm.snapshot_roots(blob_id)
        live_nodes, live_pages = self._walk(
            root for version, root in roots.items() if version in live
        )
        dead_nodes, dead_page_map = self._walk(
            root for version, root in roots.items() if version in dead
        )
        dead_nodes -= live_nodes
        reclaim: dict["PageKey", int] = {
            key: descriptor.size
            for key, descriptor in dead_page_map.items()
            if key not in live_pages
        }
        # Orphan sweep: pages stored on providers that no published tree
        # references (aborted writers, superseded replicas).  Only pages no
        # newer than the head snapshot are candidates.
        for provider in self._client.provider_manager.providers:
            try:
                stored = provider.pages_for_blob(blob_id)
            except Exception:
                continue
            for key in stored:
                if key.version > head or key in live_pages or key in reclaim:
                    continue
                if key in dead_page_map:
                    continue  # already accounted via its descriptor
                reclaim[key] = -1  # size discovered at sweep time
        live_bytes = sum(
            descriptor.size * max(len(descriptor.providers), 1)
            for descriptor in live_pages.values()
        )
        return GcPlan(
            blob_id=blob_id,
            live_versions=tuple(sorted(live)),
            dead_versions=tuple(sorted(dead)),
            dead_pages=tuple(reclaim),
            dead_nodes=tuple(sorted(dead_nodes)),
            live_pages=len(live_pages),
            live_bytes=live_bytes,
        )

    # -------------------------------------------------------------------- sweep
    def collect(self, blob_id: int) -> GcReport:
        """Run one full mark–retire–sweep cycle for ``blob_id``."""
        with self._run_lock:
            return self._collect_locked(blob_id)

    def _collect_locked(self, blob_id: int) -> GcReport:
        vm = self._client.version_manager
        retired: list[int] = []
        # Retire first — atomically against the pin registry — so a version
        # is either spared (its pin landed before the retire and the plan is
        # recomputed) or new readers of it fail fast with
        # VersionRetiredError instead of racing the sweep below.  Only a
        # plan whose dead versions were actually retired may be swept.
        plan: GcPlan | None = None
        for _ in range(8):
            candidate = self.plan(blob_id)
            if not candidate.dead_versions or self.pins.guard_sweep(
                blob_id,
                candidate.dead_versions,
                # Group-commit retire: the whole dead set drops from the
                # catalogue under one per-blob lock hold.
                lambda: retired.extend(
                    vm.retire_batch(  # noqa: B023
                        [(blob_id, candidate.dead_versions)]  # noqa: B023
                    ).get(blob_id, [])
                ),
            ):
                plan = candidate
                break
            # A pin landed between the mark phase and the retire: re-plan.
        if plan is None:
            # Persistent pin churn: report accounting only, sweep nothing.
            safe = self.plan(blob_id)
            return GcReport(
                blobs_scanned=1,
                live_versions=len(safe.live_versions) + len(safe.dead_versions),
                live_pages=safe.live_pages,
                live_bytes=safe.live_bytes,
            )
        report = GcReport(
            blobs_scanned=1,
            live_versions=len(plan.live_versions),
            live_pages=plan.live_pages,
            live_bytes=plan.live_bytes,
        )
        report.versions_retired = len(retired)
        dht = self._client.dht
        for dht_key in plan.dead_nodes:
            try:
                dht.delete(dht_key)
                report.nodes_reclaimed += 1
            except Exception:
                report.errors += 1
        for key in plan.dead_pages:
            for provider in self._client.provider_manager.providers:
                try:
                    if not provider.has_page(key):
                        continue
                    size = len(provider.get_page(key))
                    provider.remove_page(key)
                    report.pages_reclaimed += 1
                    report.bytes_reclaimed += size
                except Exception:
                    report.errors += 1
        with self._totals.lock:
            self._totals.versions_retired += report.versions_retired
            self._totals.pages_reclaimed += report.pages_reclaimed
            self._totals.bytes_reclaimed += report.bytes_reclaimed
            self._totals.nodes_reclaimed += report.nodes_reclaimed
        return report

    def run_once(self) -> GcReport:
        """Collect every blob of the deployment once; returns the aggregate."""
        report = GcReport()
        with self._run_lock:
            for blob_id in self._client.version_manager.blob_ids():
                try:
                    report.merge(self._collect_locked(blob_id))
                except Exception:
                    report.errors += 1
            with self._totals.lock:
                self._totals.runs += 1
        return report

    # ------------------------------------------------------------------- daemon
    def start(self, interval: float) -> "GcDaemon":
        """Start a background daemon sweeping every ``interval`` seconds."""
        if self._daemon is not None and self._daemon.running:
            raise RuntimeError("the GC daemon is already running")
        self._daemon = GcDaemon(self.run_once, interval, name="version-gc")
        self._daemon.start()
        return self._daemon

    def stop(self) -> None:
        """Stop the background daemon (idempotent)."""
        if self._daemon is not None:
            self._daemon.stop()
            self._daemon = None

    @property
    def running(self) -> bool:
        return self._daemon is not None and self._daemon.running

    # --------------------------------------------------------------- monitoring
    def describe(self) -> dict:
        """Space accounting + lifetime counters (reports, control plane)."""
        per_blob: dict[int, dict] = {}
        total_live_pages = 0
        total_live_bytes = 0
        for blob_id in self._client.version_manager.blob_ids():
            try:
                plan = self.plan(blob_id)
            except Exception:
                continue
            per_blob[blob_id] = {
                "live_versions": len(plan.live_versions),
                "dead_versions": len(plan.dead_versions),
                "live_pages": plan.live_pages,
                "live_bytes": plan.live_bytes,
            }
            total_live_pages += plan.live_pages
            total_live_bytes += plan.live_bytes
        with self._totals.lock:
            totals = {
                "runs": self._totals.runs,
                "versions_retired": self._totals.versions_retired,
                "pages_reclaimed": self._totals.pages_reclaimed,
                "bytes_reclaimed": self._totals.bytes_reclaimed,
                "nodes_reclaimed": self._totals.nodes_reclaimed,
            }
        return {
            "policy": self.policy.describe(),
            "pins": self.pins.describe(),
            "running": self.running,
            "live_pages": total_live_pages,
            "live_bytes": total_live_bytes,
            "totals": totals,
            "blobs": per_blob,
        }


class GcDaemon:
    """Periodic driver for a collection callable (local or remote).

    The same harness drives an in-process :meth:`VersionGC.run_once` and a
    :class:`~repro.versions.service.RemoteVersionGC` stub, mirroring how
    :class:`~repro.net.liveness.HeartbeatPump` drives heartbeats.
    """

    def __init__(
        self,
        run: Callable[[], object],
        interval: float,
        *,
        name: str = "gc-daemon",
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self._run = run
        self._interval = interval
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._loop, name=name, daemon=True)
        #: Completed collection cycles (failures count separately).
        self.cycles = 0
        #: Cycles that raised (the daemon keeps going).
        self.failures = 0

    def start(self) -> "GcDaemon":
        self._thread.start()
        return self

    def _loop(self) -> None:
        while not self._stop.wait(self._interval):
            try:
                self._run()
                self.cycles += 1
            except Exception:
                self.failures += 1

    @property
    def running(self) -> bool:
        return self._thread.is_alive()

    def stop(self) -> None:
        self._stop.set()
        if self._thread.is_alive():
            self._thread.join(timeout=5.0)

    def __enter__(self) -> "GcDaemon":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
