"""repro.versions — the snapshot lifecycle subsystem.

BlobSeer's signature feature is multi-versioned concurrency: every write
publishes an immutable snapshot.  This package turns that mechanism into a
production lifecycle:

* :class:`PinRegistry` / :class:`SnapshotHandle` — refcounted, optionally
  expiring leases readers and MapReduce jobs take on a published version;
* :class:`RetentionPolicy` — keep-last-N / TTL / pinned retention rules;
* :class:`VersionGC` — mark-and-sweep collector walking the snapshot
  metadata trees to reclaim unreachable pages and tree nodes, runnable
  in-process (:class:`GcDaemon`) or over the ``repro.net`` control plane
  (:mod:`repro.versions.service`).

The control-plane adapters live in :mod:`repro.versions.service` and are
re-exported lazily so importing this package never drags in the network
stack.
"""

from __future__ import annotations

from .gc import GcDaemon, GcPlan, GcReport, VersionGC
from .pins import PinRegistry, SnapshotHandle
from .retention import RetentionPolicy

__all__ = [
    "SnapshotHandle",
    "PinRegistry",
    "RetentionPolicy",
    "VersionGC",
    "GcDaemon",
    "GcPlan",
    "GcReport",
    # lazily re-exported from repro.versions.service:
    "GC_SERVICE",
    "VersionGCService",
    "RemoteVersionGC",
    "expose_gc",
    "connect_gc",
    "drive_remote_gc",
]

_SERVICE_EXPORTS = {
    "GC_SERVICE",
    "VersionGCService",
    "RemoteVersionGC",
    "expose_gc",
    "connect_gc",
    "drive_remote_gc",
}


def __getattr__(name: str):
    # PEP 562 lazy import: repro.core imports this package, and the service
    # module imports repro.net which imports repro.core — resolving the
    # network-facing names on first use keeps the import graph acyclic.
    if name in _SERVICE_EXPORTS:
        from . import service

        return getattr(service, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
