"""Retention policy: which published versions must survive garbage collection.

The policy composes three rules, any of which retains a version:

* **keep-last-N** — the newest ``keep_last`` published versions (the latest
  published version is always retained, even with ``keep_last=1``);
* **TTL** — versions published less than ``ttl_seconds`` ago;
* **pinned** — versions held by a live :class:`~repro.versions.PinRegistry`
  lease (supplied by the caller, not the policy).

Version 0, the implicit empty snapshot every blob starts from, is always
retained: it owns no pages, and the version manager relies on it as the
base of the history.  A policy with ``keep_last=None`` and
``ttl_seconds=None`` retains everything — the seed behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

__all__ = ["RetentionPolicy"]


@dataclass(frozen=True)
class RetentionPolicy:
    """Declarative retention rules evaluated per blob by the GC."""

    keep_last: int | None = None
    ttl_seconds: float | None = None

    def __post_init__(self) -> None:
        if self.keep_last is not None and self.keep_last < 1:
            raise ValueError("keep_last must be None or >= 1")
        if self.ttl_seconds is not None and self.ttl_seconds < 0:
            raise ValueError("ttl_seconds must be None or >= 0")

    @property
    def retains_everything(self) -> bool:
        """True when no rule ever lets a version die (GC has nothing to do)."""
        return self.keep_last is None and self.ttl_seconds is None

    def retained(
        self,
        published: Iterable[int],
        *,
        pinned: Iterable[int] = (),
        published_times: Mapping[int, float] | None = None,
        now: float | None = None,
    ) -> set[int]:
        """Versions of ``published`` that must survive this GC cycle.

        ``published`` are the live published versions of one blob;
        ``pinned`` the versions currently leased; ``published_times`` and
        ``now`` feed the TTL rule (versions missing a timestamp are
        conservatively retained).
        """
        versions = sorted(set(published))
        if not versions:
            return set()
        keep: set[int] = {0} & set(versions)
        keep.update(set(pinned) & set(versions))
        latest = versions[-1]
        keep.add(latest)
        if self.retains_everything:
            return set(versions)
        if self.keep_last is not None:
            # Version 0 does not consume a keep-last slot: it has no pages.
            real = [v for v in versions if v > 0]
            keep.update(real[-self.keep_last :])
        if self.ttl_seconds is not None:
            times = published_times or {}
            if now is None:
                raise ValueError("ttl_seconds requires a `now` timestamp")
            for version in versions:
                stamp = times.get(version)
                if stamp is None or now - stamp < self.ttl_seconds:
                    keep.add(version)
        return keep

    def dead(
        self,
        published: Iterable[int],
        *,
        pinned: Iterable[int] = (),
        published_times: Mapping[int, float] | None = None,
        now: float | None = None,
    ) -> set[int]:
        """Complement of :meth:`retained` over ``published``."""
        versions = set(published)
        return versions - self.retained(
            versions, pinned=pinned, published_times=published_times, now=now
        )

    def describe(self) -> dict:
        return {
            "keep_last": self.keep_last,
            "ttl_seconds": self.ttl_seconds,
            "retains_everything": self.retains_everything,
        }
