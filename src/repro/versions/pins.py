"""Snapshot pins: refcounted, optionally expiring leases on published versions.

A *pin* is a promise from the storage layer to a reader: as long as the pin
is held, the pinned snapshot's pages and metadata tree will not be reclaimed
by the version garbage collector and the blob itself cannot be deleted.
Readers (streams, MapReduce jobs) take a :class:`SnapshotHandle` when they
start and release it when they finish; pins on the same ``(blob, version)``
are refcounted so any number of concurrent readers share one snapshot.

Pins may carry a TTL, making them *leases*: a reader that dies without
releasing keeps the snapshot alive only until the lease expires, after which
the GC may reclaim it.  The clock is injectable so tests can expire leases
deterministically.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Callable, Iterable

__all__ = ["SnapshotHandle", "PinRegistry"]


class SnapshotHandle:
    """A held pin on one published version; release it (or let it expire).

    Handles are context managers::

        with client.pin_version(blob_id) as pin:
            data = client.read(blob_id, 0, size, version=pin.version)
    """

    __slots__ = ("_registry", "handle_id", "blob_id", "version", "owner", "expires_at")

    def __init__(
        self,
        registry: "PinRegistry",
        handle_id: int,
        blob_id: int,
        version: int,
        owner: str,
        expires_at: float | None,
    ) -> None:
        self._registry = registry
        self.handle_id = handle_id
        self.blob_id = blob_id
        self.version = version
        self.owner = owner
        self.expires_at = expires_at

    @property
    def released(self) -> bool:
        """Whether this handle no longer holds its pin (released or expired)."""
        return not self._registry._holds(self)

    def release(self) -> None:
        """Drop the pin (idempotent)."""
        self._registry.release(self)

    def renew(self, ttl: float) -> None:
        """Extend the lease of a still-held pin by ``ttl`` seconds from now."""
        self._registry.renew(self, ttl)

    def __enter__(self) -> "SnapshotHandle":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SnapshotHandle(blob={self.blob_id}, version={self.version}, "
            f"owner={self.owner!r})"
        )


class PinRegistry:
    """Refcounted snapshot pins with optional lease expiry and drain hooks."""

    def __init__(
        self,
        *,
        clock: Callable[[], float] = time.monotonic,
        default_ttl: float | None = None,
    ) -> None:
        self._clock = clock
        self._default_ttl = default_ttl
        self._lock = threading.Condition()
        self._handle_ids = itertools.count(1)
        # (blob_id, version) -> {handle_id -> SnapshotHandle}
        self._pins: dict[tuple[int, int], dict[int, SnapshotHandle]] = {}
        # blob_id -> callbacks to fire once the blob has no pins left.
        self._drain_hooks: dict[int, list[Callable[[], None]]] = {}
        self._expired_total = 0
        self._released_total = 0
        self._pinned_total = 0

    # ------------------------------------------------------------------ pinning
    def pin(
        self,
        blob_id: int,
        version: int,
        *,
        owner: str = "anonymous",
        ttl: float | None = None,
    ) -> SnapshotHandle:
        """Take a pin on ``(blob_id, version)`` and return its handle.

        ``ttl`` overrides the registry default; ``None`` with no default
        means the pin never expires.
        """
        effective_ttl = ttl if ttl is not None else self._default_ttl
        with self._lock:
            expires_at = (
                self._clock() + effective_ttl if effective_ttl is not None else None
            )
            handle = SnapshotHandle(
                self, next(self._handle_ids), blob_id, version, owner, expires_at
            )
            self._pins.setdefault((blob_id, version), {})[handle.handle_id] = handle
            self._pinned_total += 1
            return handle

    def release(self, handle: SnapshotHandle) -> None:
        """Drop ``handle``'s pin; fires drain hooks when the blob empties."""
        with self._lock:
            key = (handle.blob_id, handle.version)
            holders = self._pins.get(key)
            if holders is None or holders.pop(handle.handle_id, None) is None:
                return
            self._released_total += 1
            if not holders:
                del self._pins[key]
            hooks = self._drained_hooks_locked(handle.blob_id)
            self._lock.notify_all()
        for hook in hooks:
            hook()

    def renew(self, handle: SnapshotHandle, ttl: float) -> None:
        """Extend a held lease; raises ``KeyError`` if the pin is gone."""
        if ttl <= 0:
            raise ValueError("ttl must be positive")
        with self._lock:
            self._expire_locked()
            holders = self._pins.get((handle.blob_id, handle.version), {})
            if handle.handle_id not in holders:
                raise KeyError(
                    f"pin on blob {handle.blob_id} version {handle.version} "
                    "already released or expired"
                )
            handle.expires_at = self._clock() + ttl

    # ------------------------------------------------------------------ queries
    def _holds(self, handle: SnapshotHandle) -> bool:
        with self._lock:
            self._expire_locked()
            holders = self._pins.get((handle.blob_id, handle.version), {})
            return handle.handle_id in holders

    def is_pinned(self, blob_id: int, version: int) -> bool:
        """Whether any live pin holds ``(blob_id, version)``."""
        with self._lock:
            self._expire_locked()
            return bool(self._pins.get((blob_id, version)))

    def pinned_versions(self, blob_id: int) -> set[int]:
        """Versions of ``blob_id`` held by at least one live pin."""
        with self._lock:
            self._expire_locked()
            return {v for (b, v) in self._pins if b == blob_id}

    def pin_count(self, blob_id: int) -> int:
        """Total live pins across all versions of ``blob_id``."""
        with self._lock:
            self._expire_locked()
            return sum(
                len(holders) for (b, _), holders in self._pins.items() if b == blob_id
            )

    def active_pins(self) -> list[SnapshotHandle]:
        """Every live handle (after expiring stale leases)."""
        with self._lock:
            self._expire_locked()
            return [h for holders in self._pins.values() for h in holders.values()]

    # ------------------------------------------------------------------- expiry
    def _expire_locked(self) -> list[Callable[[], None]]:
        now = self._clock()
        hooks: list[Callable[[], None]] = []
        expired_blobs: set[int] = set()
        for key in list(self._pins):
            holders = self._pins[key]
            for handle_id, handle in list(holders.items()):
                if handle.expires_at is not None and handle.expires_at <= now:
                    del holders[handle_id]
                    self._expired_total += 1
                    expired_blobs.add(key[0])
            if not holders:
                del self._pins[key]
        for blob_id in expired_blobs:
            hooks.extend(self._drained_hooks_locked(blob_id))
        if expired_blobs:
            self._lock.notify_all()
        return hooks

    def expire(self) -> None:
        """Sweep expired leases now (also done lazily by every query)."""
        with self._lock:
            hooks = self._expire_locked()
        for hook in hooks:
            hook()

    # -------------------------------------------------------------------- drain
    def _drained_hooks_locked(self, blob_id: int) -> list[Callable[[], None]]:
        if any(b == blob_id and holders for (b, _), holders in self._pins.items()):
            return []
        return self._drain_hooks.pop(blob_id, [])

    def on_drain(self, blob_id: int, callback: Callable[[], None]) -> None:
        """Run ``callback`` once ``blob_id`` has no live pins.

        Fires immediately (outside the registry lock) when the blob is
        already unpinned; otherwise fires when the last pin releases or
        expires.  This is how a delete of a pinned blob defers until its
        readers drain.
        """
        with self._lock:
            self._expire_locked()
            if self.pin_count_locked(blob_id):
                self._drain_hooks.setdefault(blob_id, []).append(callback)
                return
        callback()

    def pin_count_locked(self, blob_id: int) -> int:
        return sum(
            len(holders) for (b, _), holders in self._pins.items() if b == blob_id
        )

    def wait_for_drain(self, blob_id: int, *, timeout: float | None = None) -> bool:
        """Block until ``blob_id`` has no live pins (or the timeout expires).

        Wakes on explicit releases; lease expiry is lazy, so callers relying
        on TTLs alone should call :meth:`expire` from a ticker.
        """
        deferred: list[Callable[[], None]] = []
        with self._lock:
            drained = self._lock.wait_for(
                lambda: (deferred.extend(self._expire_locked()) or True)
                and not self.pin_count_locked(blob_id),
                timeout=timeout,
            )
        for hook in deferred:
            hook()
        return drained

    def guard_sweep(
        self,
        blob_id: int,
        versions: Iterable[int],
        action: Callable[[], None],
    ) -> bool:
        """Run ``action()`` atomically iff none of ``versions`` is pinned.

        This is the GC's retire step: a pin taken concurrently either lands
        before this critical section (the guard refuses and the collector
        re-plans) or after it (the pinner's post-pin validation observes the
        version already retired and fails cleanly).  Returns whether the
        action ran.
        """
        with self._lock:
            hooks = self._expire_locked()
            pinned = {v for (b, v) in self._pins if b == blob_id}
            allowed = not (pinned & set(versions))
            if allowed:
                action()
        for hook in hooks:
            hook()
        return allowed

    # --------------------------------------------------------------- monitoring
    def describe(self) -> dict:
        """JSON-friendly counters for reports and the control plane."""
        with self._lock:
            self._expire_locked()
            return {
                "active_pins": sum(len(h) for h in self._pins.values()),
                "pinned_snapshots": len(self._pins),
                "pins_taken": self._pinned_total,
                "pins_released": self._released_total,
                "pins_expired": self._expired_total,
            }

    def guard_delete(self, blob_id: int) -> None:
        """Delete guard for :meth:`VersionManager.add_delete_guard`."""
        from ..core.errors import BlobPinnedError

        with self._lock:
            self._expire_locked()
            count = self.pin_count_locked(blob_id)
        if count:
            raise BlobPinnedError(blob_id, count)

    def forget_blob(self, blob_id: int) -> None:
        """Drop all bookkeeping for a deleted blob (hooks are discarded)."""
        with self._lock:
            for key in [k for k in self._pins if k[0] == blob_id]:
                del self._pins[key]
            self._drain_hooks.pop(blob_id, None)
            self._lock.notify_all()

    def blobs_with_pins(self) -> Iterable[int]:
        with self._lock:
            self._expire_locked()
            return {b for (b, _) in self._pins}
