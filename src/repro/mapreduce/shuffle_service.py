"""Spill-based, overlapped shuffle through the storage layer.

The in-memory shuffle (:func:`repro.mapreduce.shuffle.merge_map_outputs`)
keeps every intermediate pair in Python lists and makes reduce wait on a
global map barrier, so the shuffle never touches the storage backends the
paper benchmarks.  This module provides the alternative the paper's claims
actually need:

* map tasks *spill* their partitioned, sorted, combiner-applied output as
  segment files written through the job's :class:`~repro.fs.interface.FileSystem`
  (any registered backend — ``bsfs://``, ``hdfs://``, ``file://``), so
  shuffle I/O exercises the storage layer under measurement;
* reduce tasks *fetch* segments as soon as the producing map completes —
  before the global map barrier — overlapping shuffle I/O with the map
  phase exactly as Hadoop's copier threads do;
* reducers merge segments with an external k-way merge
  (:func:`heapq.merge` over streaming segment readers), so a reduce
  partition larger than memory still reduces.

Segments use a simple length-prefixed pickle framing: each record is
``4-byte big-endian length + pickle((key, value))``.  A map's partition is
already sorted by ``repr(key)`` when it is spilled; cutting it into
consecutive size-bounded segments preserves that order, and the k-way merge
over segments ordered by ``(map_index, sequence)`` reproduces exactly the
pair order of the in-memory merge (stable for equal keys), which is what
makes the two shuffle paths byte-identical.

One caveat to the byte-identity guarantee: it requires that equal keys have
equal ``repr`` (true for the usual str/bytes/int/tuple keys).  A job mixing
keys that compare equal but print differently (``1`` and ``True``) gets one
reducer call per repr-run on the spill path, while the in-memory
``group_by_key`` folds them into one dict entry.
"""

from __future__ import annotations

import heapq
import pickle
import struct
import threading
import time
from dataclasses import dataclass
from typing import Any, Iterator

from ..core.transfer import TransferEngine, default_engine
from ..fs import path as fspath
from ..fs.errors import FileSystemError
from ..fs.interface import FileSystem

__all__ = [
    "DEFAULT_SEGMENT_SIZE",
    "ShuffleAbortedError",
    "SpilledSegment",
    "SegmentReader",
    "ShuffleService",
]

#: Default spill threshold for one segment file (1 MiB): a segment is cut
#: once its encoded records reach this size, so it may exceed the value by
#: up to one record.
DEFAULT_SEGMENT_SIZE = 1024 * 1024

#: Maximum sorted runs merged in one pass (Hadoop's ``io.sort.factor``
#: idea): more runs cascade through intermediate on-storage merges, keeping
#: open streams and merge memory bounded however large the partition is.
DEFAULT_MERGE_FACTOR = 32

#: Cap on the bytes held in fetched-but-not-yet-merged segment buffers at
#: any moment.  Readers refund the budget as the merge consumes them, so it
#: bounds live memory, not the job's total prefetch volume.
DEFAULT_PREFETCH_BUDGET = 8 * 1024 * 1024

#: Big-endian 4-byte record length prefix.
_LENGTH = struct.Struct(">I")


class ShuffleAbortedError(RuntimeError):
    """Raised to waiting reduce fetchers when a map task failed."""


@dataclass(frozen=True, slots=True)
class SpilledSegment:
    """One segment file spilled by a map task for one reduce partition."""

    map_index: int
    partition: int
    sequence: int
    path: str
    bytes: int
    records: int


class SegmentReader:
    """Streaming, bounded-memory record iterator over one spilled segment.

    Resource discipline matters here because one reduce partition can span
    thousands of segments:

    * the storage stream is opened *lazily* — constructing a reader costs
      nothing on the backend, so collecting every segment of a partition
      does not accumulate open file handles;
    * :meth:`prefetch` is a single open-read-close of the first chunk (the
      reduce-side "fetch" that overlaps the map phase) — it leaves data in
      the buffer but no handle open; the shuffle service runs prefetches
      *asynchronously* on its transfer engine, so many segments fetch in
      parallel while the merge is still consuming earlier ones
      (:meth:`attach_prefetch` hands the reader the in-flight future);
    * during iteration at most ``chunk_size`` bytes of undecoded data (plus
      one record) are held via the backend's streaming ``open_read``, and
      the stream is closed when exhausted.
    """

    def __init__(
        self,
        fs: FileSystem,
        segment: SpilledSegment,
        *,
        chunk_size: int = 64 * 1024,
        on_release: Any = None,
    ) -> None:
        self.segment = segment
        self._fs = fs
        self._chunks = None  # lazily opened streaming read iterator
        self._chunk_size = max(chunk_size, _LENGTH.size)
        self._buffer = bytearray()
        self._offset = 0  # next storage byte to read
        self._on_release = on_release
        self._prefetched_bytes = 0
        self._prefetch_future = None

    def attach_prefetch(self, future) -> None:
        """Record the in-flight async prefetch of this reader."""
        self._prefetch_future = future

    def _resolve_prefetch(self) -> None:
        """Wait for an in-flight async prefetch before touching the buffer."""
        future, self._prefetch_future = self._prefetch_future, None
        if future is not None:
            future.result()

    def prefetch(self) -> int:
        """Open-read-close the first chunk from storage; returns bytes read.

        Runs as soon as the producing map completes, overlapping shuffle
        reads with the still-running map phase without keeping a stream
        open while the reader waits its turn in the merge.  Bytes are
        committed to the buffer only on success, so a failed prefetch
        leaves the reader clean for a plain (error-reporting) read.
        """
        if self._offset or self._chunks is not None:
            return 0
        fetched: list[bytes] = []
        got = 0
        chunks = self._fs.open_read(
            self.segment.path, length=self._chunk_size, chunk_size=self._chunk_size
        )
        try:
            for chunk in chunks:
                fetched.append(bytes(chunk))
                got += len(chunk)
        finally:
            close = getattr(chunks, "close", None)
            if close is not None:
                close()
        for chunk in fetched:
            self._buffer += chunk
        self._offset += got
        self._prefetched_bytes = got
        return got

    def _release_prefetch(self) -> None:
        """Hand the prefetched bytes back to their accountant (once).

        Called when iteration starts (the buffer stops being
        "fetched-but-unmerged" and becomes bounded merge memory) so the
        service's prefetch budget tracks *live* fetch buffers instead of
        depleting over the job's lifetime.
        """
        if self._prefetched_bytes and self._on_release is not None:
            released, self._prefetched_bytes = self._prefetched_bytes, 0
            self._on_release(released)

    def _read_chunk(self) -> bytes:
        if self._chunks is None:
            # Resume the streaming read where the prefetch stopped; the
            # backend's open_read applies its own read-ahead from here on.
            self._chunks = self._fs.open_read(
                self.segment.path,
                offset=self._offset,
                chunk_size=self._chunk_size,
            )
        chunk = next(self._chunks, b"")
        self._offset += len(chunk)
        return chunk

    def _fill(self, needed: int) -> bool:
        while len(self._buffer) < needed:
            chunk = self._read_chunk()
            if not chunk:
                return False
            self._buffer += chunk
        return True

    def close(self) -> None:
        """Release the storage stream and any prefetch accounting (idempotent)."""
        self._resolve_prefetch()
        self._release_prefetch()
        if self._chunks is not None:
            close = getattr(self._chunks, "close", None)
            if close is not None:
                close()
            self._chunks = None

    def __iter__(self) -> Iterator[tuple[Any, Any]]:
        self._resolve_prefetch()
        self._release_prefetch()
        try:
            while True:
                if not self._fill(_LENGTH.size):
                    if self._buffer:
                        raise ValueError(
                            f"truncated shuffle segment {self.segment.path!r}"
                        )
                    return
                (length,) = _LENGTH.unpack(self._buffer[: _LENGTH.size])
                if not self._fill(_LENGTH.size + length):
                    raise ValueError(
                        f"truncated shuffle segment {self.segment.path!r}"
                    )
                payload = bytes(self._buffer[_LENGTH.size : _LENGTH.size + length])
                del self._buffer[: _LENGTH.size + length]
                yield pickle.loads(payload)
        finally:
            self.close()


class ShuffleService:
    """Coordinates spilled map segments between map and reduce tasks.

    Map side: :meth:`spill_map_output` writes one map task's per-partition
    pairs as segment files through the file system and publishes them.
    Reduce side: :meth:`fetch_segments` blocks until segments appear and
    yields them as the producing maps complete; :meth:`merged_pairs` wraps
    that in the external k-way merge reducers consume.

    All mutable state is guarded by one condition variable; the service is
    meant to be driven by many concurrent map and reduce worker threads.
    """

    def __init__(
        self,
        fs: FileSystem,
        *,
        num_maps: int,
        num_partitions: int,
        shuffle_dir: str,
        segment_size: int = DEFAULT_SEGMENT_SIZE,
        fetch_chunk_size: int = 64 * 1024,
        merge_factor: int = DEFAULT_MERGE_FACTOR,
        prefetch_budget: int = DEFAULT_PREFETCH_BUDGET,
        transfer: TransferEngine | None = None,
    ) -> None:
        if num_maps < 0:
            raise ValueError("num_maps cannot be negative")
        if num_partitions < 1:
            raise ValueError("num_partitions must be at least 1")
        if segment_size < 1:
            raise ValueError("segment_size must be positive")
        if merge_factor < 2:
            raise ValueError("merge_factor must be at least 2")
        self._fs = fs
        # Prefetches run asynchronously on a transfer engine, so segment
        # fetches of one reducer overlap both the map phase and the merge.
        # Deliberately NOT the file system's own engine: a prefetch blocks
        # on the backend's nested streaming read (which submits page
        # fetches to the backend engine), so running it on that same
        # bounded pool could deadlock it against its own children.
        self._transfer = transfer or default_engine()
        self._num_maps = num_maps
        self._num_partitions = num_partitions
        self._dir = fspath.normalize(shuffle_dir)
        self._segment_size = segment_size
        self._fetch_chunk_size = fetch_chunk_size
        self._merge_factor = merge_factor
        self._prefetch_remaining = max(prefetch_budget, 0)
        self._cond = threading.Condition()
        self._segments: list[list[SpilledSegment]] = [
            [] for _ in range(num_partitions)
        ]
        self._completed_maps: set[int] = set()
        self._merge_runs = 0
        self._maps_done = 0
        self._error: BaseException | None = None
        self._first_fetch: float | None = None
        self._last_map_done: float | None = None
        self.segments_spilled = 0
        self.bytes_spilled = 0
        self.records_spilled = 0
        self.segments_fetched = 0
        self.merge_passes = 0
        fs.mkdirs(self._dir)

    # -- map side --------------------------------------------------------------------
    def _segment_path(
        self, map_index: int, partition: int, sequence: int, attempt: int
    ) -> str:
        # The attempt id is part of the path so re-executed and speculative
        # attempts never overwrite each other's segments; only the winning
        # attempt's segments are ever *published* to reducers.
        return fspath.join(
            self._dir,
            f"map-{map_index:05d}-a{attempt:02d}"
            f"-part-{partition:05d}-seg-{sequence:04d}",
        )

    def _write_segment(
        self,
        map_index: int,
        partition: int,
        sequence: int,
        payload: bytes,
        records: int,
        attempt: int,
    ) -> SpilledSegment:
        path = self._segment_path(map_index, partition, sequence, attempt)
        # Intermediate data is transient; replication 1 matches Hadoop's
        # unreplicated map-output spills.
        with self._fs.open_write(path, overwrite=True, replication=1) as stream:
            stream.write(payload)
        return SpilledSegment(
            map_index=map_index,
            partition=partition,
            sequence=sequence,
            path=path,
            bytes=len(payload),
            records=records,
        )

    def spill_map_output(
        self,
        map_index: int,
        partitions: list[list[tuple[Any, Any]]],
        *,
        attempt: int = 0,
    ) -> tuple[int, bool]:
        """Spill one map attempt's finalised per-partition pairs.

        Returns ``(bytes_written, won)``: ``won`` is False when another
        attempt of the same map already published its output — the racing
        attempt's segments are discarded so reducers only ever fetch the
        winning attempt (first-completion semantics for retried and
        speculative attempts).

        Each partition is cut into a new segment whenever the buffered
        records reach ``segment_size`` encoded bytes (so a big partition
        yields several sorted runs for the external merge; one oversized
        record makes one oversized segment), then the map is marked
        complete and waiting reducers are woken.
        """
        if len(partitions) != self._num_partitions:
            raise ValueError(
                f"map {map_index} spilled {len(partitions)} partitions, "
                f"expected {self._num_partitions}"
            )
        spilled: list[SpilledSegment] = []
        total_bytes = 0
        total_records = 0
        for partition, pairs in enumerate(partitions):
            sequence = 0
            buffer = bytearray()
            records = 0
            for pair in pairs:
                payload = pickle.dumps(tuple(pair), protocol=pickle.HIGHEST_PROTOCOL)
                buffer += _LENGTH.pack(len(payload))
                buffer += payload
                records += 1
                if len(buffer) >= self._segment_size:
                    spilled.append(
                        self._write_segment(
                            map_index,
                            partition,
                            sequence,
                            bytes(buffer),
                            records,
                            attempt,
                        )
                    )
                    total_bytes += len(buffer)
                    total_records += records
                    buffer = bytearray()
                    records = 0
                    sequence += 1
            if records:
                spilled.append(
                    self._write_segment(
                        map_index, partition, sequence, bytes(buffer), records, attempt
                    )
                )
                total_bytes += len(buffer)
                total_records += records
        with self._cond:
            if map_index in self._completed_maps:
                won = False
            else:
                won = True
                self._completed_maps.add(map_index)
                for segment in spilled:
                    self._segments[segment.partition].append(segment)
                self._maps_done += 1
                self._last_map_done = time.monotonic()
                self.segments_spilled += len(spilled)
                self.bytes_spilled += total_bytes
                self.records_spilled += total_records
                self._cond.notify_all()
        if not won:
            # The losing attempt's segments were never published; drop the
            # files so the shuffle directory only holds winning output.
            for segment in spilled:
                try:
                    self._fs.delete(segment.path)
                except FileSystemError:
                    pass
        return total_bytes, won

    def _refund_prefetch(self, amount: int) -> None:
        """Credit consumed prefetch bytes back to the budget."""
        with self._cond:
            self._prefetch_remaining += amount

    def abort(self, exc: BaseException) -> None:
        """Record a map-side failure and wake every waiting reduce fetcher."""
        with self._cond:
            if self._error is None:
                self._error = exc
            self._cond.notify_all()

    # -- reduce side -----------------------------------------------------------------
    def fetch_segments(self, partition: int) -> Iterator[SegmentReader]:
        """Yield prefetched readers for ``partition`` as maps complete.

        Blocks between batches until another map finishes (or the shuffle is
        aborted); returns once every map completed and every published
        segment was delivered.  The prefetch inside the loop is what starts
        reduce-side storage reads *before* the last map finishes.
        """
        delivered = 0
        while True:
            with self._cond:
                while (
                    self._error is None
                    and delivered >= len(self._segments[partition])
                    and self._maps_done < self._num_maps
                ):
                    self._cond.wait()
                if self._error is not None:
                    raise ShuffleAbortedError(
                        f"shuffle aborted by a failed map task: {self._error!r}"
                    ) from self._error
                batch = list(self._segments[partition][delivered:])
                delivered += len(batch)
                finished = (
                    self._maps_done >= self._num_maps
                    and delivered >= len(self._segments[partition])
                )
            for segment in batch:
                reader = SegmentReader(
                    self._fs,
                    segment,
                    chunk_size=self._fetch_chunk_size,
                    on_release=self._refund_prefetch,
                )
                # Reserve budget for a full chunk up front (atomically, so
                # concurrent reducers cannot oversubscribe the cap), then
                # return whatever the prefetch did not actually read.  The
                # budget caps *live* fetched-but-unmerged buffers: readers
                # refund it once merging starts consuming them, so eager
                # reads keep flowing however much the job shuffles in total.
                with self._cond:
                    if self._prefetch_remaining >= self._fetch_chunk_size:
                        reserved = self._fetch_chunk_size
                        self._prefetch_remaining -= reserved
                    else:
                        reserved = 0
                if reserved > 0:
                    # The prefetch itself runs on the transfer engine so
                    # many segments fetch in parallel while this generator
                    # (and the merge behind it) keeps moving; the reader
                    # joins the future before first use.
                    reader.attach_prefetch(
                        self._transfer.submit(self._prefetch_one, reader, reserved)
                    )
                with self._cond:
                    if self._first_fetch is None:
                        self._first_fetch = time.monotonic()
                    self.segments_fetched += 1
                yield reader
            if finished:
                return

    def _prefetch_one(self, reader: SegmentReader, reserved: int) -> int:
        """Engine-side body of one async segment prefetch.

        Never lets an exception escape into the future: a failed prefetch
        just refunds its reservation and leaves the reader clean, so the
        real (diagnosable) error surfaces from the merge's own read.
        """
        fetched = 0
        try:
            fetched = reader.prefetch()
        except BaseException:
            fetched = 0
        with self._cond:
            self._prefetch_remaining += max(reserved - fetched, 0)
        return fetched

    def merged_pairs(self, partition: int) -> Iterator[tuple[Any, Any]]:
        """External k-way merge over every segment of ``partition``.

        Fetching overlaps the map phase; the merge itself starts once all
        maps completed.  Readers are ordered by ``(map_index, sequence)``
        and :func:`heapq.merge` is stable, so for equal keys values appear
        in map order — the same order the in-memory shuffle produces.

        When a partition spans more than ``merge_factor`` segments, the
        earliest runs are cascaded through intermediate on-storage merges
        (Hadoop's multi-pass merge): at most ``merge_factor`` streams are
        ever open at once, so file handles and merge memory stay bounded
        however large the partition is.  Prepending each intermediate run
        preserves the stable equal-key order, since it holds the earliest
        maps' records.
        """
        readers = sorted(
            self.fetch_segments(partition),
            key=lambda reader: (reader.segment.map_index, reader.segment.sequence),
        )
        while len(readers) > self._merge_factor:
            batch, readers = readers[: self._merge_factor], readers[self._merge_factor :]
            intermediate = self._merge_to_segment(partition, batch)
            readers.insert(
                0,
                SegmentReader(
                    self._fs, intermediate, chunk_size=self._fetch_chunk_size
                ),
            )
        return heapq.merge(*readers, key=lambda kv: repr(kv[0]))

    def _merge_to_segment(
        self, partition: int, readers: list[SegmentReader]
    ) -> SpilledSegment:
        """Merge up to ``merge_factor`` sorted runs into one on-storage run.

        Runs are named by a service-wide counter, never by (partition,
        round): concurrent attempts of the same reduce partition (task
        retry racing a straggler, speculative backups) each cascade into
        their own files instead of overwriting each other's mid-read.
        """
        with self._cond:
            run_id = self._merge_runs
            self._merge_runs += 1
        path = fspath.join(self._dir, f"merge-part-{partition:05d}-run-{run_id:04d}")
        records = 0
        total = 0
        buffer = bytearray()
        with self._fs.open_write(path, overwrite=True, replication=1) as stream:
            for pair in heapq.merge(*readers, key=lambda kv: repr(kv[0])):
                payload = pickle.dumps(tuple(pair), protocol=pickle.HIGHEST_PROTOCOL)
                buffer += _LENGTH.pack(len(payload))
                buffer += payload
                records += 1
                if len(buffer) >= self._fetch_chunk_size:
                    stream.write(buffer)
                    total += len(buffer)
                    buffer = bytearray()
            if buffer:
                stream.write(buffer)
                total += len(buffer)
        with self._cond:
            self.merge_passes += 1
        return SpilledSegment(
            map_index=-1,  # sorts before every real map, matching its content
            partition=partition,
            sequence=run_id,
            path=path,
            bytes=total,
            records=records,
        )

    # -- lifecycle / reporting -------------------------------------------------------
    def cleanup(self) -> None:
        """Delete every spilled segment (the whole shuffle directory)."""
        try:
            if self._fs.exists(self._dir):
                self._fs.delete(self._dir, recursive=True)
        except FileSystemError:
            pass

    @property
    def overlapped(self) -> bool:
        """Whether some reduce fetch started before the last map finished."""
        return (
            self._first_fetch is not None
            and self._last_map_done is not None
            and self._first_fetch < self._last_map_done
        )

    def stats(self) -> dict:
        """JSON-friendly snapshot of the shuffle's I/O and overlap behaviour."""
        with self._cond:
            return {
                "segments_spilled": self.segments_spilled,
                "bytes_spilled": self.bytes_spilled,
                "records_spilled": self.records_spilled,
                "segments_fetched": self.segments_fetched,
                "merge_passes": self.merge_passes,
                "maps_completed": self._maps_done,
                "first_fetch_time": self._first_fetch,
                "last_map_done_time": self._last_map_done,
                "overlapped": self.overlapped,
            }
