"""Hadoop-style MapReduce engine running over any repro FileSystem.

The engine reproduces the structure the paper describes: a jobtracker
master, tasktracker slaves (one per node), input splitting aligned on
storage blocks, locality-aware map scheduling, shuffle/sort, and reduce
output written back to the distributed file system.
"""

from . import applications
from .faults import (
    FaultInjectedError,
    FaultPlan,
    InjectedTaskFailure,
    NetworkFault,
    StorageFault,
    TaskFault,
    TrackerDeadError,
    TrackerFault,
    delay_messages,
    delay_task,
    drop_messages,
    fail_storage,
    fail_task,
    kill_node,
    kill_storage_host,
    kill_tracker,
    partition_peer,
)
from .job import (
    Counters,
    Job,
    JobConf,
    TaskContext,
    identity_mapper,
    identity_reducer,
)
from .jobtracker import JobResult, JobTracker, make_cluster
from .scheduler import (
    Assignment,
    LocalityAwareScheduler,
    LocalityStats,
    NoHealthyTrackerError,
    SlotLedger,
)
from .service import (
    AdmissionError,
    JobCancelledError,
    JobHandle,
    JobService,
    JobServiceEndpoint,
    TenantConfig,
)
from .shuffle import (
    MapOutputCollector,
    SingleFileOutputFormat,
    TextOutputFormat,
    group_by_key,
    group_sorted_pairs,
    hash_partitioner,
    merge_map_outputs,
)
from .shuffle_service import (
    SegmentReader,
    ShuffleAbortedError,
    ShuffleService,
    SpilledSegment,
)
from .splitter import InputSplit, LineRecordReader, SyntheticInputFormat, TextInputFormat
from .tasktracker import TaskResult, TaskTracker

__all__ = [
    "Job",
    "JobConf",
    "JobResult",
    "JobTracker",
    "make_cluster",
    "JobService",
    "JobHandle",
    "JobServiceEndpoint",
    "TenantConfig",
    "AdmissionError",
    "JobCancelledError",
    "NoHealthyTrackerError",
    "SlotLedger",
    "FaultInjectedError",
    "FaultPlan",
    "InjectedTaskFailure",
    "NetworkFault",
    "StorageFault",
    "TaskFault",
    "TrackerDeadError",
    "TrackerFault",
    "delay_messages",
    "delay_task",
    "drop_messages",
    "fail_storage",
    "fail_task",
    "kill_node",
    "kill_storage_host",
    "kill_tracker",
    "partition_peer",
    "Counters",
    "TaskContext",
    "TaskTracker",
    "TaskResult",
    "LocalityAwareScheduler",
    "LocalityStats",
    "Assignment",
    "InputSplit",
    "LineRecordReader",
    "TextInputFormat",
    "SyntheticInputFormat",
    "MapOutputCollector",
    "TextOutputFormat",
    "SingleFileOutputFormat",
    "hash_partitioner",
    "merge_map_outputs",
    "group_by_key",
    "group_sorted_pairs",
    "ShuffleService",
    "ShuffleAbortedError",
    "SegmentReader",
    "SpilledSegment",
    "identity_mapper",
    "identity_reducer",
    "applications",
]
