"""Locality-aware task scheduling.

"One of the optimization techniques the MapReduce framework employs, is to
ship the computation to nodes that store the input data; the goal is to
minimize data transfers between nodes.  For this reason, the storage layer
must be able to provide the information about the location of the data."

The scheduler assigns each map task to a task tracker, preferring trackers
whose host appears in the split's block locations (node-local), then any
tracker with a free slot.  It records how many assignments achieved
locality — the statistic both the integration tests and the EXPERIMENTS
report use to show that BSFS's layout-exposure primitive feeds the
scheduler as well as HDFS's native one does.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass

from .splitter import InputSplit
from .tasktracker import TaskTracker

__all__ = [
    "Assignment",
    "LocalityStats",
    "LocalityAwareScheduler",
    "NoHealthyTrackerError",
    "SlotLedger",
]


class NoHealthyTrackerError(RuntimeError):
    """Raised when every tracker host is blacklisted/dead for a job.

    Previously this surfaced as an opaque low-level error from the fallback
    chain; the typed exception names the dead hosts so the job layer can
    record a meaningful permanent task failure in
    :attr:`~repro.mapreduce.jobtracker.JobResult.failed_tasks`.
    """

    def __init__(self, blacklisted: set[str]) -> None:
        super().__init__(
            "no healthy task tracker available: all hosts blacklisted "
            f"({', '.join(sorted(blacklisted)) or 'none known'})"
        )
        self.blacklisted = frozenset(blacklisted)


class SlotLedger:
    """Thread-safe per-tenant running-task accounting shared across jobs.

    The fair-share :class:`~repro.mapreduce.service.JobService` hands one
    ledger to every per-job scheduler it creates; the job layer reports
    attempt starts/finishes, giving the service a live view of how many
    cluster slots each tenant is actually occupying.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._running: dict[str, int] = {}

    def task_started(self, tenant: str | None) -> None:
        """Record one task attempt entering a slot for ``tenant``."""
        key = tenant or ""
        with self._lock:
            self._running[key] = self._running.get(key, 0) + 1

    def task_finished(self, tenant: str | None) -> None:
        """Record one task attempt leaving its slot."""
        key = tenant or ""
        with self._lock:
            self._running[key] = max(self._running.get(key, 0) - 1, 0)

    def running(self, tenant: str | None) -> int:
        """Attempts currently occupying slots for ``tenant``."""
        with self._lock:
            return self._running.get(tenant or "", 0)

    def total_running(self) -> int:
        """Attempts currently occupying slots across all tenants."""
        with self._lock:
            return sum(self._running.values())

    def snapshot(self) -> dict[str, int]:
        """Copy of the per-tenant running counts (monitoring)."""
        with self._lock:
            return dict(self._running)


@dataclass(frozen=True, slots=True)
class Assignment:
    """One scheduling decision: a split bound to a tracker."""

    split: InputSplit
    tracker: TaskTracker
    locality: str  # "node-local" | "remote" | "any"


@dataclass
class LocalityStats:
    """Aggregate locality achieved by a job's map phase."""

    node_local: int = 0
    remote: int = 0

    @property
    def total(self) -> int:
        """Total number of scheduled map tasks."""
        return self.node_local + self.remote

    @property
    def locality_ratio(self) -> float:
        """Fraction of map tasks that ran on a node holding their data."""
        return self.node_local / self.total if self.total else 0.0

    def as_dict(self) -> dict[str, float | int]:
        """JSON-friendly snapshot."""
        return {
            "node_local": self.node_local,
            "remote": self.remote,
            "locality_ratio": self.locality_ratio,
        }


class LocalityAwareScheduler:
    """Greedy scheduler assigning splits to trackers with data locality first.

    Beyond the initial locality-aware wave, the scheduler maintains a
    per-job *blacklist* of flaky tracker hosts: hosts accumulating
    :data:`BLACKLIST_AFTER_FAILURES` task failures (or one fatal failure —
    a killed tracker) stop receiving work, exactly like Hadoop's per-job
    tracker blacklist.  The last healthy host is never blacklisted, so a
    single-tracker cluster keeps making progress.
    """

    #: Task failures on one host before it is blacklisted for the job.
    BLACKLIST_AFTER_FAILURES = 3

    def __init__(
        self,
        trackers: list[TaskTracker],
        *,
        tenant: str | None = None,
        slot_ledger: SlotLedger | None = None,
    ) -> None:
        if not trackers:
            raise ValueError("the scheduler needs at least one task tracker")
        self.tenant = tenant
        self.slot_ledger = slot_ledger
        self._trackers = list(trackers)
        self._by_host: dict[str, list[TaskTracker]] = {}
        for tracker in self._trackers:
            self._by_host.setdefault(tracker.host, []).append(tracker)
        self._round_robin = itertools.cycle(self._trackers)
        # pick_tracker_round_robin is called from concurrent reduce worker
        # threads; advancing the shared cycle iterator must be serialised,
        # and the blacklist is fed from concurrent attempt-failure handlers.
        self._round_robin_lock = threading.Lock()
        self._failure_counts: dict[str, int] = {}
        self._blacklisted: set[str] = set()
        self.stats = LocalityStats()

    @property
    def trackers(self) -> list[TaskTracker]:
        """The task trackers known to the scheduler."""
        return list(self._trackers)

    # -- blacklist ---------------------------------------------------------------------
    @property
    def blacklisted_hosts(self) -> set[str]:
        """Hosts currently excluded from scheduling (copy)."""
        with self._round_robin_lock:
            return set(self._blacklisted)

    def is_blacklisted(self, host: str) -> bool:
        """Whether ``host`` is blacklisted for this job."""
        with self._round_robin_lock:
            return host in self._blacklisted

    def report_task_failure(self, host: str, *, fatal: bool = False) -> bool:
        """Record one task failure on ``host``; returns whether the host is
        now blacklisted.

        ``fatal`` failures (a tracker killed mid-job) blacklist the host
        immediately; ordinary task failures only after
        :data:`BLACKLIST_AFTER_FAILURES` strikes — a crashing *task* should
        not take down a healthy tracker.
        """
        with self._round_robin_lock:
            count = self._failure_counts.get(host, 0) + 1
            self._failure_counts[host] = count
            if host in self._blacklisted:
                return True
            if not fatal and count < self.BLACKLIST_AFTER_FAILURES:
                return False
            healthy = {t.host for t in self._trackers} - self._blacklisted
            if healthy == {host}:
                # Never blacklist the last healthy host: a one-tracker
                # cluster must keep retrying rather than deadlock.
                return False
            self._blacklisted.add(host)
            return True

    def mark_dead(self, host: str) -> None:
        """Blacklist ``host`` unconditionally (liveness declared it dead).

        Unlike :meth:`report_task_failure`, this bypasses the
        last-healthy-host guard: retrying against a dead process is futile,
        so a fully dead cluster surfaces as
        :class:`NoHealthyTrackerError` from the pickers instead of hanging.
        """
        with self._round_robin_lock:
            self._failure_counts[host] = self._failure_counts.get(host, 0) + 1
            self._blacklisted.add(host)

    # -- slot accounting ---------------------------------------------------------------
    def task_started(self) -> None:
        """Report one attempt entering a slot (forwards to the shared ledger)."""
        if self.slot_ledger is not None:
            self.slot_ledger.task_started(self.tenant)

    def task_finished(self) -> None:
        """Report one attempt leaving its slot (forwards to the shared ledger)."""
        if self.slot_ledger is not None:
            self.slot_ledger.task_finished(self.tenant)

    def pick_tracker(self, *, exclude: set[str] = frozenset()) -> TaskTracker:
        """Least-loaded tracker avoiding ``exclude`` and blacklisted hosts.

        Used for task re-execution: a retried attempt must land on a
        *different* tracker than its failed predecessors whenever the
        cluster has one.  If every host is excluded (but some are healthy)
        the exclusion is relaxed — better a repeat host than no retry at
        all.  Raises :class:`NoHealthyTrackerError` when every host is
        blacklisted (only :meth:`mark_dead` can reach that state).
        """
        with self._round_robin_lock:
            blacklisted = set(self._blacklisted)
        banned = set(exclude) | blacklisted
        candidates = [t for t in self._trackers if t.host not in banned]
        if not candidates:
            candidates = [
                t for t in self._trackers if t.host not in blacklisted
            ]
        if not candidates:
            raise NoHealthyTrackerError(blacklisted)
        return min(
            candidates,
            key=lambda t: (t.running_tasks, t.tasks_executed),
        )

    def assign(self, splits: list[InputSplit]) -> list[Assignment]:
        """Assign every split to a tracker, balancing load and preferring locality.

        The algorithm mirrors Hadoop's behaviour at a high level: process
        splits in order, give each to a local tracker if one still has
        spare capacity in this scheduling wave, otherwise to the least
        loaded tracker.  ``pending`` tracks per-tracker assignments made in
        this wave so a single call spreads tasks evenly even though no task
        has started yet.
        """
        assignments: list[Assignment] = []
        pending: dict[int, int] = {id(t): 0 for t in self._trackers}
        banned = self.blacklisted_hosts
        pool = [t for t in self._trackers if t.host not in banned] or self._trackers

        def load(tracker: TaskTracker) -> tuple[int, int]:
            return (
                tracker.running_tasks + pending[id(tracker)],
                tracker.tasks_executed,
            )

        for split in splits:
            local_candidates = [
                tracker
                for host in split.hosts
                for tracker in self._by_host.get(host, [])
                if tracker in pool
            ]
            tracker: TaskTracker | None = None
            locality = "remote"
            if local_candidates:
                best_local = min(local_candidates, key=load)
                # Prefer locality unless the local tracker is clearly
                # saturated compared to the cluster average.
                cluster_min = min(load(t)[0] for t in pool)
                if load(best_local)[0] <= cluster_min + max(best_local.slots, 1):
                    tracker = best_local
                    locality = "node-local"
            if tracker is None:
                tracker = min(pool, key=load)
                locality = "node-local" if tracker.host in split.hosts else "remote"
            pending[id(tracker)] += 1
            if locality == "node-local":
                self.stats.node_local += 1
            else:
                self.stats.remote += 1
            assignments.append(
                Assignment(split=split, tracker=tracker, locality=locality)
            )
        return assignments

    def pick_tracker_round_robin(self) -> TaskTracker:
        """Round-robin tracker choice (used for reduce tasks, which have no locality).

        Thread-safe: reduce tasks are dispatched from a worker pool, so the
        shared iterator is advanced under a lock.  Blacklisted hosts are
        skipped; when every host is blacklisted (all trackers dead via
        :meth:`mark_dead`) a :class:`NoHealthyTrackerError` is raised.
        """
        with self._round_robin_lock:
            for _ in range(len(self._trackers)):
                tracker = next(self._round_robin)
                if tracker.host not in self._blacklisted:
                    return tracker
            raise NoHealthyTrackerError(set(self._blacklisted))
