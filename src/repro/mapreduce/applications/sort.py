"""Distributed Sort: sorts ``key<TAB>value`` text records by key.

Not evaluated in the paper but part of Hadoop's canonical benchmark set;
included as an extra workload exercising a reduce-heavy shuffle (large
intermediate data), which complements Random Text Writer (write-heavy) and
Distributed Grep (read-heavy).
"""

from __future__ import annotations

from ..job import Job, JobConf, TaskContext

__all__ = ["make_sort_job"]


def _sort_mapper(key: int, value: bytes, context: TaskContext) -> None:
    """Emit ``(record key, record value)`` split on the first tab (or the line)."""
    text = value.decode("utf-8", errors="replace")
    if "\t" in text:
        record_key, record_value = text.split("\t", 1)
    else:
        record_key, record_value = text, ""
    context.emit(record_key, record_value)


def _sort_reducer(key: str, values, context: TaskContext) -> None:
    """Emit each value under its key (the shuffle already sorted the keys)."""
    for value in values:
        context.emit(key, value)


def make_sort_job(
    input_paths: list[str] | tuple[str, ...],
    *,
    output_dir: str = "/sort-output",
    num_reduce_tasks: int = 1,
    split_size: int | None = None,
) -> Job:
    """Build a Sort job over ``input_paths``."""
    conf = JobConf(
        name="sort",
        input_paths=tuple(input_paths),
        output_dir=output_dir,
        num_reduce_tasks=num_reduce_tasks,
        split_size=split_size,
    )
    return Job(conf=conf, mapper=_sort_mapper, reducer=_sort_reducer)
