"""WordCount: the canonical MapReduce example, used by the quickstart example
and by integration tests as an end-to-end sanity workload over both BSFS and
HDFS."""

from __future__ import annotations

from ..job import Job, JobConf, TaskContext

__all__ = ["make_wordcount_job"]


def _wordcount_mapper(key: int, value: bytes, context: TaskContext) -> None:
    """Emit ``(word, 1)`` for every whitespace-separated token of the line."""
    for word in value.decode("utf-8", errors="replace").split():
        context.emit(word, 1)
        context.counters.increment("wordcount.words")


def _sum_reducer(key: str, values, context: TaskContext) -> None:
    """Sum the occurrence counts of one word."""
    context.emit(key, sum(values))


def make_wordcount_job(
    input_paths: list[str] | tuple[str, ...],
    *,
    output_dir: str = "/wordcount-output",
    num_reduce_tasks: int = 1,
    split_size: int | None = None,
) -> Job:
    """Build a WordCount job over ``input_paths``."""
    conf = JobConf(
        name="wordcount",
        input_paths=tuple(input_paths),
        output_dir=output_dir,
        num_reduce_tasks=num_reduce_tasks,
        split_size=split_size,
    )
    return Job(
        conf=conf,
        mapper=_wordcount_mapper,
        reducer=_sum_reducer,
        combiner=_sum_reducer,
    )
