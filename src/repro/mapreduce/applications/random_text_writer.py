"""Random Text Writer: the paper's first real MapReduce application.

"Random Text Writer ... generates a huge sequence of random sentences
formed from a list of predefined words.  Random text writer exhibits an
access pattern corresponding to concurrent massively parallel writes to
different files" — i.e. it is a map-only job in which every map task
writes a large output file, stressing the storage layer's concurrent-write
path exactly like the E3 microbenchmark, but through the whole MapReduce
stack.
"""

from __future__ import annotations

import random
from typing import Iterable

from ..job import Job, JobConf, TaskContext
from ..splitter import SyntheticInputFormat

__all__ = ["WORD_LIST", "random_sentence", "make_random_text_writer_job"]

#: Predefined word list the sentences are drawn from (a subset of Hadoop's
#: RandomTextWriter vocabulary).
WORD_LIST: tuple[str, ...] = (
    "diurnalness", "homoiousian", "spiranthic", "tetragynian", "silverhead",
    "ungreat", "lithograph", "exploiter", "physiologian", "by", "hellbender",
    "Filipendula", "undeterring", "antiscolic", "pentagamist", "hypoid",
    "cacuminal", "sertularian", "schoolmasterism", "nonuple", "gallybeggar",
    "phytonic", "swearingly", "nebular", "Confervales", "thermochemically",
    "characinoid", "cocksuredom", "fallacious", "feasibleness", "debromination",
    "playfellowship", "tramplike", "testa", "participatingly", "unaccessible",
    "bromate", "experientialist", "roughcast", "docimastical", "choralcelo",
    "blightbird", "peptonate", "sombreroed", "unschematized", "antiabolitionist",
    "besagne", "mastication", "bromic", "sviatonosite",
)


def random_sentence(rng: random.Random, *, min_words: int = 5, max_words: int = 12) -> str:
    """Build one random sentence from the predefined word list."""
    count = rng.randint(min_words, max_words)
    return " ".join(rng.choice(WORD_LIST) for _ in range(count))


def _random_text_mapper(key: int, value: int, context: TaskContext) -> None:
    """Generate ``bytes_per_map`` bytes of random sentences as output pairs."""
    conf = context.job_conf
    bytes_per_map = int(conf.get("random_text.bytes_per_map", 1024 * 1024))
    seed = int(conf.get("random_text.seed", 0)) + int(key)
    rng = random.Random(seed)
    produced = 0
    sentence_index = 0
    while produced < bytes_per_map:
        sentence = random_sentence(rng)
        record_key = f"{key}-{sentence_index}"
        context.emit(record_key, sentence)
        # Account for the bytes the text output format will actually write:
        # key, separator, value and the trailing newline.
        produced += len(record_key) + 1 + len(sentence) + 1
        sentence_index += 1
        context.counters.increment("random_text.bytes_generated", len(sentence))


def make_random_text_writer_job(
    *,
    output_dir: str = "/random-text",
    num_map_tasks: int = 4,
    bytes_per_map: int = 1024 * 1024,
    seed: int = 0,
    output_replication: int | None = None,
) -> Job:
    """Build the Random Text Writer job (map-only, synthetic input).

    Parameters mirror Hadoop's ``randomtextwriter``: the number of map
    tasks and the amount of data each map generates.
    """
    conf = JobConf(
        name="random-text-writer",
        input_paths=(),
        output_dir=output_dir,
        num_reduce_tasks=0,
        num_map_tasks=num_map_tasks,
        output_replication=output_replication,
        properties={
            "random_text.bytes_per_map": bytes_per_map,
            "random_text.seed": seed,
        },
    )
    return Job(
        conf=conf,
        mapper=_random_text_mapper,
        input_format=SyntheticInputFormat(),
    )


def total_bytes_written(counters: Iterable[tuple[str, int]] | dict[str, int]) -> int:
    """Helper extracting the generated-bytes counter from a job's counters."""
    if isinstance(counters, dict):
        return counters.get("random_text.bytes_generated", 0)
    return dict(counters).get("random_text.bytes_generated", 0)
