"""MapReduce applications: the paper's two evaluation workloads plus extras."""

from .distributed_grep import make_distributed_grep_job
from .random_text_writer import (
    WORD_LIST,
    make_random_text_writer_job,
    random_sentence,
)
from .sort import make_sort_job
from .wordcount import make_wordcount_job

__all__ = [
    "make_random_text_writer_job",
    "make_distributed_grep_job",
    "make_wordcount_job",
    "make_sort_job",
    "random_sentence",
    "WORD_LIST",
]
