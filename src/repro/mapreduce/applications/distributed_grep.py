"""Distributed Grep: the paper's second real MapReduce application.

"Distributed Grep ... scans huge input data to find occurrences of
particular expressions.  ... distributed grep generates an access pattern
of concurrent reads from the same huge file" — the map tasks all read
disjoint chunks of one big input file (the E2 microbenchmark pattern), and
a small reduce phase counts the matches per expression.
"""

from __future__ import annotations

import re

from ..job import Job, JobConf, TaskContext

__all__ = ["make_distributed_grep_job"]


def _grep_mapper(key: int, value: bytes, context: TaskContext) -> None:
    """Emit ``(matched expression, 1)`` for every match in the input line."""
    pattern = context.job_conf.get("grep.pattern", "")
    flags = re.IGNORECASE if context.job_conf.get("grep.ignore_case", False) else 0
    line = value.decode("utf-8", errors="replace")
    for match in re.finditer(pattern, line, flags):
        context.emit(match.group(0), 1)
        context.counters.increment("grep.matches")


def _count_reducer(key: str, values, context: TaskContext) -> None:
    """Sum the per-map match counts of one expression."""
    context.emit(key, sum(values))


def make_distributed_grep_job(
    pattern: str,
    input_paths: list[str] | tuple[str, ...],
    *,
    output_dir: str = "/grep-output",
    num_reduce_tasks: int = 1,
    split_size: int | None = None,
    ignore_case: bool = False,
) -> Job:
    """Build a Distributed Grep job over ``input_paths``.

    The mapper emits every substring matching ``pattern`` (a regular
    expression) and the reducer counts occurrences per matched string,
    mirroring Hadoop's bundled ``grep`` example (minus the second sorting
    job, which does not affect the storage access pattern the paper
    studies).
    """
    if not pattern:
        raise ValueError("distributed grep needs a non-empty pattern")
    conf = JobConf(
        name="distributed-grep",
        input_paths=tuple(input_paths),
        output_dir=output_dir,
        num_reduce_tasks=num_reduce_tasks,
        split_size=split_size,
        properties={"grep.pattern": pattern, "grep.ignore_case": ignore_case},
    )
    return Job(
        conf=conf,
        mapper=_grep_mapper,
        reducer=_count_reducer,
        combiner=_count_reducer,
    )
