"""Job model for the Hadoop-style MapReduce engine.

A MapReduce computation is expressed, exactly as in the paper's description
of the model, as two user functions: ``map``, which turns an input record
into intermediate key-value pairs, and ``reduce``, which merges all values
associated with one intermediate key.  :class:`Job` bundles those functions
with a :class:`JobConf` describing inputs, output directory and task
counts; the jobtracker executes it over any
:class:`~repro.fs.interface.FileSystem` (BSFS or HDFS).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any, Callable, Iterable, Mapping

from ..fs.uri import FsUri

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..fs.interface import FileSystem

__all__ = [
    "JobConf",
    "Counters",
    "TaskContext",
    "Job",
    "identity_mapper",
    "identity_reducer",
]

#: Signature of a map function: ``map(key, value, context)``.
MapFunction = Callable[[Any, Any, "TaskContext"], None]
#: Signature of a reduce function: ``reduce(key, values, context)``.
ReduceFunction = Callable[[Any, Iterable[Any], "TaskContext"], None]


@dataclass(frozen=True)
class JobConf:
    """Static configuration of one MapReduce job."""

    name: str
    input_paths: tuple[str, ...] = ()
    output_dir: str = "/output"
    num_reduce_tasks: int = 1
    num_map_tasks: int | None = None
    split_size: int | None = None
    output_replication: int | None = None
    #: Route the shuffle through the job's file system: map tasks spill
    #: sorted segment files, reduce tasks fetch them as maps complete and
    #: merge externally (see :mod:`repro.mapreduce.shuffle_service`).
    #: Default off — the in-memory shuffle remains the fast path.
    spill_to_fs: bool = False
    #: Spill threshold, in encoded bytes: a map's partition is cut into a
    #: new segment file once the buffered records reach this size (a
    #: segment may exceed it by up to one record).
    shuffle_segment_size: int = 1024 * 1024
    #: Write all reduce output into one shared file via concurrent appends
    #: (the paper's §V scenario).  Falls back to per-reducer ``part-r-*``
    #: files on backends without ``concurrent_append`` (HDFS).
    single_output_file: bool = False
    #: Maximum executions of one task before the job is declared failed
    #: (Hadoop's ``mapred.map.max.attempts``).  A failed attempt is retried
    #: on a *different* tracker when the cluster has one.
    max_task_attempts: int = 4
    #: Launch backup attempts for stragglers near the end of each phase and
    #: take the first completion (Hadoop's speculative execution).  Only
    #: effective with ``parallel=True`` job trackers.
    speculative_execution: bool = False
    #: A running attempt is a straggler once its runtime exceeds this
    #: multiple of the median successful attempt duration of its phase.
    slow_task_threshold: float = 2.0
    #: Speculate only once at most this fraction of the phase's tasks is
    #: still incomplete (Hadoop's slow-start idea, inverted).
    speculative_fraction: float = 0.5
    #: Run the job ``AS OF`` a storage snapshot: an ``int`` reads every
    #: input at that version, a mapping pins per-path versions (keys are
    #: resolved in-filesystem file paths), ``None`` reads the current
    #: state.  The jobtracker pins the snapshots for the job's duration,
    #: so a job sees byte-stable input even while clients keep appending
    #: (and the version GC cannot reclaim the snapshot mid-job).  An
    #: ``@vN`` suffix on an input path overrides this setting for that
    #: path.
    snapshot_version: int | Mapping[str, int] | None = None
    #: Tenant the job runs as: namespace writes are attributed to (and
    #: enforced against) this tenant's quota, and the
    #: :class:`~repro.mapreduce.service.JobService` schedules fair-share
    #: across tenants.  ``None`` runs untenanted (no quotas, default queue).
    tenant: str | None = None
    #: Scheduling priority within the tenant's own queue: higher runs
    #: first, ties resolve FIFO.  Cross-tenant ordering is fair-share, so a
    #: high priority never lets one tenant starve another.
    priority: int = 0
    properties: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.num_reduce_tasks < 0:
            raise ValueError("num_reduce_tasks cannot be negative")
        if self.num_map_tasks is not None and self.num_map_tasks < 1:
            raise ValueError("num_map_tasks must be at least 1 when given")
        if self.split_size is not None and self.split_size <= 0:
            raise ValueError("split_size must be positive when given")
        if self.shuffle_segment_size < 1:
            raise ValueError("shuffle_segment_size must be positive")
        if self.max_task_attempts < 1:
            raise ValueError("max_task_attempts must be at least 1")
        if self.slow_task_threshold <= 0:
            raise ValueError("slow_task_threshold must be positive")
        if not 0.0 < self.speculative_fraction <= 1.0:
            raise ValueError("speculative_fraction must be within (0, 1]")
        if self.snapshot_version is not None:
            if isinstance(self.snapshot_version, int):
                if self.snapshot_version < 0:
                    raise ValueError("snapshot_version must be non-negative")
            elif isinstance(self.snapshot_version, Mapping):
                for key, value in self.snapshot_version.items():
                    if not isinstance(value, int) or value < 0:
                        raise ValueError(
                            f"snapshot_version for {key!r} must be a "
                            "non-negative int"
                        )
            else:
                raise ValueError(
                    "snapshot_version must be an int, a path→version "
                    "mapping, or None"
                )

    @property
    def is_map_only(self) -> bool:
        """Whether the job has no reduce phase (mappers write the output)."""
        return self.num_reduce_tasks == 0

    def get(self, key: str, default: Any = None) -> Any:
        """Look up a free-form job property (mirrors Hadoop's ``conf.get``)."""
        return self.properties.get(key, default)

    def version_for(self, path: str) -> int | None:
        """The pinned snapshot version for one input file, if any.

        Resolves :attr:`snapshot_version`: an ``int`` applies to every
        input, a mapping is looked up by the file's resolved path, ``None``
        means "read the current state".
        """
        if self.snapshot_version is None:
            return None
        if isinstance(self.snapshot_version, int):
            return self.snapshot_version
        return self.snapshot_version.get(path)

    def resolve_for(self, fs: "FileSystem") -> "JobConf":
        """Reduce URI inputs/outputs to plain in-filesystem paths.

        Input paths and the output directory may be full URIs
        (``bsfs://demo/data``); this validates that every URI addresses the
        file system the job actually runs on and strips it down to the path
        the storage layer understands.  Scheme-less paths pass through
        normalised, so pre-URI job configurations keep working unchanged.
        """
        inputs = tuple(_resolve_job_path(p, fs) for p in self.input_paths)
        output = _resolve_job_path(self.output_dir, fs)
        if inputs == self.input_paths and output == self.output_dir:
            return self
        return replace(self, input_paths=inputs, output_dir=output)


def _resolve_job_path(path: str, fs: "FileSystem") -> str:
    """Strip (and validate) the scheme/authority of one job path."""
    parsed = FsUri.parse(path)
    if parsed.scheme is None:
        return parsed.path
    if parsed.scheme != fs.scheme:
        raise ValueError(
            f"job path {path!r} addresses scheme {parsed.scheme!r} but the "
            f"job runs on a {fs.scheme!r} file system"
        )
    if parsed.authority and parsed.authority != fs.authority:
        # A URI naming a specific deployment must run on that deployment —
        # including when the job's fs was built directly from a constructor
        # and therefore carries no authority at all.
        raise ValueError(
            f"job path {path!r} addresses deployment {parsed.authority!r} "
            f"but the job runs on {fs.uri!r}"
        )
    return parsed.path


class Counters:
    """Thread-safe named counters, aggregated across tasks like Hadoop counters."""

    def __init__(self) -> None:
        self._values: dict[str, int] = {}
        self._lock = threading.Lock()

    def increment(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to counter ``name`` (creating it at zero)."""
        with self._lock:
            self._values[name] = self._values.get(name, 0) + amount

    def get(self, name: str) -> int:
        """Current value of counter ``name`` (0 when never incremented)."""
        with self._lock:
            return self._values.get(name, 0)

    def merge(self, other: "Counters") -> None:
        """Fold another counter set into this one."""
        with other._lock:
            snapshot = dict(other._values)
        with self._lock:
            for name, value in snapshot.items():
                self._values[name] = self._values.get(name, 0) + value

    def as_dict(self) -> dict[str, int]:
        """Snapshot of every counter."""
        with self._lock:
            return dict(self._values)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counters({self.as_dict()!r})"


class TaskContext:
    """Execution context handed to map and reduce functions.

    Provides ``emit`` for producing output pairs and ``counters`` for
    instrumentation; also carries the task's identity and the job
    configuration so applications can read custom properties.
    """

    def __init__(
        self,
        *,
        job_conf: JobConf,
        task_id: str,
        emit: Callable[[Any, Any], None],
        counters: Counters,
    ) -> None:
        self.job_conf = job_conf
        self.task_id = task_id
        self._emit = emit
        self.counters = counters

    def emit(self, key: Any, value: Any) -> None:
        """Emit one output key-value pair."""
        self._emit(key, value)


def identity_mapper(key: Any, value: Any, context: TaskContext) -> None:
    """Mapper that forwards its input pair unchanged."""
    context.emit(key, value)


def identity_reducer(key: Any, values: Iterable[Any], context: TaskContext) -> None:
    """Reducer that forwards every value of the key unchanged."""
    for value in values:
        context.emit(key, value)


@dataclass
class Job:
    """A runnable MapReduce job: configuration plus user functions."""

    conf: JobConf
    mapper: MapFunction = identity_mapper
    reducer: ReduceFunction = identity_reducer
    combiner: ReduceFunction | None = None
    #: Optional custom input format instance
    #: (defaults to :class:`repro.mapreduce.splitter.TextInputFormat`).
    input_format: Any = None
    #: Optional custom output format instance
    #: (defaults to :class:`repro.mapreduce.shuffle.TextOutputFormat`).
    output_format: Any = None

    @property
    def name(self) -> str:
        """Job name (from the configuration)."""
        return self.conf.name
