"""Task trackers: the worker daemons executing map and reduce tasks.

"The framework consists of a single master jobtracker, and multiple slave
tasktrackers, one per node."  A :class:`TaskTracker` models one such slave:
it owns a host name (used for data-locality scoring), a number of task
slots, and the code that actually runs a map task over an input split or a
reduce task over a merged partition.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from ..fs.interface import FileSystem
from .job import Counters, Job, TaskContext
from .shuffle import MapOutputCollector, TextOutputFormat, group_by_key
from .splitter import InputSplit

__all__ = ["TaskResult", "TaskTracker"]


@dataclass(frozen=True, slots=True)
class TaskResult:
    """Outcome of one task execution."""

    task_id: str
    tracker_host: str
    kind: str
    duration: float
    records_in: int
    records_out: int
    locality: str = "n/a"
    output_path: str | None = None
    #: Map tasks: per-partition intermediate pairs; reduce tasks: ``None``.
    map_output: list[list[tuple[Any, Any]]] | None = field(default=None, repr=False)


class TaskTracker:
    """One worker node of the MapReduce engine."""

    def __init__(self, host: str, *, slots: int = 2) -> None:
        if slots < 1:
            raise ValueError("a task tracker needs at least one slot")
        self.host = host
        self.slots = slots
        self._lock = threading.Lock()
        self._running = 0
        self.tasks_executed = 0

    # -- slot management ------------------------------------------------------------
    @property
    def running_tasks(self) -> int:
        """Number of tasks currently executing on this tracker."""
        with self._lock:
            return self._running

    @property
    def free_slots(self) -> int:
        """Number of task slots currently free."""
        with self._lock:
            return max(self.slots - self._running, 0)

    def _acquire_slot(self) -> None:
        with self._lock:
            self._running += 1

    def _release_slot(self) -> None:
        with self._lock:
            self._running = max(self._running - 1, 0)
            self.tasks_executed += 1

    # -- map tasks -------------------------------------------------------------------
    def run_map_task(
        self,
        job: Job,
        fs: FileSystem,
        split: InputSplit,
        *,
        num_partitions: int,
        reader_factory: Callable[[FileSystem, InputSplit], Any],
        counters: Counters,
        locality: str = "n/a",
        output_format: TextOutputFormat | None = None,
    ) -> TaskResult:
        """Execute the map function over one input split.

        For map-only jobs (``num_partitions == 0``) the mapper's output is
        written directly to the job output directory through the output
        format; otherwise it is partitioned and returned for the shuffle.
        """
        task_id = f"map-{split.split_id:05d}"
        self._acquire_slot()
        started = time.perf_counter()
        try:
            records_in = 0
            map_only = num_partitions == 0
            collector = MapOutputCollector(
                max(num_partitions, 1), combiner=job.combiner
            )
            context = TaskContext(
                job_conf=job.conf,
                task_id=task_id,
                emit=collector.collect,
                counters=counters,
            )
            for key, value in reader_factory(fs, split):
                job.mapper(key, value, context)
                records_in += 1
                counters.increment("map_input_records")
            counters.increment("map_output_records", collector.records_collected)
            output_path: str | None = None
            partitions = collector.partitions()
            if map_only:
                fmt = output_format or TextOutputFormat()
                pairs = [pair for partition in partitions for pair in partition]
                output_path = fmt.write(
                    fs,
                    job.conf.output_dir,
                    split.split_id,
                    pairs,
                    map_only=True,
                    replication=job.conf.output_replication,
                    client_host=self.host,
                )
                partitions_out: list[list[tuple[Any, Any]]] | None = None
            else:
                partitions_out = partitions
            duration = time.perf_counter() - started
            return TaskResult(
                task_id=task_id,
                tracker_host=self.host,
                kind="map",
                duration=duration,
                records_in=records_in,
                records_out=collector.records_collected,
                locality=locality,
                output_path=output_path,
                map_output=partitions_out,
            )
        finally:
            self._release_slot()

    # -- reduce tasks ----------------------------------------------------------------
    def run_reduce_task(
        self,
        job: Job,
        fs: FileSystem,
        partition_index: int,
        pairs: list[tuple[Any, Any]],
        *,
        counters: Counters,
        output_format: TextOutputFormat | None = None,
    ) -> TaskResult:
        """Execute the reduce function over one merged, grouped partition."""
        task_id = f"reduce-{partition_index:05d}"
        self._acquire_slot()
        started = time.perf_counter()
        try:
            emitted: list[tuple[Any, Any]] = []
            context = TaskContext(
                job_conf=job.conf,
                task_id=task_id,
                emit=lambda key, value: emitted.append((key, value)),
                counters=counters,
            )
            records_in = 0
            for key, values in group_by_key(pairs):
                job.reducer(key, values, context)
                records_in += len(values)
                counters.increment("reduce_input_records", len(values))
            counters.increment("reduce_output_records", len(emitted))
            fmt = output_format or TextOutputFormat()
            output_path = fmt.write(
                fs,
                job.conf.output_dir,
                partition_index,
                emitted,
                map_only=False,
                replication=job.conf.output_replication,
                client_host=self.host,
            )
            duration = time.perf_counter() - started
            return TaskResult(
                task_id=task_id,
                tracker_host=self.host,
                kind="reduce",
                duration=duration,
                records_in=records_in,
                records_out=len(emitted),
                output_path=output_path,
            )
        finally:
            self._release_slot()
