"""Task trackers: the worker daemons executing map and reduce tasks.

"The framework consists of a single master jobtracker, and multiple slave
tasktrackers, one per node."  A :class:`TaskTracker` models one such slave:
it owns a host name (used for data-locality scoring), a number of task
slots, and the code that actually runs a map task over an input split or a
reduce task over a merged partition.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from ..fs.interface import FileSystem
from .faults import FaultPlan
from .job import Counters, Job, TaskContext
from .shuffle import (
    MapOutputCollector,
    TextOutputFormat,
    group_by_key,
    group_sorted_pairs,
)
from .shuffle_service import ShuffleService
from .splitter import InputSplit

__all__ = ["TaskResult", "TaskTracker"]


@dataclass(frozen=True, slots=True)
class TaskResult:
    """Outcome of one task attempt execution."""

    task_id: str
    tracker_host: str
    kind: str
    duration: float
    records_in: int
    records_out: int
    locality: str = "n/a"
    output_path: str | None = None
    #: Map tasks: per-partition intermediate pairs; reduce tasks — and map
    #: tasks that spilled through a :class:`ShuffleService` — ``None``.
    map_output: list[list[tuple[Any, Any]]] | None = field(default=None, repr=False)
    #: ``False`` when the task raised; ``error`` then carries the exception.
    succeeded: bool = True
    error: str | None = None
    #: Zero-based attempt number of this execution (0 = first attempt).
    attempt: int = 0
    #: Whether this attempt was a speculative backup of a straggler.
    speculative: bool = False
    #: ``True`` when the attempt finished fine but *lost* the race against
    #: another attempt of the same task: its output was not committed.
    discarded: bool = False
    #: The counters this attempt incremented.  The jobtracker hands every
    #: attempt its own instance and folds only the *winning* attempt's
    #: counters into the job totals (Hadoop semantics: killed and failed
    #: attempts do not pollute job counters).
    attempt_counters: Counters | None = field(default=None, repr=False)


class TaskTracker:
    """One worker node of the MapReduce engine."""

    def __init__(self, host: str, *, slots: int = 2) -> None:
        if slots < 1:
            raise ValueError("a task tracker needs at least one slot")
        self.host = host
        self.slots = slots
        self._lock = threading.Lock()
        self._running = 0
        self.tasks_executed = 0

    # -- slot management ------------------------------------------------------------
    @property
    def running_tasks(self) -> int:
        """Number of tasks currently executing on this tracker."""
        with self._lock:
            return self._running

    @property
    def free_slots(self) -> int:
        """Number of task slots currently free."""
        with self._lock:
            return max(self.slots - self._running, 0)

    def _acquire_slot(self) -> None:
        with self._lock:
            self._running += 1

    def _release_slot(self) -> None:
        with self._lock:
            self._running = max(self._running - 1, 0)
            self.tasks_executed += 1

    # -- map tasks -------------------------------------------------------------------
    def run_map_task(
        self,
        job: Job,
        fs: FileSystem,
        split: InputSplit,
        *,
        num_partitions: int,
        reader_factory: Callable[[FileSystem, InputSplit], Any],
        counters: Counters,
        locality: str = "n/a",
        output_format: TextOutputFormat | None = None,
        shuffle: ShuffleService | None = None,
        attempt: int = 0,
        speculative: bool = False,
        fault_plan: FaultPlan | None = None,
        commit_check: Callable[[], bool] | None = None,
    ) -> TaskResult:
        """Execute the map function over one input split.

        For map-only jobs (``num_partitions == 0``) the mapper's output is
        written directly to the job output directory through the output
        format; otherwise it is partitioned for the shuffle — spilled as
        segment files through ``shuffle`` when a service is given (waking
        waiting reducers), or returned in memory otherwise.

        ``fault_plan`` injects failures/delays before the attempt touches
        data; ``commit_check`` gates the map-only output write so that only
        one attempt of a task ever commits (the shuffle service enforces
        the same first-completion rule for spilled output itself).
        """
        task_id = f"map-{split.split_id:05d}"
        self._acquire_slot()
        started = time.perf_counter()
        try:
            if fault_plan is not None:
                fault_plan.on_task_start(
                    kind="map",
                    index=split.split_id,
                    attempt=attempt,
                    tracker_host=self.host,
                    fs=fs,
                )
            records_in = 0
            map_only = num_partitions == 0
            collector = MapOutputCollector(
                max(num_partitions, 1), combiner=job.combiner
            )
            context = TaskContext(
                job_conf=job.conf,
                task_id=task_id,
                emit=collector.collect,
                counters=counters,
            )
            for key, value in reader_factory(fs, split):
                job.mapper(key, value, context)
                records_in += 1
                counters.increment("map_input_records")
            counters.increment("map_output_records", collector.records_collected)
            output_path: str | None = None
            discarded = False
            partitions = collector.partitions()
            if map_only:
                partitions_out: list[list[tuple[Any, Any]]] | None = None
                if commit_check is None or commit_check():
                    fmt = output_format or TextOutputFormat()
                    pairs = [pair for partition in partitions for pair in partition]
                    output_path = fmt.write(
                        fs,
                        job.conf.output_dir,
                        split.split_id,
                        pairs,
                        map_only=True,
                        replication=job.conf.output_replication,
                        client_host=self.host,
                    )
                else:
                    discarded = True
            elif shuffle is not None:
                spilled, won = shuffle.spill_map_output(
                    split.split_id, partitions, attempt=attempt
                )
                counters.increment("map_spilled_bytes", spilled)
                partitions_out = None
                discarded = not won
            else:
                partitions_out = partitions
            duration = time.perf_counter() - started
            return TaskResult(
                task_id=task_id,
                tracker_host=self.host,
                kind="map",
                duration=duration,
                records_in=records_in,
                records_out=collector.records_collected,
                locality=locality,
                output_path=output_path,
                map_output=partitions_out,
                attempt=attempt,
                speculative=speculative,
                discarded=discarded,
                attempt_counters=counters,
            )
        finally:
            self._release_slot()

    # -- reduce tasks ----------------------------------------------------------------
    def run_reduce_task(
        self,
        job: Job,
        fs: FileSystem,
        partition_index: int,
        pairs: Iterable[tuple[Any, Any]],
        *,
        counters: Counters,
        output_format: TextOutputFormat | None = None,
        presorted: bool = False,
        attempt: int = 0,
        speculative: bool = False,
        fault_plan: FaultPlan | None = None,
        commit_check: Callable[[], bool] | None = None,
    ) -> TaskResult:
        """Execute the reduce function over one merged, grouped partition.

        ``pairs`` may be any iterable; with ``presorted=True`` it is assumed
        to be ordered by ``repr(key)`` (the spill-based shuffle's external
        merge) and is grouped in streaming fashion without materialising the
        partition.

        ``commit_check`` implements the output-committer handshake: right
        before writing, the attempt asks whether it is the first of its
        task to finish — a losing (speculative or duplicate) attempt skips
        the write entirely, so retries and backups can never duplicate
        reduce output, including on the shared single-output-file path.
        """
        task_id = f"reduce-{partition_index:05d}"
        self._acquire_slot()
        started = time.perf_counter()
        try:
            if fault_plan is not None:
                fault_plan.on_task_start(
                    kind="reduce",
                    index=partition_index,
                    attempt=attempt,
                    tracker_host=self.host,
                    fs=fs,
                )
            emitted: list[tuple[Any, Any]] = []
            context = TaskContext(
                job_conf=job.conf,
                task_id=task_id,
                emit=lambda key, value: emitted.append((key, value)),
                counters=counters,
            )
            records_in = 0
            groups = group_sorted_pairs(pairs) if presorted else group_by_key(pairs)
            for key, values in groups:
                job.reducer(key, values, context)
                records_in += len(values)
                counters.increment("reduce_input_records", len(values))
            counters.increment("reduce_output_records", len(emitted))
            output_path: str | None = None
            discarded = False
            if commit_check is None or commit_check():
                fmt = output_format or TextOutputFormat()
                output_path = fmt.write(
                    fs,
                    job.conf.output_dir,
                    partition_index,
                    emitted,
                    map_only=False,
                    replication=job.conf.output_replication,
                    client_host=self.host,
                )
            else:
                discarded = True
            duration = time.perf_counter() - started
            return TaskResult(
                task_id=task_id,
                tracker_host=self.host,
                kind="reduce",
                duration=duration,
                records_in=records_in,
                records_out=len(emitted),
                output_path=output_path,
                attempt=attempt,
                speculative=speculative,
                discarded=discarded,
                attempt_counters=counters,
            )
        finally:
            self._release_slot()
