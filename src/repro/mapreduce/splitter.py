"""Input splitting and record reading.

Hadoop splits each input file into chunk-sized *input splits* and runs one
map task per split; the paper's microbenchmarks mirror this (clients reading
non-overlapping parts of the same huge file correspond to the map phase).
This module reproduces the two input formats the reproduction needs:

* :class:`TextInputFormat` — line-oriented records over file splits, with
  Hadoop's boundary convention: a split skips its first (partial) line
  unless it starts at offset zero, and reads past its end to finish its
  last line, so every line of the file is processed exactly once no matter
  how the file is split;
* :class:`SyntheticInputFormat` — inputless splits for generator jobs such
  as Random Text Writer, where each map task produces data rather than
  consuming it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..fs.interface import FileSystem
from ..fs.path import split_as_of
from .job import JobConf

__all__ = [
    "InputSplit",
    "LineRecordReader",
    "TextInputFormat",
    "SyntheticInputFormat",
]


@dataclass(frozen=True, slots=True)
class InputSplit:
    """One unit of map-side work."""

    split_id: int
    path: str | None
    offset: int
    length: int
    hosts: tuple[str, ...] = ()
    #: Storage snapshot the split reads (``AS OF`` jobs); ``None`` reads
    #: the file's current state.  Stamped by the input format from the
    #: job's ``snapshot_version`` or an ``@vN`` path suffix.
    version: int | None = None

    @property
    def is_synthetic(self) -> bool:
        """Whether the split carries no input file (generator jobs)."""
        return self.path is None


class LineRecordReader:
    """Iterates ``(byte offset, line)`` records of one split, Hadoop-style.

    The reader makes a *single streaming pass* over the split through the
    file system's ``open_read`` API: chunks arrive with backend read-ahead
    (BSFS fetches pages concurrently, HDFS prefetches block chunks), so
    record decoding overlaps with actual byte movement instead of issuing
    one blocking positional read per chunk.  The bytes consumed while
    skipping the leading partial line seed the record buffer — the old
    two-phase implementation read them twice.
    """

    def __init__(
        self,
        fs: FileSystem,
        split: InputSplit,
        *,
        read_chunk: int = 1024 * 1024,
    ) -> None:
        if split.path is None:
            raise ValueError("LineRecordReader needs a file-backed split")
        self._fs = fs
        self._split = split
        self._read_chunk = read_chunk

    def __iter__(self) -> Iterator[tuple[int, bytes]]:
        split = self._split
        if split.version is None:
            # Current-state split: bound by the size ``status`` reports
            # (wrapping views may clamp it; see the size-boundary tests).
            file_size = self._fs.status(split.path).size
        else:
            file_size = self._fs.snapshot_size(split.path, split.version)
        end = min(split.offset + split.length, file_size)
        start = min(split.offset, file_size)
        # The stream is bounded by the split's snapshot size: a split may
        # read past its end to finish its last line, but never past the
        # version its splits were computed against — so an ``AS OF`` job
        # reads identical bytes however many appends land concurrently.
        chunks = self._fs.open_read(
            split.path,
            offset=start,
            length=file_size - start,
            chunk_size=self._read_chunk,
            version=split.version,
        )
        buffer = bytearray()
        base = start  # absolute file offset of buffer[0]

        def fill() -> bool:
            chunk = next(chunks, None)
            if chunk is None:
                return False
            buffer.extend(chunk)
            return True

        try:
            if split.offset > 0:
                # Skip the first (partial) line: it belongs to the previous
                # split, which always reads past its end to finish it.
                while True:
                    newline = buffer.find(b"\n")
                    if newline >= 0:
                        del buffer[: newline + 1]
                        base += newline + 1
                        break
                    # No newline yet: the scanned bytes can be dropped
                    # wholesale (a one-byte delimiter cannot straddle
                    # chunks), so skipping never buffers more than one
                    # chunk however far away the next newline is.
                    base += len(buffer)
                    buffer.clear()
                    if not fill():
                        return  # no newline between the offset and EOF
            record_start = base
            pos = 0  # offset of the current record within the buffer
            search_from = 0
            # Hadoop's convention: a split also owns the record that *starts*
            # exactly at its end offset, because the next split always skips
            # its first (possibly complete) line.  Hence ``<=`` below.
            while True:
                newline = buffer.find(b"\n", search_from)
                if newline < 0:
                    # No complete line buffered: compact and fetch more.
                    if pos:
                        del buffer[:pos]
                        base += pos
                        pos = 0
                    search_from = len(buffer)
                    if fill():
                        continue
                    # End of file: the remaining buffer is a final line
                    # without a trailing newline.
                    if buffer and record_start <= end:
                        yield record_start, bytes(buffer)
                    return
                if record_start > end:
                    return
                line = bytes(buffer[pos:newline])
                yield record_start, line
                record_start += len(line) + 1
                pos = newline + 1
                search_from = pos
                if record_start > end:
                    return
        finally:
            close = getattr(chunks, "close", None)
            if close is not None:
                close()


class TextInputFormat:
    """Computes file splits and produces line record readers."""

    def __init__(self, *, split_size: int | None = None) -> None:
        self._split_size = split_size

    def get_splits(self, fs: FileSystem, conf: JobConf) -> list[InputSplit]:
        """One split per ``split_size`` bytes of every input file.

        The split size defaults to the file's block size so splits align
        with storage blocks (the property locality-aware scheduling relies
        on); hosts come from the file system's block-location primitive.

        Splits of an ``AS OF`` job are sized against the pinned snapshot
        (an ``@vN`` path suffix wins over the job's ``snapshot_version``),
        so concurrent appends change neither the split set nor the bytes
        the map tasks read.
        """
        splits: list[InputSplit] = []
        split_id = 0
        for path in conf.input_paths:
            bare, suffix_version = split_as_of(path)
            status = fs.status(bare)
            if status.is_dir:
                files = [s.path for s in fs.list_files(bare, recursive=True)]
            else:
                files = [bare]
            for file_path in files:
                version = suffix_version
                if version is None:
                    version = conf.version_for(file_path)
                file_status = fs.status(file_path)
                size = fs.snapshot_size(file_path, version)
                if size == 0:
                    continue
                split_size = (
                    conf.split_size
                    or self._split_size
                    or file_status.block_size
                    or size
                )
                offset = 0
                while offset < size:
                    length = min(split_size, size - offset)
                    try:
                        locations = fs.block_locations(file_path, offset, length)
                        hosts: tuple[str, ...] = tuple(
                            dict.fromkeys(
                                host for loc in locations for host in loc.hosts
                            )
                        )
                    except Exception:
                        hosts = ()
                    splits.append(
                        InputSplit(
                            split_id=split_id,
                            path=file_path,
                            offset=offset,
                            length=length,
                            hosts=hosts,
                            version=version,
                        )
                    )
                    split_id += 1
                    offset += length
        return splits

    def create_reader(self, fs: FileSystem, split: InputSplit) -> LineRecordReader:
        """Record reader for one split."""
        return LineRecordReader(fs, split)


class SyntheticInputFormat:
    """Input format for generator jobs (no input files).

    Produces ``num_map_tasks`` synthetic splits; the record reader yields a
    single ``(task index, task index)`` record per split, and the mapper is
    expected to generate its output from the job configuration (e.g. the
    number of random bytes to write).
    """

    def get_splits(self, fs: FileSystem, conf: JobConf) -> list[InputSplit]:
        """One synthetic split per requested map task."""
        num_tasks = conf.num_map_tasks or 1
        return [
            InputSplit(split_id=i, path=None, offset=i, length=0, hosts=())
            for i in range(num_tasks)
        ]

    def create_reader(self, fs: FileSystem, split: InputSplit):
        """Yield a single record identifying the synthetic task."""

        def _records() -> Iterator[tuple[int, int]]:
            yield split.offset, split.offset

        return _records()
