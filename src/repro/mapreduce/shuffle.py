"""Shuffle phase: partitioning, sorting, grouping, and output formats.

Between the map and reduce phases Hadoop partitions every intermediate pair
by key, sorts each partition and groups values by key before handing them
to the reducer.  The same steps live here, in process: map outputs are
collected per partition by :class:`MapOutputCollector`, merged across map
tasks by :func:`merge_map_outputs`, and reduce outputs are written back to
the file system by an output format (one ``part-*`` file per reduce task,
exactly the layout the paper mentions when motivating concurrent appends —
"the MapReduce workers write the reduce output to the same file, instead of
creating several output files, as it is currently done in Hadoop").
"""

from __future__ import annotations

import hashlib
import itertools
import operator
from collections import defaultdict
from typing import Any, Callable, Iterable, Iterator

from ..core.transfer import ChunkBuffer
from ..fs.interface import FileSystem
from ..fs import path as fspath

__all__ = [
    "hash_partitioner",
    "MapOutputCollector",
    "merge_map_outputs",
    "group_by_key",
    "group_sorted_pairs",
    "TextOutputFormat",
    "SingleFileOutputFormat",
]


def hash_partitioner(key: Any, num_partitions: int) -> int:
    """Deterministic hash partitioner (stable across processes and runs)."""
    if num_partitions <= 1:
        return 0
    digest = hashlib.blake2b(repr(key).encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big") % num_partitions


class MapOutputCollector:
    """Collects one map task's output, split by reduce partition.

    An optional combiner is applied when the collector is sealed, reducing
    the volume handed to the shuffle exactly like Hadoop's map-side combine.
    """

    def __init__(
        self,
        num_partitions: int,
        *,
        partitioner: Callable[[Any, int], int] = hash_partitioner,
        combiner: Callable[[Any, Iterable[Any], Any], None] | None = None,
    ) -> None:
        if num_partitions < 1:
            raise ValueError("num_partitions must be at least 1")
        self._num_partitions = num_partitions
        self._partitioner = partitioner
        self._combiner = combiner
        self._partitions: list[list[tuple[Any, Any]]] = [
            [] for _ in range(num_partitions)
        ]
        self.records_collected = 0

    def collect(self, key: Any, value: Any) -> None:
        """Add one intermediate pair."""
        partition = self._partitioner(key, self._num_partitions)
        self._partitions[partition].append((key, value))
        self.records_collected += 1

    def _apply_combiner(
        self, pairs: list[tuple[Any, Any]]
    ) -> list[tuple[Any, Any]]:
        if self._combiner is None or not pairs:
            return pairs
        combined: list[tuple[Any, Any]] = []

        class _CombineContext:
            def emit(self, key: Any, value: Any) -> None:  # noqa: D401
                combined.append((key, value))

        context = _CombineContext()
        for key, values in group_by_key(pairs):
            self._combiner(key, values, context)
        return combined

    def partitions(self) -> list[list[tuple[Any, Any]]]:
        """Finalised per-partition outputs (combiner applied, sorted by key)."""
        result = []
        for pairs in self._partitions:
            combined = self._apply_combiner(pairs)
            result.append(sorted(combined, key=lambda kv: repr(kv[0])))
        return result


def merge_map_outputs(
    map_outputs: Iterable[list[list[tuple[Any, Any]]]], partition: int
) -> list[tuple[Any, Any]]:
    """Merge one partition's pairs from every map task and sort them by key."""
    merged: list[tuple[Any, Any]] = []
    for output in map_outputs:
        merged.extend(output[partition])
    merged.sort(key=lambda kv: repr(kv[0]))
    return merged


def group_by_key(pairs: Iterable[tuple[Any, Any]]) -> Iterator[tuple[Any, list[Any]]]:
    """Group sorted (or unsorted) pairs by key, preserving value order per key."""
    grouped: dict[Any, list[Any]] = defaultdict(list)
    order: list[Any] = []
    for key, value in pairs:
        if key not in grouped:
            order.append(key)
        grouped[key].append(value)
    for key in sorted(order, key=repr):
        yield key, grouped[key]


def group_sorted_pairs(
    pairs: Iterable[tuple[Any, Any]]
) -> Iterator[tuple[Any, list[Any]]]:
    """Group a key-sorted pair stream into ``(key, values)`` runs.

    The streaming counterpart of :func:`group_by_key` for the spill-based
    shuffle: the input (an external k-way merge over sorted segments) is
    already ordered by ``repr(key)``, so equal keys are adjacent and only
    the current key's values are ever held in memory — a reduce partition
    larger than memory still reduces.
    """
    for key, group in itertools.groupby(pairs, key=operator.itemgetter(0)):
        yield key, [value for _key, value in group]


class TextOutputFormat:
    """Writes reduce (or map-only) output as ``key\\tvalue`` text lines.

    One ``part-XXXXX`` file per task under the job's output directory —
    the standard Hadoop layout.
    """

    def __init__(self, *, separator: bytes = b"\t") -> None:
        self._separator = separator

    def output_path(self, output_dir: str, task_index: int, *, map_only: bool) -> str:
        """Path of the part file written by task ``task_index``."""
        prefix = "part-m-" if map_only else "part-r-"
        return fspath.join(output_dir, f"{prefix}{task_index:05d}")

    def write(
        self,
        fs: FileSystem,
        output_dir: str,
        task_index: int,
        pairs: Iterable[tuple[Any, Any]],
        *,
        map_only: bool = False,
        replication: int | None = None,
        client_host: str | None = None,
    ) -> str:
        """Write one task's output pairs; returns the part file path.

        Pairs are encoded and written line by line through the streaming
        sink, so a task's output never has to fit in memory at once.
        """
        fs.mkdirs(output_dir)
        path = self.output_path(output_dir, task_index, map_only=map_only)
        with fs.open_write(
            path, overwrite=True, replication=replication, client_host=client_host
        ) as stream:
            for key, value in pairs:
                line = self._encode(key) + self._separator + self._encode(value) + b"\n"
                stream.write(line)
        return path

    @staticmethod
    def _encode(value: Any) -> bytes:
        if isinstance(value, bytes):
            return value
        return str(value).encode("utf-8")


class SingleFileOutputFormat(TextOutputFormat):
    """Extension output format: every reduce task appends to one shared file.

    This is the §V "future work" scenario enabled by BlobSeer's concurrent
    appends: instead of one ``part-*`` file per reducer, all reducers append
    their output to a single file.  It requires the target file system to
    expose ``concurrent_append`` (BSFS does; HDFS raises).

    Output streams through bounded appends: encoded lines accumulate in a
    chunk list and are appended once ``append_chunk_bytes`` is reached, so
    a reducer with output larger than memory still commits.  Flushes only
    ever happen at line boundaries — concurrent reducers may interleave
    *between* appends, so a line must never straddle two of them.
    """

    def __init__(
        self,
        *,
        filename: str = "output.txt",
        separator: bytes = b"\t",
        append_chunk_bytes: int = 4 * 1024 * 1024,
    ) -> None:
        super().__init__(separator=separator)
        if append_chunk_bytes < 1:
            raise ValueError("append_chunk_bytes must be positive")
        self._filename = filename
        self._append_chunk_bytes = append_chunk_bytes

    def shared_path(self, output_dir: str) -> str:
        """Path of the single shared output file under ``output_dir``."""
        return fspath.join(output_dir, self._filename)

    def prepare(
        self, fs: FileSystem, output_dir: str, *, replication: int | None = None
    ) -> str:
        """Create-or-truncate the shared file before any reducer appends.

        Called once per job by the jobtracker: without it, rerunning a job
        into the same output directory would *append* to the previous run's
        file (concurrent_append never truncates), silently duplicating
        output — unlike the part-file path, which overwrites.
        """
        fs.mkdirs(output_dir)
        path = self.shared_path(output_dir)
        with fs.create(path, overwrite=True, replication=replication):
            pass
        return path

    def write(
        self,
        fs: FileSystem,
        output_dir: str,
        task_index: int,
        pairs: Iterable[tuple[Any, Any]],
        *,
        map_only: bool = False,
        replication: int | None = None,
        client_host: str | None = None,
    ) -> str:
        concurrent_append = getattr(fs, "concurrent_append", None)
        if concurrent_append is None:
            from ..fs.errors import UnsupportedOperationError

            raise UnsupportedOperationError(
                f"{fs.scheme} cannot write a shared output file: "
                "concurrent appends are not supported"
            )
        fs.mkdirs(output_dir)
        path = self.shared_path(output_dir)
        if not fs.exists(path):
            try:
                with fs.create(path, replication=replication):
                    pass
            except Exception:
                # Another reducer created it concurrently; that is fine.
                pass
        payload = ChunkBuffer()
        for key, value in pairs:
            payload.append(
                self._encode(key) + self._separator + self._encode(value) + b"\n"
            )
            if len(payload) >= self._append_chunk_bytes:
                concurrent_append(path, payload.take_all())
        if len(payload):
            concurrent_append(path, payload.take_all())
        return path
