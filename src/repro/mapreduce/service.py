"""Multi-tenant job service: concurrent submission over one MapReduce engine.

The original API was one blocking call — ``JobTracker.run(job)`` — which
serves exactly one caller at a time.  A shared cluster serves *tenants*:
many clients submitting concurrently, each entitled to a slice of the
cluster and bounded in what it may consume.  :class:`JobService` is that
front door:

* **submission** — :meth:`JobService.submit` returns a :class:`JobHandle`
  immediately; ``status()``/``wait()``/``cancel()`` and progress callbacks
  replace run-to-completion blocking.  ``JobTracker.run`` survives as a
  thin submit-and-wait wrapper over an embedded service, so every
  pre-service caller keeps working unchanged.
* **fair-share scheduling** — queued jobs are drained per tenant by a
  stride scheduler: the tenant with the smallest ``served / weight`` runs
  next, so a tenant submitting 100 jobs cannot starve one submitting 2,
  and a weight-3 tenant gets three starts for a weight-1 tenant's one.
  Within a tenant, higher :attr:`~repro.mapreduce.job.JobConf.priority`
  runs first, ties FIFO.
* **admission control** — per-tenant caps: ``max_queued_jobs`` rejects at
  submit time (:class:`AdmissionError`), ``max_concurrent_jobs`` queues.
* **resource isolation** — per-tenant namespace quotas (files/bytes,
  enforced in the file system via :class:`~repro.fs.quota.QuotaManager`),
  per-tenant inflight-byte budgets throttling shuffle transfers
  (:class:`~repro.core.transfer.InflightBudget`), and a shared
  :class:`~repro.mapreduce.scheduler.SlotLedger` tracking live slot use.
* **cooperative preemption** — while any tenant is *starved* (jobs queued,
  none running), the speculation gate closes: running jobs stop launching
  backup attempts for stragglers, handing those slots to the starved
  tenant's job instead of racing duplicates.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any, Callable

from ..core.transfer import InflightBudget
from ..fs.quota import QuotaManager, attach_quota_manager
from .job import Job
from .jobtracker import (
    CANCEL_EVENT_PROPERTY,
    INFLIGHT_BUDGET_PROPERTY,
    PROGRESS_PROPERTY,
    SPECULATION_GATE_PROPERTY,
    JobResult,
    JobTracker,
    make_cluster,
)
from .scheduler import SlotLedger

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..fs.interface import FileSystem
    from .faults import FaultPlan

__all__ = [
    "AdmissionError",
    "JobCancelledError",
    "JobHandle",
    "JobService",
    "JobServiceEndpoint",
    "TenantConfig",
    "JOB_QUEUED",
    "JOB_RUNNING",
    "JOB_SUCCEEDED",
    "JOB_FAILED",
    "JOB_CANCELLED",
]

#: Job lifecycle states reported by :meth:`JobHandle.status`.
JOB_QUEUED = "QUEUED"
JOB_RUNNING = "RUNNING"
JOB_SUCCEEDED = "SUCCEEDED"
JOB_FAILED = "FAILED"
JOB_CANCELLED = "CANCELLED"

#: Signature of a progress callback: ``callback(phase, completed, total)``
#: with ``phase`` one of ``"map"``/``"reduce"``.
ProgressCallback = Callable[[str, int, int], None]


class AdmissionError(RuntimeError):
    """A submission was rejected by admission control (tenant queue full)."""

    def __init__(self, tenant: str | None, queued: int, limit: int) -> None:
        super().__init__(
            f"tenant {tenant or '<default>'!s} already has {queued} queued "
            f"job(s), at its admission limit of {limit}"
        )
        self.tenant = tenant
        self.queued = queued
        self.limit = limit

    def __reduce__(self):
        # Rejections cross the RPC boundary as pickled exception objects;
        # the default exception reduction would replay only the formatted
        # message against the three-argument constructor.
        return (type(self), (self.tenant, self.queued, self.limit))


class JobCancelledError(RuntimeError):
    """Waiting on a job that was cancelled before producing a result."""


@dataclass(frozen=True)
class TenantConfig:
    """Scheduling entitlements and resource limits of one tenant.

    ``None`` limits mean unlimited.  Namespace limits (``max_files``/
    ``max_bytes``) are enforced inside the file system on every create,
    append and resize; ``inflight_bytes`` bounds the bytes the tenant's
    shuffle transfers keep in flight across all its concurrent jobs.
    """

    name: str
    #: Fair-share weight: relative share of job starts under contention.
    weight: float = 1.0
    #: Jobs of this tenant running at once; further submissions queue.
    max_concurrent_jobs: int | None = None
    #: Jobs waiting in this tenant's queue; further submissions are
    #: rejected with :class:`AdmissionError`.
    max_queued_jobs: int | None = None
    #: Shared inflight-byte budget for the tenant's shuffle transfers.
    inflight_bytes: int | None = None
    #: Namespace quota: files the tenant may hold.
    max_files: int | None = None
    #: Namespace quota: recorded bytes the tenant may hold.
    max_bytes: int | None = None

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError("tenant weight must be positive")


class JobHandle:
    """Live view of one submitted job.

    Returned by :meth:`JobService.submit`; thread-safe.  ``wait()``
    re-raises whatever the execution raised, so a blocking
    ``submit(...).wait()`` is observably identical to the old
    ``JobTracker.run``.
    """

    def __init__(
        self,
        service: "JobService",
        job_id: int,
        job_name: str,
        tenant: str | None,
        priority: int,
    ) -> None:
        self._service = service
        self.job_id = job_id
        self.job_name = job_name
        self.tenant = tenant
        self.priority = priority
        self._lock = threading.Lock()
        self._state = JOB_QUEUED
        self._done = threading.Event()
        self._cancel_event = threading.Event()
        self._result: JobResult | None = None
        self._error: BaseException | None = None
        self._progress_callbacks: list[ProgressCallback] = []

    # -- inspection --------------------------------------------------------------------
    def status(self) -> str:
        """Current lifecycle state (``QUEUED``/``RUNNING``/``SUCCEEDED``/
        ``FAILED``/``CANCELLED``)."""
        with self._lock:
            return self._state

    @property
    def result(self) -> JobResult | None:
        """The job's result once finished (``None`` while pending)."""
        with self._lock:
            return self._result

    def wait(self, timeout: float | None = None) -> JobResult:
        """Block until the job finishes and return its :class:`JobResult`.

        Re-raises the execution's exception if it raised; raises
        :class:`JobCancelledError` when the job was cancelled before
        running; raises :class:`TimeoutError` when ``timeout`` elapses.
        """
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"job {self.job_name!r} (id {self.job_id}) still "
                f"{self.status()} after {timeout}s"
            )
        with self._lock:
            if self._error is not None:
                raise self._error
            if self._result is None:
                raise JobCancelledError(
                    f"job {self.job_name!r} (id {self.job_id}) was cancelled "
                    "before it started"
                )
            return self._result

    # -- control -----------------------------------------------------------------------
    def cancel(self) -> bool:
        """Cancel the job: dequeue it if still queued, or ask a running job
        to stop launching further task attempts (already-running attempts
        finish).  Returns whether the request had any effect (``False``
        once the job already finished).
        """
        return self._service._cancel(self)

    def on_progress(self, callback: ProgressCallback) -> "JobHandle":
        """Register ``callback(phase, completed, total)``, fired as task
        winners commit (``phase`` is ``"map"`` or ``"reduce"``).  Returns
        ``self`` for chaining."""
        with self._lock:
            self._progress_callbacks.append(callback)
        return self

    # -- service internals -------------------------------------------------------------
    def _report_progress(self, phase: str, completed: int, total: int) -> None:
        with self._lock:
            callbacks = list(self._progress_callbacks)
        for callback in callbacks:
            callback(phase, completed, total)

    def _mark_running(self) -> None:
        with self._lock:
            self._state = JOB_RUNNING

    def _finish(
        self,
        result: JobResult | None,
        error: BaseException | None,
    ) -> None:
        with self._lock:
            self._result = result
            self._error = error
            if self._cancel_event.is_set():
                self._state = JOB_CANCELLED
            elif error is not None or result is None or not result.succeeded:
                self._state = JOB_FAILED
            else:
                self._state = JOB_SUCCEEDED
        self._done.set()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"JobHandle(id={self.job_id}, name={self.job_name!r}, "
            f"tenant={self.tenant!r}, state={self.status()})"
        )


@dataclass
class _QueuedJob:
    """One submission waiting for a slot."""

    job: Job
    fault_plan: "FaultPlan | None"
    handle: JobHandle
    priority: int
    seq: int

    @property
    def sort_key(self) -> tuple[int, int]:
        # Higher priority first, then FIFO by submission order.
        return (-self.priority, self.seq)


class JobService:
    """Front door of a shared MapReduce cluster: multi-tenant submission.

    Wraps one :class:`~repro.mapreduce.jobtracker.JobTracker` (the engine)
    with concurrent submission, per-tenant fair-share scheduling, admission
    control and resource limits — see the module docstring for the model.

    ``max_concurrent_jobs`` bounds jobs running at once across all tenants
    (``None`` = unbounded, used by the embedded service behind
    ``JobTracker.run``).  There is no dispatcher thread: submissions and
    job completions pump the queue, starting one worker thread per running
    job.
    """

    def __init__(
        self,
        tracker: JobTracker,
        *,
        max_concurrent_jobs: int | None = 4,
        quotas: QuotaManager | None = None,
    ) -> None:
        if max_concurrent_jobs is not None and max_concurrent_jobs < 1:
            raise ValueError("max_concurrent_jobs must be positive when given")
        self.tracker = tracker
        self.fs = tracker.fs
        self.max_concurrent_jobs = max_concurrent_jobs
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self._tenants: dict[str, TenantConfig] = {}
        self._budgets: dict[str, InflightBudget] = {}
        self._queues: dict[str, list[_QueuedJob]] = {}
        self._running: dict[str, int] = {}
        self._served: dict[str, float] = {}
        self._handles: dict[int, JobHandle] = {}
        self._next_job_id = itertools.count(1)
        self._next_seq = itertools.count()
        self._total_running = 0
        # One ledger shared by every per-job scheduler: live per-tenant
        # slot occupancy.  Adopt the tracker's if a service already
        # installed one (a tracker may back several services).
        if tracker.slot_ledger is None:
            tracker.slot_ledger = SlotLedger()
        self.slot_ledger = tracker.slot_ledger
        self.quotas = quotas
        if quotas is not None:
            attach_quota_manager(self.fs, quotas)
        # Make this service the one JobTracker.run delegates to, so a
        # blocking run() on a service-fronted tracker shares the same
        # queues instead of spawning a parallel unbounded service.
        with tracker._service_lock:
            if tracker._service is None:
                tracker._service = self

    @classmethod
    def local(
        cls,
        fs: "FileSystem | str",
        *,
        hosts: list[str] | None = None,
        num_trackers: int = 4,
        slots_per_tracker: int = 2,
        parallel: bool = True,
        max_concurrent_jobs: int | None = 4,
        quotas: QuotaManager | None = None,
    ) -> "JobService":
        """Build a service over a fresh in-process cluster.

        The replacement for direct ``JobTracker(...)`` construction:
        identical cluster topology defaults (via
        :func:`~repro.mapreduce.jobtracker.make_cluster`), fronted by the
        multi-tenant submission API.
        """
        tracker = make_cluster(
            fs,
            hosts=hosts,
            num_trackers=num_trackers,
            slots_per_tracker=slots_per_tracker,
            parallel=parallel,
        )
        return cls(tracker, max_concurrent_jobs=max_concurrent_jobs, quotas=quotas)

    # -- tenant management -------------------------------------------------------------
    def register_tenant(
        self,
        tenant: str | TenantConfig,
        *,
        weight: float = 1.0,
        max_concurrent_jobs: int | None = None,
        max_queued_jobs: int | None = None,
        inflight_bytes: int | None = None,
        max_files: int | None = None,
        max_bytes: int | None = None,
    ) -> TenantConfig:
        """Register (or replace) a tenant's entitlements and limits.

        Accepts a prebuilt :class:`TenantConfig` or a name plus keyword
        limits.  Namespace limits install a quota into the file system's
        :class:`~repro.fs.quota.QuotaManager` (attaching one if the file
        system was built without); ``inflight_bytes`` creates the tenant's
        shared shuffle budget.  Unregistered tenants may still submit —
        they get weight 1 and no limits.
        """
        if isinstance(tenant, TenantConfig):
            config = tenant
        else:
            config = TenantConfig(
                name=tenant,
                weight=weight,
                max_concurrent_jobs=max_concurrent_jobs,
                max_queued_jobs=max_queued_jobs,
                inflight_bytes=inflight_bytes,
                max_files=max_files,
                max_bytes=max_bytes,
            )
        with self._lock:
            self._tenants[config.name] = config
            if config.inflight_bytes is not None:
                self._budgets[config.name] = InflightBudget(config.inflight_bytes)
            else:
                self._budgets.pop(config.name, None)
        if config.max_files is not None or config.max_bytes is not None:
            if self.quotas is None:
                self.quotas = getattr(self.fs, "quotas", None) or QuotaManager()
                attach_quota_manager(self.fs, self.quotas)
            self.quotas.set_quota(
                config.name,
                max_files=config.max_files,
                max_bytes=config.max_bytes,
            )
        return config

    def tenant_config(self, tenant: str | None) -> TenantConfig:
        """The registered configuration of ``tenant`` (defaults when unset)."""
        with self._lock:
            return self._tenants.get(tenant or "", TenantConfig(name=tenant or ""))

    # -- submission --------------------------------------------------------------------
    def submit(
        self,
        job: Job,
        *,
        tenant: str | None = None,
        priority: int | None = None,
        fault_plan: "FaultPlan | None" = None,
    ) -> JobHandle:
        """Submit ``job`` and return a :class:`JobHandle` immediately.

        ``tenant``/``priority`` default from the job's configuration
        (:attr:`~repro.mapreduce.job.JobConf.tenant` /
        :attr:`~repro.mapreduce.job.JobConf.priority`) and override it when
        given.  Raises :class:`AdmissionError` when the tenant's queue is
        at its ``max_queued_jobs`` limit.
        """
        tenant = tenant if tenant is not None else job.conf.tenant
        priority = priority if priority is not None else job.conf.priority
        key = tenant or ""
        with self._lock:
            config = self._tenants.get(key)
            queue = self._queues.setdefault(key, [])
            if config is not None and config.max_queued_jobs is not None:
                queued = sum(
                    1 for item in queue if item.handle.status() == JOB_QUEUED
                )
                if queued >= config.max_queued_jobs:
                    raise AdmissionError(tenant, queued, config.max_queued_jobs)
            handle = JobHandle(
                self, next(self._next_job_id), job.name, tenant, priority
            )
            item = _QueuedJob(
                job=job,
                fault_plan=fault_plan,
                handle=handle,
                priority=priority,
                seq=next(self._next_seq),
            )
            queue.append(item)
            queue.sort(key=lambda entry: entry.sort_key)
            self._handles[handle.job_id] = handle
        self._pump()
        return handle

    def handle(self, job_id: int) -> JobHandle:
        """Look up the handle of a submitted job by id."""
        with self._lock:
            return self._handles[job_id]

    def job_ids(self) -> list[int]:
        """Ids of every job this service has accepted (oldest first)."""
        with self._lock:
            return sorted(self._handles)

    # -- scheduling --------------------------------------------------------------------
    def _pump(self) -> None:
        """Start queued jobs while global and per-tenant capacity remains.

        Called on submit and on every job completion; the fair-share pick
        is a stride scheduler — the eligible tenant with the smallest
        ``served / weight`` starts next.
        """
        while True:
            with self._lock:
                if (
                    self.max_concurrent_jobs is not None
                    and self._total_running >= self.max_concurrent_jobs
                ):
                    return
                item = self._pick_locked()
                if item is None:
                    return
                key = item.handle.tenant or ""
                self._running[key] = self._running.get(key, 0) + 1
                self._total_running += 1
                config = self._tenants.get(key)
                weight = config.weight if config is not None else 1.0
                self._served[key] = self._served.get(key, 0.0) + 1.0 / weight
                budget = self._budgets.get(key)
            item.handle._mark_running()
            worker = threading.Thread(
                target=self._run_job,
                args=(item, budget),
                name=f"jobservice-{item.handle.job_id}",
                daemon=True,
            )
            worker.start()

    def _pick_locked(self) -> _QueuedJob | None:
        """Dequeue the next job under fair-share (caller holds the lock)."""
        best_key: str | None = None
        best_pass = 0.0
        for key, queue in self._queues.items():
            # Drop cancelled entries eagerly so they neither count against
            # admission nor clog the front of the queue.
            queue[:] = [i for i in queue if i.handle.status() == JOB_QUEUED]
            if not queue:
                continue
            config = self._tenants.get(key)
            if (
                config is not None
                and config.max_concurrent_jobs is not None
                and self._running.get(key, 0) >= config.max_concurrent_jobs
            ):
                continue
            weight = config.weight if config is not None else 1.0
            tenant_pass = self._served.get(key, 0.0) / weight
            if best_key is None or (tenant_pass, key) < (best_pass, best_key):
                best_key = key
                best_pass = tenant_pass
        if best_key is None:
            return None
        return self._queues[best_key].pop(0)

    def _run_job(self, item: _QueuedJob, budget: InflightBudget | None) -> None:
        handle = item.handle
        result: JobResult | None = None
        error: BaseException | None = None
        try:
            result = self.tracker._execute(
                self._instrument(item.job, handle, budget), item.fault_plan
            )
        except BaseException as exc:  # re-raised from handle.wait()
            error = exc
        finally:
            key = handle.tenant or ""
            with self._lock:
                self._running[key] = max(self._running.get(key, 0) - 1, 0)
                self._total_running -= 1
                self._idle.notify_all()
            handle._finish(result, error)
            self._pump()

    def _instrument(
        self, job: Job, handle: JobHandle, budget: InflightBudget | None
    ) -> Job:
        """Thread the service's runtime controls into the job's conf."""
        properties = dict(job.conf.properties)
        properties[CANCEL_EVENT_PROPERTY] = handle._cancel_event
        properties[SPECULATION_GATE_PROPERTY] = self._speculation_open
        properties[PROGRESS_PROPERTY] = handle._report_progress
        if budget is not None:
            properties[INFLIGHT_BUDGET_PROPERTY] = budget
        conf = replace(
            job.conf,
            tenant=handle.tenant,
            priority=handle.priority,
            properties=properties,
        )
        return replace(job, conf=conf)

    def _speculation_open(self) -> bool:
        """Whether running jobs may launch speculative backup attempts.

        Closed while any tenant is *starved* (jobs queued, none running):
        speculation races duplicate attempts for stragglers, and under
        starvation those slots belong to the waiting tenant.  Cooperative
        preemption — running attempts are never killed, the job merely
        stops spawning extras.
        """
        with self._lock:
            for key, queue in self._queues.items():
                if not any(i.handle.status() == JOB_QUEUED for i in queue):
                    continue
                if self._running.get(key, 0) == 0:
                    return False
            return True

    def _cancel(self, handle: JobHandle) -> bool:
        with self._lock:
            state = handle.status()
            if state == JOB_QUEUED:
                queue = self._queues.get(handle.tenant or "", [])
                queue[:] = [i for i in queue if i.handle is not handle]
                handle._cancel_event.set()
                handle._finish(None, None)
                self._idle.notify_all()
                return True
        if state == JOB_RUNNING:
            # Outside the lock: the worker thread finishing concurrently
            # takes handle._lock, and _finish reads the cancel flag.
            handle._cancel_event.set()
            return True
        return False

    # -- monitoring --------------------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        """Queue depth, running jobs and fair-share state per tenant."""
        with self._lock:
            tenants = sorted(
                set(self._queues) | set(self._running) | set(self._tenants)
            )
            per_tenant = {}
            for key in tenants:
                queue = self._queues.get(key, [])
                per_tenant[key or "<default>"] = {
                    "queued": sum(
                        1 for i in queue if i.handle.status() == JOB_QUEUED
                    ),
                    "running": self._running.get(key, 0),
                    "served": self._served.get(key, 0.0),
                    "running_tasks": self.slot_ledger.running(key or None),
                }
            return {
                "total_running": self._total_running,
                "tenants": per_tenant,
            }

    def join(self, timeout: float | None = None) -> bool:
        """Block until no job is queued or running; returns success."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._idle:
            while True:
                busy = self._total_running > 0 or any(
                    any(i.handle.status() == JOB_QUEUED for i in q)
                    for q in self._queues.values()
                )
                if not busy:
                    return True
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._idle.wait(remaining)


class JobServiceEndpoint:
    """Wire adapter exposing a :class:`JobService` over the RPC layer.

    :class:`~repro.net.cluster.NodeServer` duck-types nodes by attribute —
    ``submit_job`` marks a job service — and every method speaks plain
    ids/strings/dicts so remote stubs need no handle objects.
    """

    def __init__(self, service: JobService) -> None:
        self.service = service

    def submit_job(
        self,
        job: Job,
        tenant: str | None = None,
        priority: int | None = None,
    ) -> int:
        """Submit a job, returning its id (raises :class:`AdmissionError`)."""
        handle = self.service.submit(job, tenant=tenant, priority=priority)
        return handle.job_id

    def job_status(self, job_id: int) -> str:
        """Lifecycle state of one job."""
        return self.service.handle(job_id).status()

    def wait_job(self, job_id: int, timeout: float | None = None) -> dict[str, Any]:
        """Wait for a job and return its result summary."""
        return self.service.handle(job_id).wait(timeout).summary()

    def cancel_job(self, job_id: int) -> bool:
        """Cancel a job by id."""
        return self.service.handle(job_id).cancel()

    def job_ids(self) -> list[int]:
        """Every job id the service has accepted."""
        return self.service.job_ids()

    def service_stats(self) -> dict[str, Any]:
        """Per-tenant queue/running/fair-share statistics."""
        return self.service.stats()
