"""Deterministic, seedable failure injection for the MapReduce engine.

The paper's evaluation runs MapReduce on a large testbed where task
failures, tracker crashes and stragglers are the norm, not the exception.
This module makes those scenarios *expressible* so the fault-tolerance
subsystem (bounded retries, tracker blacklisting, speculative execution —
see :mod:`repro.mapreduce.jobtracker`) has something to recover from:

* :class:`FaultPlan` is a schedule of injected faults, built either from
  explicit specs (``fail_task``, ``delay_task``, ``kill_tracker``,
  ``fail_storage``) or from a seeded random rate
  (:meth:`FaultPlan.random`);
* every decision is a pure function of ``(seed, kind, index, attempt)``,
  so the same plan replayed over the same job injects exactly the same
  faults regardless of thread scheduling — the property the determinism
  tests pin down;
* random plans only ever hit *attempt 0* of a task, which guarantees that
  a bounded retry budget always converges: chaos runs still must produce
  byte-identical output.

The plan is threaded through :class:`~repro.mapreduce.tasktracker.TaskTracker`:
every task attempt calls :meth:`FaultPlan.on_task_start` before touching
any data, which may raise (injected task failure, dead tracker), sleep
(injected straggler), or fail a storage node mid-job (exercising the
replica-aware re-read paths of BSFS and HDFS).
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass
from typing import Iterable

__all__ = [
    "FaultInjectedError",
    "InjectedTaskFailure",
    "TrackerDeadError",
    "TaskFault",
    "TrackerFault",
    "StorageFault",
    "NetworkFault",
    "fail_task",
    "delay_task",
    "kill_tracker",
    "fail_storage",
    "kill_storage_host",
    "kill_node",
    "partition_peer",
    "drop_messages",
    "delay_messages",
    "FaultPlan",
]


class FaultInjectedError(RuntimeError):
    """Base class of every error raised by failure injection."""


class InjectedTaskFailure(FaultInjectedError):
    """An injected crash of one task attempt."""


class TrackerDeadError(FaultInjectedError):
    """Raised by every task attempt starting on a killed tracker."""


@dataclass(frozen=True, slots=True)
class TaskFault:
    """Fail or delay one task (``kind`` + ``index``) on selected attempts."""

    kind: str  # "map" | "reduce"
    index: int
    action: str  # "fail" | "delay"
    attempts: tuple[int, ...] = (0,)
    delay: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in ("map", "reduce"):
            raise ValueError(f"unknown task kind {self.kind!r}")
        if self.action not in ("fail", "delay"):
            raise ValueError(f"unknown fault action {self.action!r}")
        if self.action == "delay" and self.delay < 0:
            raise ValueError("delay must be non-negative")


@dataclass(frozen=True, slots=True)
class TrackerFault:
    """Kill one task tracker after it has *started* ``after_tasks`` attempts.

    Every attempt starting on the dead tracker raises
    :class:`TrackerDeadError`; the jobtracker reacts by blacklisting the
    host and re-executing elsewhere.
    """

    host: str
    after_tasks: int = 0


@dataclass(frozen=True, slots=True)
class NetworkFault:
    """A wire-level fault: kill, partition, drop or delay at the transport.

    Unlike the other specs (which fire inside the task runtime), network
    faults are applied to a :class:`~repro.net.faults.NetworkFaultPlan`
    shared by every transport of the deployment — build one from a plan
    with :meth:`FaultPlan.network_plan`.  ``peer`` names address nodes
    the way heartbeats do (``"provider-3"``); ``"*"`` is a wildcard for
    drop rules.
    """

    action: str  # "kill" | "partition" | "drop" | "delay"
    peer: str = "*"
    other: str = "*"  # partition's far end / drop's destination
    method: str | None = None
    count: int | None = 1  # drop: messages to lose (None = forever)
    seconds: float = 0.0  # delay: injected latency

    def __post_init__(self) -> None:
        if self.action not in ("kill", "partition", "drop", "delay"):
            raise ValueError(f"unknown network fault action {self.action!r}")
        if self.action in ("kill", "partition", "delay") and self.peer == "*":
            raise ValueError(f"{self.action} needs a concrete peer name")
        if self.action == "partition" and self.other == "*":
            raise ValueError("partition needs both endpoints")
        if self.action == "delay" and self.seconds < 0:
            raise ValueError("delay must be non-negative")


@dataclass(frozen=True, slots=True)
class StorageFault:
    """Fail one *storage* node once the job has started ``after_task_starts`` attempts.

    Storage faults exercise the replica-aware re-read paths: BSFS fails
    over to another page replica, HDFS to another block replica.  On
    ``file://`` there is no storage node to kill, so the fault is a no-op.
    """

    host: str
    after_task_starts: int = 0


def fail_task(kind: str, index: int, *, attempts: Iterable[int] = (0,)) -> TaskFault:
    """Spec: task ``index`` of ``kind`` crashes on the given attempt numbers."""
    return TaskFault(kind=kind, index=index, action="fail", attempts=tuple(attempts))


def delay_task(
    kind: str,
    index: int,
    seconds: float,
    *,
    attempts: Iterable[int] = (0,),
) -> TaskFault:
    """Spec: task ``index`` of ``kind`` is a straggler, sleeping ``seconds``."""
    return TaskFault(
        kind=kind,
        index=index,
        action="delay",
        attempts=tuple(attempts),
        delay=seconds,
    )


def kill_tracker(host: str, *, after_tasks: int = 0) -> TrackerFault:
    """Spec: tracker ``host`` dies after starting ``after_tasks`` attempts."""
    return TrackerFault(host=host, after_tasks=after_tasks)


def fail_storage(host: str, *, after_task_starts: int = 0) -> StorageFault:
    """Spec: storage node ``host`` fails once the job started N attempts."""
    return StorageFault(host=host, after_task_starts=after_task_starts)


def kill_node(peer: str) -> NetworkFault:
    """Spec: the process of ``peer`` is gone — every message to or from it
    fails fast (the loopback equivalent of SIGKILL on a node process)."""
    return NetworkFault(action="kill", peer=peer)


def partition_peer(a: str, b: str) -> NetworkFault:
    """Spec: ``a`` and ``b`` cannot reach each other; their messages time out."""
    return NetworkFault(action="partition", peer=a, other=b)


def drop_messages(
    *,
    src: str = "*",
    dst: str = "*",
    count: int | None = 1,
    method: str | None = None,
) -> NetworkFault:
    """Spec: lose the next ``count`` messages from ``src`` to ``dst``
    (``method`` narrows the rule, ``count=None`` drops forever)."""
    return NetworkFault(action="drop", peer=src, other=dst, count=count, method=method)


def delay_messages(peer: str, seconds: float) -> NetworkFault:
    """Spec: every message touching ``peer`` gains ``seconds`` of latency."""
    return NetworkFault(action="delay", peer=peer, seconds=seconds)


def kill_storage_host(fs, host: str) -> bool:
    """Fail the storage node named ``host`` on ``fs`` (BSFS provider or
    HDFS datanode); returns whether a node was found and killed.

    ``file://`` has no storage daemons, so the call is a no-op there.
    """
    blobseer = getattr(fs, "blobseer", None)
    if blobseer is not None:
        for provider in blobseer.provider_manager.providers:
            if provider.host == host:
                provider.fail()
                return True
    namenode = getattr(fs, "namenode", None)
    if namenode is not None:
        for datanode in namenode.datanodes:
            if datanode.host == host:
                datanode.fail()
                return True
    return False


#: Salt strings keeping the fail and delay decision streams independent.
_FAIL_SALT = "fail"
_DELAY_SALT = "delay"


def _fraction(seed: int, salt: str, kind: str, index: int, attempt: int) -> float:
    """Deterministic uniform fraction in [0, 1) for one decision point."""
    token = f"{seed}:{salt}:{kind}:{index}:{attempt}".encode()
    digest = hashlib.blake2b(token, digest_size=8).digest()
    return int.from_bytes(digest, "big") / float(1 << 64)


class FaultPlan:
    """A deterministic schedule of injected faults for one job run.

    Decisions (:meth:`decide`) are pure; only the *trigger* state (how many
    attempts each tracker started, which storage faults already fired) is
    mutable, guarded by a lock because task attempts start concurrently.

    A plan instance is meant to drive a single job run: tracker deaths and
    storage failures do not reset between runs.
    """

    def __init__(
        self,
        faults: Iterable[TaskFault | TrackerFault | StorageFault] = (),
        *,
        seed: int = 0,
        failure_rate: float = 0.0,
        delay_rate: float = 0.0,
        delay: float = 0.05,
    ) -> None:
        if not 0.0 <= failure_rate <= 1.0:
            raise ValueError("failure_rate must be within [0, 1]")
        if not 0.0 <= delay_rate <= 1.0:
            raise ValueError("delay_rate must be within [0, 1]")
        if delay < 0:
            raise ValueError("delay must be non-negative")
        self.seed = seed
        self.failure_rate = failure_rate
        self.delay_rate = delay_rate
        self.delay = delay
        self.task_faults: list[TaskFault] = []
        self.tracker_faults: list[TrackerFault] = []
        self.storage_faults: list[StorageFault] = []
        self.network_faults: list[NetworkFault] = []
        for fault in faults:
            if isinstance(fault, TaskFault):
                self.task_faults.append(fault)
            elif isinstance(fault, TrackerFault):
                self.tracker_faults.append(fault)
            elif isinstance(fault, StorageFault):
                self.storage_faults.append(fault)
            elif isinstance(fault, NetworkFault):
                self.network_faults.append(fault)
            else:
                raise TypeError(f"unknown fault spec {fault!r}")
        self._lock = threading.Lock()
        self._task_starts = 0
        self._tracker_starts: dict[str, int] = {}
        self._dead_trackers: set[str] = set()
        self._fired_storage: set[int] = set()
        self.injected_failures = 0
        self.injected_delays = 0

    @classmethod
    def random(
        cls,
        *,
        seed: int,
        failure_rate: float = 0.1,
        delay_rate: float = 0.0,
        delay: float = 0.05,
    ) -> "FaultPlan":
        """A seeded random plan: each task's *first* attempt fails with
        probability ``failure_rate`` and straggles with ``delay_rate``.

        Only attempt 0 is ever hit, so any ``max_task_attempts >= 2``
        budget recovers every injected fault — the chaos-test contract.
        """
        return cls(
            seed=seed,
            failure_rate=failure_rate,
            delay_rate=delay_rate,
            delay=delay,
        )

    # -- pure decision function --------------------------------------------------------
    def decide(self, kind: str, index: int, attempt: int) -> tuple[str | None, float]:
        """Return ``(action, delay_seconds)`` for one attempt — pure and
        deterministic, the function the determinism tests replay."""
        for fault in self.task_faults:
            if fault.kind == kind and fault.index == index and attempt in fault.attempts:
                return fault.action, fault.delay
        if attempt == 0 and self.failure_rate > 0.0:
            if _fraction(self.seed, _FAIL_SALT, kind, index, attempt) < self.failure_rate:
                return "fail", 0.0
        if attempt == 0 and self.delay_rate > 0.0:
            if _fraction(self.seed, _DELAY_SALT, kind, index, attempt) < self.delay_rate:
                return "delay", self.delay
        return None, 0.0

    def schedule(self, kind: str, count: int, *, attempts: int = 1) -> dict:
        """Snapshot of :meth:`decide` over a task grid (determinism tests)."""
        return {
            (kind, index, attempt): self.decide(kind, index, attempt)
            for index in range(count)
            for attempt in range(attempts)
        }

    # -- network faults ----------------------------------------------------------------
    def network_plan(self, *, sleep=time.sleep):
        """Materialise the plan's :class:`NetworkFault` specs into a
        :class:`~repro.net.faults.NetworkFaultPlan` ready to hand to the
        deployment's transports.  Each call builds a fresh plan (wire
        faults are stateful: drop rules decrement, kills are revivable).
        """
        from ..net.faults import NetworkFaultPlan

        plan = NetworkFaultPlan(sleep=sleep)
        for fault in self.network_faults:
            if fault.action == "kill":
                plan.kill(fault.peer)
            elif fault.action == "partition":
                plan.partition(fault.peer, fault.other)
            elif fault.action == "drop":
                plan.drop(
                    src=fault.peer,
                    dst=fault.other,
                    count=fault.count,
                    method=fault.method,
                )
            elif fault.action == "delay":
                plan.delay(fault.peer, fault.seconds)
        return plan

    # -- runtime hooks -----------------------------------------------------------------
    def tracker_is_dead(self, host: str) -> bool:
        """Whether ``host`` was already killed by a tracker fault."""
        with self._lock:
            return host in self._dead_trackers

    def on_task_start(
        self,
        *,
        kind: str,
        index: int,
        attempt: int,
        tracker_host: str,
        fs=None,
    ) -> None:
        """Injection point called by every task attempt before it reads data.

        May raise :class:`TrackerDeadError` (tracker killed),
        :class:`InjectedTaskFailure` (task crash), sleep (straggler), and
        fire pending storage faults against ``fs``.
        """
        pending_storage: list[StorageFault] = []
        with self._lock:
            self._task_starts += 1
            started_total = self._task_starts
            started_here = self._tracker_starts.get(tracker_host, 0) + 1
            self._tracker_starts[tracker_host] = started_here
            for fault in self.tracker_faults:
                if fault.host == tracker_host and started_here > fault.after_tasks:
                    self._dead_trackers.add(tracker_host)
            for position, fault in enumerate(self.storage_faults):
                if position in self._fired_storage:
                    continue
                if started_total > fault.after_task_starts:
                    self._fired_storage.add(position)
                    pending_storage.append(fault)
            tracker_dead = tracker_host in self._dead_trackers
        for fault in pending_storage:
            if fs is not None:
                kill_storage_host(fs, fault.host)
        if tracker_dead:
            raise TrackerDeadError(f"tracker {tracker_host!r} was killed by the fault plan")
        action, delay = self.decide(kind, index, attempt)
        if action == "fail":
            with self._lock:
                self.injected_failures += 1
            raise InjectedTaskFailure(f"injected failure of {kind}-{index:05d} attempt {attempt}")
        if action == "delay" and delay > 0:
            with self._lock:
                self.injected_delays += 1
            time.sleep(delay)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultPlan(task={len(self.task_faults)}, "
            f"tracker={len(self.tracker_faults)}, "
            f"storage={len(self.storage_faults)}, seed={self.seed}, "
            f"failure_rate={self.failure_rate}, delay_rate={self.delay_rate})"
        )
