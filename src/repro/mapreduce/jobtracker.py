"""Job tracker: the master orchestrating a MapReduce job end to end.

"A MapReduce job is split into a set of tasks, which are executed by the
tasktrackers, as assigned by the jobtracker.  The input data is also split
into chunks of equal size, that are stored in a distributed file system
across the cluster.  First, the map tasks are run, each processing a chunk
of the input file ...  After all the maps have finished, the tasktrackers
execute the reduce function on the map outputs."

:class:`JobTracker.run` follows exactly that structure: compute splits,
schedule map tasks (locality-aware), execute them (optionally in parallel
threads, one slot per tracker slot), shuffle, execute reduce tasks, and
return a :class:`JobResult` with timings, counters and locality statistics.
The engine is storage-agnostic: pass a BSFS or an HDFS instance.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Any

from ..fs.interface import FileSystem
from ..fs.registry import get_filesystem
from .job import Counters, Job
from .scheduler import LocalityAwareScheduler, LocalityStats
from .shuffle import TextOutputFormat, merge_map_outputs
from .splitter import SyntheticInputFormat, TextInputFormat
from .tasktracker import TaskResult, TaskTracker

__all__ = ["JobResult", "JobTracker", "make_cluster"]


@dataclass
class JobResult:
    """Outcome of one job execution."""

    job_name: str
    succeeded: bool
    elapsed: float
    map_tasks: int
    reduce_tasks: int
    counters: Counters
    locality: LocalityStats
    task_results: list[TaskResult] = field(default_factory=list)
    output_paths: list[str] = field(default_factory=list)

    def counter(self, name: str) -> int:
        """Shortcut for ``result.counters.get(name)``."""
        return self.counters.get(name)

    def summary(self) -> dict[str, Any]:
        """JSON-friendly summary used by reports and benchmarks."""
        return {
            "job": self.job_name,
            "succeeded": self.succeeded,
            "elapsed_seconds": self.elapsed,
            "map_tasks": self.map_tasks,
            "reduce_tasks": self.reduce_tasks,
            "locality": self.locality.as_dict(),
            "counters": self.counters.as_dict(),
        }


class JobTracker:
    """Master node of the MapReduce engine."""

    def __init__(
        self,
        fs: FileSystem | str,
        trackers: list[TaskTracker],
        *,
        parallel: bool = True,
    ) -> None:
        """Create a job tracker.

        Parameters
        ----------
        fs:
            File system used for job input and output: a concrete
            instance (BSFS, HDFS, LocalFS) or a URI string such as
            ``"bsfs://demo"`` resolved through the scheme registry.
        trackers:
            Worker task trackers (typically one per storage node so
            locality is possible).
        parallel:
            Execute tasks concurrently with one thread per tracker slot
            (default).  Sequential execution is available for debugging
            and deterministic tests.
        """
        if not trackers:
            raise ValueError("a job tracker needs at least one task tracker")
        if isinstance(fs, str):
            fs = get_filesystem(fs)
        self.fs = fs
        self.trackers = list(trackers)
        self.parallel = parallel

    # -- public API -----------------------------------------------------------------
    def run(self, job: Job) -> JobResult:
        """Execute ``job`` to completion and return its result.

        Input paths and the output directory of the job configuration may
        be URIs; they are validated against this tracker's file system and
        reduced to plain paths before splitting.
        """
        resolved_conf = job.conf.resolve_for(self.fs)
        if resolved_conf is not job.conf:
            job = replace(job, conf=resolved_conf)
        started = time.perf_counter()
        counters = Counters()
        scheduler = LocalityAwareScheduler(self.trackers)
        input_format = job.input_format or (
            TextInputFormat() if job.conf.input_paths else SyntheticInputFormat()
        )
        output_format = job.output_format or TextOutputFormat()
        splits = input_format.get_splits(self.fs, job.conf)
        assignments = scheduler.assign(splits)

        # ----------------------------------------------------------------- map phase
        map_results: list[TaskResult] = []
        num_partitions = job.conf.num_reduce_tasks

        def _run_map(assignment) -> TaskResult:
            return assignment.tracker.run_map_task(
                job,
                self.fs,
                assignment.split,
                num_partitions=num_partitions,
                reader_factory=input_format.create_reader,
                counters=counters,
                locality=assignment.locality,
                output_format=output_format,
            )

        if self.parallel and len(assignments) > 1:
            max_workers = max(sum(t.slots for t in self.trackers), 1)
            with ThreadPoolExecutor(max_workers=max_workers) as pool:
                map_results = list(pool.map(_run_map, assignments))
        else:
            map_results = [_run_map(a) for a in assignments]

        task_results = list(map_results)
        output_paths = [r.output_path for r in map_results if r.output_path]

        # -------------------------------------------------------------- reduce phase
        reduce_results: list[TaskResult] = []
        if not job.conf.is_map_only:
            map_outputs = [r.map_output for r in map_results if r.map_output is not None]

            def _run_reduce(partition_index: int) -> TaskResult:
                pairs = merge_map_outputs(map_outputs, partition_index)
                counters.increment("reduce_shuffle_records", len(pairs))
                tracker = scheduler.pick_tracker_round_robin()
                return tracker.run_reduce_task(
                    job,
                    self.fs,
                    partition_index,
                    pairs,
                    counters=counters,
                    output_format=output_format,
                )

            partitions = range(job.conf.num_reduce_tasks)
            if self.parallel and job.conf.num_reduce_tasks > 1:
                max_workers = max(sum(t.slots for t in self.trackers), 1)
                with ThreadPoolExecutor(max_workers=max_workers) as pool:
                    reduce_results = list(pool.map(_run_reduce, partitions))
            else:
                reduce_results = [_run_reduce(i) for i in partitions]
            task_results.extend(reduce_results)
            output_paths.extend(r.output_path for r in reduce_results if r.output_path)

        elapsed = time.perf_counter() - started
        return JobResult(
            job_name=job.name,
            succeeded=True,
            elapsed=elapsed,
            map_tasks=len(map_results),
            reduce_tasks=len(reduce_results),
            counters=counters,
            locality=scheduler.stats,
            task_results=task_results,
            output_paths=sorted(set(output_paths)),
        )


def make_cluster(
    fs: FileSystem | str,
    *,
    hosts: list[str] | None = None,
    num_trackers: int = 4,
    slots_per_tracker: int = 2,
    parallel: bool = True,
) -> JobTracker:
    """Convenience factory building a jobtracker with one tracker per host.

    ``fs`` may be a file-system instance or a URI string (``"hdfs://demo"``)
    resolved through the scheme registry, making the storage backend of a
    whole MapReduce cluster a one-string choice.  When ``hosts`` is omitted
    the tracker hosts are derived from the file system's storage nodes
    (BlobSeer providers for BSFS, datanodes for HDFS) so that data-local
    scheduling is possible, mirroring the paper's co-deployment of Hadoop
    tasktrackers and storage daemons.
    """
    if isinstance(fs, str):
        fs = get_filesystem(fs)
    if hosts is None:
        hosts = []
        blobseer = getattr(fs, "blobseer", None)
        if blobseer is not None:
            hosts = [p.host for p in blobseer.provider_manager.providers]
        namenode = getattr(fs, "namenode", None)
        if namenode is not None and not hosts:
            hosts = [d.host for d in namenode.datanodes]
        if not hosts:
            hosts = [f"tracker-{i}" for i in range(num_trackers)]
    trackers = [TaskTracker(host, slots=slots_per_tracker) for host in hosts]
    return JobTracker(fs, trackers, parallel=parallel)
