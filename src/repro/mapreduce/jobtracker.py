"""Job tracker: the master orchestrating a MapReduce job end to end.

"A MapReduce job is split into a set of tasks, which are executed by the
tasktrackers, as assigned by the jobtracker.  The input data is also split
into chunks of equal size, that are stored in a distributed file system
across the cluster.  First, the map tasks are run, each processing a chunk
of the input file ...  After all the maps have finished, the tasktrackers
execute the reduce function on the map outputs."

:class:`JobTracker.run` follows exactly that structure: compute splits,
schedule map tasks (locality-aware), execute them (optionally in parallel
threads, one slot per tracker slot), shuffle, execute reduce tasks, and
return a :class:`JobResult` with timings, counters and locality statistics.
The engine is storage-agnostic: pass a BSFS or an HDFS instance.

Two shuffle paths exist.  The default keeps intermediate pairs in memory
and runs reduce after a global map barrier.  With
``JobConf(spill_to_fs=True)`` the shuffle is routed through the job's file
system instead: maps spill sorted segment files, reduce tasks start
*alongside* the map phase and fetch segments as individual maps complete
(overlapped shuffle), then merge them externally — so shuffle I/O exercises
the storage backend under measurement and a partition larger than memory
still reduces.  ``JobConf(single_output_file=True)`` additionally makes all
reducers write one shared output file via ``concurrent_append`` — the
paper's §V scenario — on backends that support it.

Fault tolerance.  Every task is executed as a sequence of *attempts*
(bounded by ``JobConf.max_task_attempts``): a failed attempt is re-executed
on a different tracker, hosts accumulating failures are blacklisted for the
job (:class:`~repro.mapreduce.scheduler.LocalityAwareScheduler`), and with
``JobConf(speculative_execution=True)`` stragglers near the end of a phase
get a speculative backup attempt — the first completion wins and the loser
is discarded, mirroring Hadoop semantics.  Exactly one attempt per task
ever commits output: the shuffle service publishes only the winning
attempt's (attempt-id-suffixed) segments, and reduce/map-only writes are
gated by an output-committer handshake.  Failure *injection* for all of
this lives in :mod:`repro.mapreduce.faults`.
"""

from __future__ import annotations

import threading
import time
import traceback
import warnings
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from functools import partial
from typing import Any, Callable, Iterator

from ..core.transfer import TransferEngine
from ..fs import path as fspath
from ..fs.interface import FileSystem
from ..fs.quota import tenant_scope
from ..fs.registry import get_filesystem
from ..net.liveness import HeartbeatPump, LivenessMonitor, LivenessRegistry
from .faults import FaultPlan, TrackerDeadError
from .job import Counters, Job
from .scheduler import (
    LocalityAwareScheduler,
    LocalityStats,
    NoHealthyTrackerError,
    SlotLedger,
)
from .shuffle import SingleFileOutputFormat, TextOutputFormat, merge_map_outputs
from .shuffle_service import ShuffleAbortedError, ShuffleService
from .splitter import SyntheticInputFormat, TextInputFormat
from .tasktracker import TaskResult, TaskTracker

#: Job-conf property keys the :class:`~repro.mapreduce.service.JobService`
#: uses to thread runtime controls into an execution without widening the
#: ``JobConf`` schema (they are implementation detail, not user API).
CANCEL_EVENT_PROPERTY = "__cancel_event"
SPECULATION_GATE_PROPERTY = "__speculation_gate"
INFLIGHT_BUDGET_PROPERTY = "__inflight_budget"
PROGRESS_PROPERTY = "__progress"

__all__ = [
    "JobResult",
    "JobTracker",
    "make_cluster",
    "CANCEL_EVENT_PROPERTY",
    "SPECULATION_GATE_PROPERTY",
    "INFLIGHT_BUDGET_PROPERTY",
    "PROGRESS_PROPERTY",
]

#: How often the phase orchestrator wakes to look for stragglers.
_SPECULATION_POLL_SECONDS = 0.02
#: An attempt younger than this is never considered a straggler, however
#: fast the rest of the phase was (guards against sub-millisecond medians).
_MIN_STRAGGLER_RUNTIME = 0.05


@dataclass
class JobResult:
    """Outcome of one job execution."""

    job_name: str
    succeeded: bool
    elapsed: float
    map_tasks: int
    reduce_tasks: int
    counters: Counters
    locality: LocalityStats
    #: Every executed task *attempt*, including failed, retried, speculative
    #: and discarded (race-losing) ones.
    task_results: list[TaskResult] = field(default_factory=list)
    output_paths: list[str] = field(default_factory=list)
    #: Spill-based shuffle statistics (``None`` for the in-memory shuffle).
    shuffle: dict | None = None
    #: Tracker hosts blacklisted during the run (flaky/killed trackers).
    blacklisted_hosts: list[str] = field(default_factory=list)

    def counter(self, name: str) -> int:
        """Shortcut for ``result.counters.get(name)``."""
        return self.counters.get(name)

    @property
    def failed_tasks(self) -> list[TaskResult]:
        """The attempts that raised during this run (empty on success)."""
        return [r for r in self.task_results if not r.succeeded]

    @property
    def winning_tasks(self) -> list[TaskResult]:
        """The attempts whose output was committed (one per completed task)."""
        return [r for r in self.task_results if r.succeeded and not r.discarded]

    @property
    def retries(self) -> int:
        """Re-executions triggered by task failures (speculation excluded)."""
        return sum(
            1 for r in self.task_results if r.attempt > 0 and not r.speculative
        )

    @property
    def speculative_attempts(self) -> int:
        """Backup attempts launched for stragglers."""
        return sum(1 for r in self.task_results if r.speculative)

    @property
    def speculative_wins(self) -> int:
        """Speculative attempts that beat the original and committed output."""
        return sum(
            1
            for r in self.task_results
            if r.speculative and r.succeeded and not r.discarded
        )

    def summary(self) -> dict[str, Any]:
        """JSON-friendly summary used by reports and benchmarks.

        Beyond the task counts it reports the *recovery overhead*: total
        attempts executed, retries, and speculative launches/wins — the
        numbers benchmark tables need to show what fault tolerance cost.
        """
        summary = {
            "job": self.job_name,
            "succeeded": self.succeeded,
            "elapsed_seconds": self.elapsed,
            "map_tasks": self.map_tasks,
            "reduce_tasks": self.reduce_tasks,
            "task_attempts": len(self.task_results),
            "retries": self.retries,
            "locality": self.locality.as_dict(),
            "counters": self.counters.as_dict(),
        }
        if self.speculative_attempts:
            summary["speculative"] = {
                "launched": self.speculative_attempts,
                "wins": self.speculative_wins,
            }
        if self.blacklisted_hosts:
            summary["blacklisted_hosts"] = sorted(self.blacklisted_hosts)
        if self.shuffle is not None:
            summary["shuffle"] = self.shuffle
        failed = self.failed_tasks
        if failed:
            summary["failed_tasks"] = sorted({r.task_id for r in failed})
        return summary


def _failed_result(
    task_id: str,
    tracker_host: str,
    kind: str,
    exc: BaseException,
    *,
    locality: str = "n/a",
    attempt: int = 0,
    speculative: bool = False,
) -> TaskResult:
    """Record one raising task attempt as a failed :class:`TaskResult`."""
    error = "".join(
        traceback.format_exception_only(type(exc), exc)
    ).strip()
    return TaskResult(
        task_id=task_id,
        tracker_host=tracker_host,
        kind=kind,
        duration=0.0,
        records_in=0,
        records_out=0,
        locality=locality,
        succeeded=False,
        error=error,
        attempt=attempt,
        speculative=speculative,
    )


def _counted(
    pairs: Iterator[tuple[Any, Any]], counters: Counters
) -> Iterator[tuple[Any, Any]]:
    """Pass pairs through, folding their count into ``reduce_shuffle_records``."""
    count = 0
    try:
        for pair in pairs:
            count += 1
            yield pair
    finally:
        counters.increment("reduce_shuffle_records", count)


class _TaskEntry:
    """Mutable per-task attempt bookkeeping (guarded by the phase lock)."""

    __slots__ = (
        "index",
        "attempts_started",
        "running",
        "running_hosts",
        "banned_hosts",
        "winner",
        "permanent_failure",
        "done",
        "committed",
        "commit_attempt",
        "speculated",
        "last_start",
    )

    def __init__(self, index: int) -> None:
        self.index = index
        self.attempts_started = 0
        self.running = 0
        self.running_hosts: list[str] = []
        self.banned_hosts: set[str] = set()
        self.winner: TaskResult | None = None
        self.permanent_failure: TaskResult | None = None
        self.done = False
        self.committed = False
        self.commit_attempt: int | None = None
        self.speculated = False
        self.last_start = 0.0


class _RetryingPhase:
    """Executes one phase's tasks as bounded, speculating attempt sequences.

    The phase owns the full fault-tolerance protocol for its tasks:

    * a failed attempt is retried on a different tracker (``pick_tracker``
      receives the set of hosts that already failed this task) until
      ``max_attempts`` executions are spent or a non-retryable error hits;
    * every failure is reported to ``on_attempt_failed`` (feeding the
      scheduler blacklist; a :class:`TrackerDeadError` is *fatal* and
      blacklists the host immediately);
    * near the end of the phase, stragglers get one speculative backup
      attempt; the first attempt to *commit* (:meth:`try_commit`) wins and
      every other attempt of the task is discarded;
    * a task with no surviving attempt triggers ``on_permanent_failure``
      (used to abort the shuffle so overlapped reducers do not wait
      forever) and fails the phase.

    The ``execute`` callable runs one attempt and returns ``(result,
    retryable, fatal_host)`` — ``fatal_host`` flags a dead-tracker failure
    that must blacklist the host immediately.  It must only raise
    ``BaseException``s (SystemExit and friends), which the phase records
    and re-raises from :meth:`finish`.
    """

    def __init__(
        self,
        *,
        total: int,
        max_attempts: int,
        execute: Callable[
            [int, int, TaskTracker, bool], tuple[TaskResult, bool, bool]
        ],
        pick_tracker: Callable[[int, int, set[str]], TaskTracker],
        speculative: bool = False,
        slow_task_threshold: float = 2.0,
        speculative_fraction: float = 0.5,
        on_winner: Callable[[TaskResult], None] | None = None,
        on_attempt_failed: Callable[[str, bool], None] | None = None,
        on_permanent_failure: Callable[[int, TaskResult], None] | None = None,
        make_failure: Callable[[int, int, BaseException], TaskResult] | None = None,
        speculation_gate: Callable[[], bool] | None = None,
    ) -> None:
        self._max_attempts = max_attempts
        self._execute = execute
        self._pick_tracker = pick_tracker
        self._speculative = speculative
        self._slow_task_threshold = slow_task_threshold
        self._speculative_fraction = speculative_fraction
        self._on_winner = on_winner
        self._on_attempt_failed = on_attempt_failed
        self._on_permanent_failure = on_permanent_failure
        self._make_failure = make_failure
        self._speculation_gate = speculation_gate
        self._cond = threading.Condition()
        self._entries = [_TaskEntry(i) for i in range(total)]
        self._results: list[TaskResult] = []
        self._pool: ThreadPoolExecutor | None = None
        self._fatal: BaseException | None = None

    # -- results -----------------------------------------------------------------------
    @property
    def results(self) -> list[TaskResult]:
        """Every attempt result recorded so far (read after the pool closed)."""
        with self._cond:
            return list(self._results)

    @property
    def succeeded(self) -> bool:
        """Whether every task of the phase committed a winning attempt."""
        with self._cond:
            return all(e.winner is not None for e in self._entries)

    def winner_map_outputs(self) -> list[list[list[tuple[Any, Any]]]]:
        """The winning attempts' in-memory map outputs, in task order."""
        with self._cond:
            return [
                e.winner.map_output
                for e in self._entries
                if e.winner is not None and e.winner.map_output is not None
            ]

    def try_commit(self, index: int, attempt: int) -> bool:
        """Output-committer handshake: may attempt ``attempt`` of task
        ``index`` commit its output?  Exactly one attempt per task wins."""
        with self._cond:
            entry = self._entries[index]
            if entry.committed:
                return False
            entry.committed = True
            entry.commit_attempt = attempt
            return True

    # -- parallel orchestration --------------------------------------------------------
    def _fail_no_tracker(
        self, entry: _TaskEntry, attempt: int, exc: NoHealthyTrackerError
    ) -> None:
        """Record a permanent failure for a task that cannot be placed.

        Every tracker host is dead/blacklisted, so the attempt fails without
        ever launching; re-raised instead when no failure factory was given.
        """
        if self._make_failure is None:
            raise exc
        result = self._make_failure(entry.index, attempt, exc)
        permanent: TaskResult | None = None
        with self._cond:
            self._results.append(result)
            if entry.winner is None and not entry.done and entry.running == 0:
                entry.permanent_failure = result
                entry.done = True
                permanent = result
            self._cond.notify_all()
        if permanent is not None and self._on_permanent_failure is not None:
            self._on_permanent_failure(entry.index, permanent)

    def start(self, pool: ThreadPoolExecutor) -> None:
        """Submit attempt 0 of every task to ``pool`` and return immediately."""
        self._pool = pool
        with self._cond:
            for entry in self._entries:
                try:
                    tracker = self._pick_tracker(entry.index, 0, set())
                except NoHealthyTrackerError as exc:
                    self._fail_no_tracker(entry, 0, exc)
                    continue
                self._launch(entry, tracker, speculative=False)

    def finish(self) -> list[TaskResult]:
        """Block until every task is decided, speculating on stragglers.

        Race-losing attempts may still be running when this returns; their
        results land in :attr:`results` once the worker pool is joined.
        """
        # Only a speculating phase needs timed wakeups to probe for
        # stragglers; otherwise every state change notifies the condition.
        timeout = _SPECULATION_POLL_SECONDS if self._speculative else None
        with self._cond:
            while self._fatal is None and not all(e.done for e in self._entries):
                self._cond.wait(timeout=timeout)
                self._maybe_speculate()
        if self._fatal is not None:
            raise self._fatal
        return self.results

    def run(self, pool: ThreadPoolExecutor) -> list[TaskResult]:
        """``start`` + ``finish`` for phases without an overlap window."""
        self.start(pool)
        return self.finish()

    def _launch(
        self, entry: _TaskEntry, tracker: TaskTracker, *, speculative: bool
    ) -> None:
        """Submit one attempt of ``entry`` (phase lock held)."""
        attempt = entry.attempts_started
        entry.attempts_started += 1
        entry.running += 1
        entry.running_hosts.append(tracker.host)
        entry.last_start = time.perf_counter()
        assert self._pool is not None
        try:
            self._pool.submit(self._attempt, entry, attempt, tracker, speculative)
        except RuntimeError:
            # The pool is shutting down (fatal error elsewhere): undo the
            # launch bookkeeping so the entry does not look in-flight.
            entry.attempts_started -= 1
            entry.running -= 1
            entry.running_hosts.remove(tracker.host)

    def _attempt(
        self,
        entry: _TaskEntry,
        attempt: int,
        tracker: TaskTracker,
        speculative: bool,
    ) -> None:
        try:
            result, retryable, fatal_host = self._execute(
                entry.index, attempt, tracker, speculative
            )
        except BaseException as exc:
            # ``execute`` traps Exception; anything escaping is a
            # SystemExit-class event that must fail the whole phase instead
            # of vanishing inside the worker pool.
            with self._cond:
                if self._fatal is None:
                    self._fatal = exc
                entry.running -= 1
                self._cond.notify_all()
            raise
        self._record(entry, tracker, result, retryable, fatal_host)

    def _record(
        self,
        entry: _TaskEntry,
        tracker: TaskTracker,
        result: TaskResult,
        retryable: bool,
        fatal_host: bool,
    ) -> None:
        """Fold one finished attempt into the entry's state machine."""
        relaunch = False
        permanent: TaskResult | None = None
        host_failed = False
        won = False
        with self._cond:
            entry.running -= 1
            if tracker.host in entry.running_hosts:
                entry.running_hosts.remove(tracker.host)
            if result.succeeded and not result.discarded:
                if entry.winner is None:
                    entry.winner = result
                    entry.committed = True
                    entry.done = True
                    won = True
                else:
                    # An in-memory race loser (speculation): another attempt
                    # already won, so this one's output is discarded.
                    result = replace(result, discarded=True)
            elif result.succeeded:
                # A committed-side race loser: its write was skipped.
                pass
            else:
                entry.banned_hosts.add(result.tracker_host)
                host_failed = True
                if entry.commit_attempt == result.attempt:
                    # The failed attempt died *after* claiming the commit
                    # (e.g. mid-write); release it so a retry can commit.
                    entry.committed = False
                    entry.commit_attempt = None
                if (
                    entry.winner is None
                    and retryable
                    and entry.attempts_started < self._max_attempts
                    and self._fatal is None
                ):
                    relaunch = True
                elif entry.winner is None and entry.running == 0 and not entry.done:
                    entry.permanent_failure = result
                    entry.done = True
                    permanent = result
            self._results.append(result)
            self._cond.notify_all()
        if won and self._on_winner is not None:
            self._on_winner(result)
        if host_failed and self._on_attempt_failed is not None:
            self._on_attempt_failed(result.tracker_host, fatal_host)
        if relaunch:
            with self._cond:
                banned = set(entry.banned_hosts)
                next_attempt = entry.attempts_started
            try:
                tracker = self._pick_tracker(entry.index, next_attempt, banned)
            except NoHealthyTrackerError as exc:
                self._fail_no_tracker(entry, next_attempt, exc)
                if entry.permanent_failure is not None:
                    return
                tracker = None
            if tracker is None:
                return
            with self._cond:
                if entry.winner is None and self._fatal is None:
                    self._launch(entry, tracker, speculative=False)
                elif entry.running == 0 and entry.winner is None and not entry.done:
                    entry.permanent_failure = result
                    entry.done = True
                    permanent = result
                    self._cond.notify_all()
        if permanent is not None and self._on_permanent_failure is not None:
            self._on_permanent_failure(entry.index, permanent)

    def _maybe_speculate(self) -> None:
        """Launch backup attempts for stragglers (phase lock held).

        Hadoop semantics: only near the end of the phase (at most
        ``speculative_fraction`` of its tasks still incomplete), only for
        attempts running longer than ``slow_task_threshold ×`` the median
        successful attempt duration, and at most one backup per task.
        """
        if not self._speculative or not self._entries or self._pool is None:
            return
        if self._speculation_gate is not None and not self._speculation_gate():
            # Cooperative preemption: the service closes the gate while a
            # starved tenant waits, so backup attempts stop competing for
            # slots the waiting tenant needs.
            return
        total = len(self._entries)
        remaining = sum(1 for e in self._entries if not e.done)
        if remaining == 0 or remaining / total > self._speculative_fraction:
            return
        durations = sorted(
            e.winner.duration for e in self._entries if e.winner is not None
        )
        if not durations:
            return
        median = durations[len(durations) // 2]
        straggler_after = max(
            self._slow_task_threshold * median, _MIN_STRAGGLER_RUNTIME
        )
        now = time.perf_counter()
        for entry in self._entries:
            if (
                entry.done
                or entry.speculated
                or entry.running == 0
                or entry.attempts_started >= self._max_attempts
                or now - entry.last_start < straggler_after
            ):
                continue
            exclude = entry.banned_hosts | set(entry.running_hosts)
            try:
                tracker = self._pick_tracker(
                    entry.index, entry.attempts_started, exclude
                )
            except NoHealthyTrackerError:
                continue  # no backup possible; the primary may still finish
            entry.speculated = True
            self._launch(entry, tracker, speculative=True)

    # -- serial orchestration ----------------------------------------------------------
    def run_serial(self) -> list[TaskResult]:
        """Sequential execution with retries (no speculation — there is no
        concurrency for a backup attempt to exploit)."""
        for entry in self._entries:
            while not entry.done:
                attempt = entry.attempts_started
                entry.attempts_started += 1
                try:
                    tracker = self._pick_tracker(
                        entry.index, attempt, set(entry.banned_hosts)
                    )
                except NoHealthyTrackerError as exc:
                    self._fail_no_tracker(entry, attempt, exc)
                    if not entry.done:
                        entry.done = True
                    break
                entry.last_start = time.perf_counter()
                result, retryable, fatal_host = self._execute(
                    entry.index, attempt, tracker, False
                )
                self._results.append(result)
                if result.succeeded and not result.discarded:
                    entry.winner = result
                    entry.committed = True
                    entry.done = True
                    if self._on_winner is not None:
                        self._on_winner(result)
                    break
                if result.succeeded:
                    entry.done = True
                    break
                entry.banned_hosts.add(result.tracker_host)
                if self._on_attempt_failed is not None:
                    self._on_attempt_failed(result.tracker_host, fatal_host)
                if entry.commit_attempt == result.attempt:
                    entry.committed = False
                    entry.commit_attempt = None
                if not retryable or entry.attempts_started >= self._max_attempts:
                    entry.permanent_failure = result
                    entry.done = True
                    if self._on_permanent_failure is not None:
                        self._on_permanent_failure(entry.index, result)
        return self.results


class JobTracker:
    """Master node of the MapReduce engine."""

    def __init__(
        self,
        fs: FileSystem | str,
        trackers: list[TaskTracker],
        *,
        parallel: bool = True,
        slot_ledger: SlotLedger | None = None,
        _from_factory: bool = False,
    ) -> None:
        """Create a job tracker.

        .. deprecated::
            Direct construction is deprecated in favour of
            :meth:`repro.mapreduce.service.JobService.local` (or
            :func:`make_cluster` for a bare cluster): the service fronts
            the same engine with concurrent submission, fair-share
            scheduling and admission control.  Construction keeps working
            — it only warns.

        Parameters
        ----------
        fs:
            File system used for job input and output: a concrete
            instance (BSFS, HDFS, LocalFS) or a URI string such as
            ``"bsfs://demo"`` resolved through the scheme registry.
        trackers:
            Worker task trackers (typically one per storage node so
            locality is possible).
        parallel:
            Execute tasks concurrently with one thread per tracker slot
            (default).  Sequential execution is available for debugging
            and deterministic tests.
        slot_ledger:
            Shared per-tenant slot accounting, injected by the
            :class:`~repro.mapreduce.service.JobService` so concurrent
            jobs report their slot usage to one ledger.
        """
        if not _from_factory:
            warnings.warn(
                "constructing JobTracker(...) directly is deprecated; use "
                "JobService.local(...) (multi-tenant submission) or "
                "make_cluster(...) instead",
                DeprecationWarning,
                stacklevel=2,
            )
        if not trackers:
            raise ValueError("a job tracker needs at least one task tracker")
        if isinstance(fs, str):
            fs = get_filesystem(fs)
        self.fs = fs
        self.trackers = list(trackers)
        self.parallel = parallel
        self.slot_ledger = slot_ledger
        # Re-entrant: JobService.__init__ registers itself under this lock
        # while _embedded_service holds it during lazy construction.
        self._service_lock = threading.RLock()
        self._service = None

    # -- public API -----------------------------------------------------------------
    def run(self, job: Job, *, fault_plan: FaultPlan | None = None) -> JobResult:
        """Execute ``job`` to completion and return its result.

        This is now a thin submit-and-wait wrapper over an embedded
        single-tenant :class:`~repro.mapreduce.service.JobService` — the
        blocking call every pre-service caller knows, with identical
        semantics (exceptions included), while concurrent submitters go
        through :meth:`~repro.mapreduce.service.JobService.submit`.

        Input paths and the output directory of the job configuration may
        be URIs; they are validated against this tracker's file system and
        reduced to plain paths before splitting.

        A raising map or reduce task attempt no longer aborts the run: the
        failure is recorded as a :class:`TaskResult` with
        ``succeeded=False`` and the task is re-executed on a different
        tracker up to ``JobConf.max_task_attempts`` times; only a task with
        no surviving attempt fails the job
        (``JobResult(succeeded=False, ...)``).

        ``fault_plan`` (or a ``"fault_plan"`` entry in the job conf's free
        -form properties) injects deterministic failures, stragglers,
        tracker deaths and storage-node crashes — see
        :mod:`repro.mapreduce.faults`.
        """
        handle = self._embedded_service().submit(job, fault_plan=fault_plan)
        return handle.wait()

    def _embedded_service(self):
        """The lazily built single-tenant service backing :meth:`run`.

        Unbounded concurrency and no admission limits: each blocking
        ``run`` call occupies its own submitter thread, exactly as before
        the service existed.
        """
        with self._service_lock:
            if self._service is None:
                from .service import JobService

                self._service = JobService(self, max_concurrent_jobs=None)
            return self._service

    def _execute(self, job: Job, fault_plan: FaultPlan | None = None) -> JobResult:
        """Run one job to completion on the calling thread (service internal)."""
        resolved_conf = job.conf.resolve_for(self.fs)
        if resolved_conf is not job.conf:
            job = replace(job, conf=resolved_conf)
        if fault_plan is None:
            fault_plan = job.conf.get("fault_plan")
        started = time.perf_counter()
        counters = Counters()
        scheduler = LocalityAwareScheduler(
            self.trackers, tenant=job.conf.tenant, slot_ledger=self.slot_ledger
        )
        # Runtime controls threaded in by the JobService (absent for a
        # direct blocking run): cooperative cancellation, the speculation
        # gate, the tenant's inflight-byte budget and progress reporting.
        cancel_event: threading.Event | None = job.conf.get(CANCEL_EVENT_PROPERTY)
        speculation_gate = job.conf.get(SPECULATION_GATE_PROPERTY)
        inflight_budget = job.conf.get(INFLIGHT_BUDGET_PROPERTY)
        progress_callback = job.conf.get(PROGRESS_PROPERTY)

        # Tracker failure detection.  With tracker faults in play, a
        # killed tracker is no longer blacklisted synchronously from the
        # TrackerDeadError its attempts raise: every tracker heartbeats a
        # liveness registry, a killed one falls silent, and the registry
        # declares it dead after max_missed intervals — that death event
        # is what blacklists the host, the way a real jobtracker learns
        # of a crashed tasktracker.
        tracker_liveness: LivenessRegistry | None = None
        liveness_monitor: LivenessMonitor | None = None
        heartbeat_pumps: list[HeartbeatPump] = []
        if fault_plan is not None and fault_plan.tracker_faults:
            tracker_liveness = LivenessRegistry(
                heartbeat_interval=0.02, max_missed=2
            )
            # A death event blacklists the host unconditionally (even the
            # last one): retrying against a dead process is futile, and a
            # fully dead cluster surfaces as NoHealthyTrackerError-backed
            # permanent task failures instead of burning every attempt.
            tracker_liveness.on_death(scheduler.mark_dead)
            for tracker in self.trackers:
                tracker_liveness.register(tracker.host)
                pump = HeartbeatPump(
                    partial(tracker_liveness.heartbeat, tracker.host),
                    interval=tracker_liveness.heartbeat_interval,
                    should_beat=partial(
                        lambda plan, host: not plan.tracker_is_dead(host),
                        fault_plan,
                        tracker.host,
                    ),
                )
                heartbeat_pumps.append(pump.start())
            liveness_monitor = LivenessMonitor(tracker_liveness).start()
        input_format = job.input_format or (
            TextInputFormat() if job.conf.input_paths else SyntheticInputFormat()
        )
        map_format, reduce_format = self._select_output_formats(job)
        splits = input_format.get_splits(self.fs, job.conf)
        assignments = scheduler.assign(splits)
        num_partitions = job.conf.num_reduce_tasks
        if isinstance(reduce_format, SingleFileOutputFormat):
            # Truncate the shared file so rerunning the job does not append
            # to a previous run's output — but only after the inputs were
            # split successfully, so a rerun with a bad input path fails
            # without destroying the existing output.
            reduce_format.prepare(
                self.fs,
                job.conf.output_dir,
                replication=job.conf.output_replication,
            )

        shuffle_service: ShuffleService | None = None
        shuffle_transfer: TransferEngine | None = None
        if job.conf.spill_to_fs and not job.conf.is_map_only:
            # A per-job prefetch engine keeps one heavy shuffle from
            # starving the process-wide fallback pool that other jobs (or
            # the benchmarks) share; it is shut down with the job.
            shuffle_transfer = TransferEngine(
                max(2, min(2 * max(num_partitions, 1), 16)),
                budget=inflight_budget,
                name=f"shuffle-{job.name[:16]}",
            )
            shuffle_service = ShuffleService(
                self.fs,
                num_maps=len(assignments),
                num_partitions=num_partitions,
                shuffle_dir=fspath.join(job.conf.output_dir, "_shuffle"),
                segment_size=job.conf.shuffle_segment_size,
                transfer=shuffle_transfer,
            )

        map_only = job.conf.is_map_only

        def report_host_failure(host: str, fatal: bool) -> None:
            scheduler.report_task_failure(host, fatal=fatal)

        def cancelled_result(
            task_id: str, kind: str, attempt: int, speculative: bool
        ) -> tuple[TaskResult, bool, bool]:
            failed = _failed_result(
                task_id,
                "n/a",
                kind,
                RuntimeError("job cancelled before the attempt started"),
                attempt=attempt,
                speculative=speculative,
            )
            return failed, False, False  # not retryable: the job is going away

        def make_map_placement_failure(
            index: int, attempt: int, exc: BaseException
        ) -> TaskResult:
            split_id = assignments[index].split.split_id
            return _failed_result(
                f"map-{split_id:05d}", "n/a", "map", exc, attempt=attempt
            )

        def make_reduce_placement_failure(
            index: int, attempt: int, exc: BaseException
        ) -> TaskResult:
            return _failed_result(
                f"reduce-{index:05d}", "n/a", "reduce", exc, attempt=attempt
            )

        # -- map phase ------------------------------------------------------------
        def pick_map_tracker(
            index: int, attempt: int, banned: set[str]
        ) -> TaskTracker:
            assignment = assignments[index]
            if (
                attempt == 0
                and assignment.tracker.host not in banned
                and not scheduler.is_blacklisted(assignment.tracker.host)
            ):
                return assignment.tracker
            return scheduler.pick_tracker(exclude=banned)

        def execute_map(
            index: int, attempt: int, tracker: TaskTracker, speculative: bool
        ) -> tuple[TaskResult, bool, bool]:
            assignment = assignments[index]
            split = assignment.split
            task_id = f"map-{split.split_id:05d}"
            if tracker is assignment.tracker:
                locality = assignment.locality
            else:
                locality = (
                    "node-local" if tracker.host in split.hosts else "remote"
                )
            if cancel_event is not None and cancel_event.is_set():
                return cancelled_result(task_id, "map", attempt, speculative)
            commit_check = None
            if map_only:
                commit_check = partial(map_phase.try_commit, index, attempt)
            # Each attempt gets its own counter set; only the winner's is
            # folded into the job counters (see merge_winner_counters).
            attempt_counters = Counters()
            scheduler.task_started()
            try:
                # The tenant scope wraps the *attempt* (running in a pool
                # thread): every namespace write the task performs is
                # attributed to — and enforced against — the job's tenant.
                with tenant_scope(job.conf.tenant):
                    result = tracker.run_map_task(
                        job,
                        self.fs,
                        split,
                        num_partitions=num_partitions,
                        reader_factory=input_format.create_reader,
                        counters=attempt_counters,
                        locality=locality,
                        output_format=map_format,
                        shuffle=shuffle_service,
                        attempt=attempt,
                        speculative=speculative,
                        fault_plan=fault_plan,
                        commit_check=commit_check,
                    )
            except Exception as exc:
                failed = _failed_result(
                    task_id,
                    tracker.host,
                    "map",
                    exc,
                    locality=locality,
                    attempt=attempt,
                    speculative=speculative,
                )
                return failed, True, (
                    isinstance(exc, TrackerDeadError) and tracker_liveness is None
                )
            finally:
                scheduler.task_finished()
            return result, True, False

        def on_map_permanent_failure(index: int, result: TaskResult) -> None:
            if shuffle_service is not None:
                # Unblock reduce fetchers waiting on a map that will never
                # complete: no surviving attempt exists.
                shuffle_service.abort(
                    RuntimeError(
                        f"{result.task_id} failed permanently: {result.error}"
                    )
                )

        completed_tasks = {"map": 0, "reduce": 0}
        progress_lock = threading.Lock()
        phase_totals = {
            "map": len(assignments),
            "reduce": 0 if map_only else num_partitions,
        }

        def merge_winner_counters(result: TaskResult) -> None:
            if result.attempt_counters is not None:
                counters.merge(result.attempt_counters)
            if progress_callback is not None:
                with progress_lock:
                    completed_tasks[result.kind] += 1
                    done = completed_tasks[result.kind]
                try:
                    progress_callback(result.kind, done, phase_totals[result.kind])
                except Exception:
                    pass  # a broken observer must not fail the job

        map_phase = _RetryingPhase(
            total=len(assignments),
            max_attempts=job.conf.max_task_attempts,
            execute=execute_map,
            pick_tracker=pick_map_tracker,
            speculative=job.conf.speculative_execution,
            slow_task_threshold=job.conf.slow_task_threshold,
            speculative_fraction=job.conf.speculative_fraction,
            on_winner=merge_winner_counters,
            on_attempt_failed=report_host_failure,
            on_permanent_failure=on_map_permanent_failure,
            make_failure=make_map_placement_failure,
            speculation_gate=speculation_gate,
        )

        # -- reduce phase ---------------------------------------------------------
        map_outputs: list[list[list[tuple[Any, Any]]]] = []

        def pick_reduce_tracker(
            index: int, attempt: int, banned: set[str]
        ) -> TaskTracker:
            if attempt == 0 and not banned:
                return scheduler.pick_tracker_round_robin()
            return scheduler.pick_tracker(exclude=banned)

        def execute_reduce(
            index: int, attempt: int, tracker: TaskTracker, speculative: bool
        ) -> tuple[TaskResult, bool, bool]:
            task_id = f"reduce-{index:05d}"
            if cancel_event is not None and cancel_event.is_set():
                return cancelled_result(task_id, "reduce", attempt, speculative)
            attempt_counters = Counters()
            scheduler.task_started()
            try:
                if shuffle_service is not None:
                    pairs: Any = _counted(
                        shuffle_service.merged_pairs(index), attempt_counters
                    )
                    presorted = True
                else:
                    pairs = merge_map_outputs(map_outputs, index)
                    attempt_counters.increment("reduce_shuffle_records", len(pairs))
                    presorted = False
                with tenant_scope(job.conf.tenant):
                    result = tracker.run_reduce_task(
                        job,
                        self.fs,
                        index,
                        pairs,
                        counters=attempt_counters,
                        output_format=reduce_format,
                        presorted=presorted,
                        attempt=attempt,
                        speculative=speculative,
                        fault_plan=fault_plan,
                        commit_check=partial(reduce_phase.try_commit, index, attempt),
                    )
            except ShuffleAbortedError as exc:
                # The shuffle is dead; retrying this reduce cannot succeed.
                failed = _failed_result(
                    task_id,
                    tracker.host,
                    "reduce",
                    exc,
                    attempt=attempt,
                    speculative=speculative,
                )
                return failed, False, False
            except Exception as exc:
                failed = _failed_result(
                    task_id,
                    tracker.host,
                    "reduce",
                    exc,
                    attempt=attempt,
                    speculative=speculative,
                )
                return failed, True, (
                    isinstance(exc, TrackerDeadError) and tracker_liveness is None
                )
            finally:
                scheduler.task_finished()
            return result, True, False

        reduce_phase = _RetryingPhase(
            total=0 if map_only else num_partitions,
            max_attempts=job.conf.max_task_attempts,
            execute=execute_reduce,
            pick_tracker=pick_reduce_tracker,
            speculative=job.conf.speculative_execution,
            slow_task_threshold=job.conf.slow_task_threshold,
            speculative_fraction=job.conf.speculative_fraction,
            on_winner=merge_winner_counters,
            on_attempt_failed=report_host_failure,
            make_failure=make_reduce_placement_failure,
            speculation_gate=speculation_gate,
        )

        # -- execution ------------------------------------------------------------
        # An AS OF job leases every snapshot it reads for its duration, so
        # the version GC cannot retire a snapshot while map attempts (and
        # late retries) are still streaming it.  Pinning also fails fast —
        # with a clear VersionRetiredError — if a requested snapshot was
        # already reclaimed, instead of mid-task.
        snapshot_pins = self._pin_snapshots(job, splits)
        reduce_ran = False
        max_workers = max(sum(t.slots for t in self.trackers), 1)
        try:
            if shuffle_service is not None and self.parallel:
                # Overlapped shuffle: reduce workers start alongside the map
                # phase and fetch segments as individual maps complete; the
                # separate pools keep blocked reducers from starving maps.
                # Speculative reduce backups need headroom beyond one
                # worker per partition, since primaries block on fetches.
                reduce_workers = max(num_partitions, 1) * (
                    2 if job.conf.speculative_execution else 1
                )
                reduce_ran = True
                with ThreadPoolExecutor(max_workers=reduce_workers) as reduce_pool:
                    reduce_phase.start(reduce_pool)
                    try:
                        with ThreadPoolExecutor(max_workers=max_workers) as map_pool:
                            map_phase.run(map_pool)
                    except BaseException as exc:
                        # A SystemExit/KeyboardInterrupt escaping a map
                        # would otherwise leave the reducers blocked forever
                        # on maps that will never complete, hanging the
                        # reduce pool's shutdown below.
                        shuffle_service.abort(exc)
                        raise
                    reduce_phase.finish()
            elif self.parallel:
                with ThreadPoolExecutor(max_workers=max_workers) as map_pool:
                    map_phase.run(map_pool)
                if not map_only and map_phase.succeeded:
                    reduce_ran = True
                    map_outputs.extend(map_phase.winner_map_outputs())
                    with ThreadPoolExecutor(max_workers=max_workers) as reduce_pool:
                        reduce_phase.run(reduce_pool)
            else:
                # Serial mode: the whole map phase completes before reduce,
                # with retries but no speculation.
                map_phase.run_serial()
                if not map_only and map_phase.succeeded:
                    reduce_ran = True
                    map_outputs.extend(map_phase.winner_map_outputs())
                    reduce_phase.run_serial()
        finally:
            for pin in snapshot_pins:
                try:
                    pin.release()
                except Exception:
                    pass
            shuffle_stats = None
            if shuffle_service is not None:
                shuffle_stats = shuffle_service.stats()
                counters.increment(
                    "shuffle_segments_spilled", shuffle_service.segments_spilled
                )
                counters.increment(
                    "shuffle_segments_fetched", shuffle_service.segments_fetched
                )
                shuffle_service.cleanup()
            if shuffle_transfer is not None:
                shuffle_transfer.close()
            if liveness_monitor is not None:
                liveness_monitor.stop()
            for pump in heartbeat_pumps:
                pump.stop()
            if tracker_liveness is not None and fault_plan is not None:
                # A short job can finish before the detector's deadline
                # passes; wait out the missed-heartbeat window for every
                # tracker the plan actually killed so the blacklist is
                # deterministic — the detection still happens through the
                # registry, never synchronously.
                for tracker in self.trackers:
                    if fault_plan.tracker_is_dead(tracker.host):
                        tracker_liveness.await_death(tracker.host, timeout=2.0)

        # Results are read only now, after every pool joined: race-losing
        # attempts finishing during pool shutdown are included too.
        map_results = map_phase.results
        reduce_results = reduce_phase.results
        task_results = map_results + reduce_results
        output_paths = [r.output_path for r in task_results if r.output_path]
        succeeded = map_phase.succeeded and (
            map_only or (reduce_ran and reduce_phase.succeeded)
        )
        elapsed = time.perf_counter() - started
        return JobResult(
            job_name=job.name,
            succeeded=succeeded,
            elapsed=elapsed,
            map_tasks=len(assignments),
            reduce_tasks=len({r.task_id for r in reduce_results}),
            counters=counters,
            locality=scheduler.stats,
            task_results=task_results,
            output_paths=sorted(set(output_paths)),
            shuffle=shuffle_stats,
            blacklisted_hosts=sorted(scheduler.blacklisted_hosts),
        )

    def _pin_snapshots(self, job: Job, splits: list) -> list:
        """Lease every distinct ``(path, version)`` snapshot the job reads.

        Returns the acquired pin handles (released by the caller's
        ``finally``); a pin failing mid-way releases the ones already
        taken before re-raising, so an aborted submission leaks nothing.
        """
        pins: list = []
        seen: set[tuple[str, int]] = set()
        try:
            for split in splits:
                path = getattr(split, "path", None)
                version = getattr(split, "version", None)
                if path is None or version is None or (path, version) in seen:
                    continue
                seen.add((path, version))
                pins.append(
                    self.fs.pin(path, version, owner=f"job:{job.name}")
                )
        except Exception:
            for pin in pins:
                try:
                    pin.release()
                except Exception:
                    pass
            raise
        return pins

    def _select_output_formats(
        self, job: Job
    ) -> tuple[TextOutputFormat, TextOutputFormat]:
        """Output formats for the map and reduce sides of ``job``.

        ``single_output_file`` swaps the reduce side to
        :class:`SingleFileOutputFormat` (all reducers appending to one
        shared file — the §V scenario) when the backend supports concurrent
        appends, and falls back to per-reducer part files otherwise.  An
        explicit ``job.output_format`` always wins.
        """
        fmt = job.output_format or TextOutputFormat()
        reduce_fmt = fmt
        if (
            job.output_format is None
            and job.conf.single_output_file
            and not job.conf.is_map_only
            and hasattr(self.fs, "concurrent_append")
        ):
            reduce_fmt = SingleFileOutputFormat()
        return fmt, reduce_fmt


def make_cluster(
    fs: FileSystem | str,
    *,
    hosts: list[str] | None = None,
    num_trackers: int = 4,
    slots_per_tracker: int = 2,
    parallel: bool = True,
) -> JobTracker:
    """Convenience factory building a jobtracker with one tracker per host.

    ``fs`` may be a file-system instance or a URI string (``"hdfs://demo"``)
    resolved through the scheme registry, making the storage backend of a
    whole MapReduce cluster a one-string choice.  When ``hosts`` is omitted
    the tracker hosts are derived from the file system's storage nodes
    (BlobSeer providers for BSFS, datanodes for HDFS) so that data-local
    scheduling is possible, mirroring the paper's co-deployment of Hadoop
    tasktrackers and storage daemons.
    """
    if isinstance(fs, str):
        fs = get_filesystem(fs)
    if hosts is None:
        hosts = []
        blobseer = getattr(fs, "blobseer", None)
        if blobseer is not None:
            hosts = [p.host for p in blobseer.provider_manager.providers]
        namenode = getattr(fs, "namenode", None)
        if namenode is not None and not hosts:
            hosts = [d.host for d in namenode.datanodes]
        if not hosts:
            hosts = [f"tracker-{i}" for i in range(num_trackers)]
    trackers = [TaskTracker(host, slots=slots_per_tracker) for host in hosts]
    return JobTracker(fs, trackers, parallel=parallel, _from_factory=True)
