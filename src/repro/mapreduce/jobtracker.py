"""Job tracker: the master orchestrating a MapReduce job end to end.

"A MapReduce job is split into a set of tasks, which are executed by the
tasktrackers, as assigned by the jobtracker.  The input data is also split
into chunks of equal size, that are stored in a distributed file system
across the cluster.  First, the map tasks are run, each processing a chunk
of the input file ...  After all the maps have finished, the tasktrackers
execute the reduce function on the map outputs."

:class:`JobTracker.run` follows exactly that structure: compute splits,
schedule map tasks (locality-aware), execute them (optionally in parallel
threads, one slot per tracker slot), shuffle, execute reduce tasks, and
return a :class:`JobResult` with timings, counters and locality statistics.
The engine is storage-agnostic: pass a BSFS or an HDFS instance.

Two shuffle paths exist.  The default keeps intermediate pairs in memory
and runs reduce after a global map barrier.  With
``JobConf(spill_to_fs=True)`` the shuffle is routed through the job's file
system instead: maps spill sorted segment files, reduce tasks start
*alongside* the map phase and fetch segments as individual maps complete
(overlapped shuffle), then merge them externally — so shuffle I/O exercises
the storage backend under measurement and a partition larger than memory
still reduces.  ``JobConf(single_output_file=True)`` additionally makes all
reducers write one shared output file via ``concurrent_append`` — the
paper's §V scenario — on backends that support it.
"""

from __future__ import annotations

import time
import traceback
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Any, Iterator

from ..fs import path as fspath
from ..fs.interface import FileSystem
from ..fs.registry import get_filesystem
from .job import Counters, Job
from .scheduler import Assignment, LocalityAwareScheduler, LocalityStats
from .shuffle import SingleFileOutputFormat, TextOutputFormat, merge_map_outputs
from .shuffle_service import ShuffleService
from .splitter import SyntheticInputFormat, TextInputFormat
from .tasktracker import TaskResult, TaskTracker

__all__ = ["JobResult", "JobTracker", "make_cluster"]


@dataclass
class JobResult:
    """Outcome of one job execution."""

    job_name: str
    succeeded: bool
    elapsed: float
    map_tasks: int
    reduce_tasks: int
    counters: Counters
    locality: LocalityStats
    task_results: list[TaskResult] = field(default_factory=list)
    output_paths: list[str] = field(default_factory=list)
    #: Spill-based shuffle statistics (``None`` for the in-memory shuffle).
    shuffle: dict | None = None

    def counter(self, name: str) -> int:
        """Shortcut for ``result.counters.get(name)``."""
        return self.counters.get(name)

    @property
    def failed_tasks(self) -> list[TaskResult]:
        """The tasks that raised during this run (empty on success)."""
        return [r for r in self.task_results if not r.succeeded]

    def summary(self) -> dict[str, Any]:
        """JSON-friendly summary used by reports and benchmarks."""
        summary = {
            "job": self.job_name,
            "succeeded": self.succeeded,
            "elapsed_seconds": self.elapsed,
            "map_tasks": self.map_tasks,
            "reduce_tasks": self.reduce_tasks,
            "locality": self.locality.as_dict(),
            "counters": self.counters.as_dict(),
        }
        if self.shuffle is not None:
            summary["shuffle"] = self.shuffle
        failed = self.failed_tasks
        if failed:
            summary["failed_tasks"] = [r.task_id for r in failed]
        return summary


def _failed_result(
    task_id: str,
    tracker_host: str,
    kind: str,
    exc: BaseException,
    *,
    locality: str = "n/a",
) -> TaskResult:
    """Record one raising task as a failed :class:`TaskResult`."""
    error = "".join(
        traceback.format_exception_only(type(exc), exc)
    ).strip()
    return TaskResult(
        task_id=task_id,
        tracker_host=tracker_host,
        kind=kind,
        duration=0.0,
        records_in=0,
        records_out=0,
        locality=locality,
        succeeded=False,
        error=error,
    )


def _counted(
    pairs: Iterator[tuple[Any, Any]], counters: Counters
) -> Iterator[tuple[Any, Any]]:
    """Pass pairs through, folding their count into ``reduce_shuffle_records``."""
    count = 0
    try:
        for pair in pairs:
            count += 1
            yield pair
    finally:
        counters.increment("reduce_shuffle_records", count)


class JobTracker:
    """Master node of the MapReduce engine."""

    def __init__(
        self,
        fs: FileSystem | str,
        trackers: list[TaskTracker],
        *,
        parallel: bool = True,
    ) -> None:
        """Create a job tracker.

        Parameters
        ----------
        fs:
            File system used for job input and output: a concrete
            instance (BSFS, HDFS, LocalFS) or a URI string such as
            ``"bsfs://demo"`` resolved through the scheme registry.
        trackers:
            Worker task trackers (typically one per storage node so
            locality is possible).
        parallel:
            Execute tasks concurrently with one thread per tracker slot
            (default).  Sequential execution is available for debugging
            and deterministic tests.
        """
        if not trackers:
            raise ValueError("a job tracker needs at least one task tracker")
        if isinstance(fs, str):
            fs = get_filesystem(fs)
        self.fs = fs
        self.trackers = list(trackers)
        self.parallel = parallel

    # -- public API -----------------------------------------------------------------
    def run(self, job: Job) -> JobResult:
        """Execute ``job`` to completion and return its result.

        Input paths and the output directory of the job configuration may
        be URIs; they are validated against this tracker's file system and
        reduced to plain paths before splitting.

        A raising map or reduce task no longer aborts the run: the failure
        is recorded as a :class:`TaskResult` with ``succeeded=False`` and
        the job returns ``JobResult(succeeded=False, ...)``.
        """
        resolved_conf = job.conf.resolve_for(self.fs)
        if resolved_conf is not job.conf:
            job = replace(job, conf=resolved_conf)
        started = time.perf_counter()
        counters = Counters()
        scheduler = LocalityAwareScheduler(self.trackers)
        input_format = job.input_format or (
            TextInputFormat() if job.conf.input_paths else SyntheticInputFormat()
        )
        map_format, reduce_format = self._select_output_formats(job)
        splits = input_format.get_splits(self.fs, job.conf)
        assignments = scheduler.assign(splits)
        num_partitions = job.conf.num_reduce_tasks
        if isinstance(reduce_format, SingleFileOutputFormat):
            # Truncate the shared file so rerunning the job does not append
            # to a previous run's output — but only after the inputs were
            # split successfully, so a rerun with a bad input path fails
            # without destroying the existing output.
            reduce_format.prepare(
                self.fs,
                job.conf.output_dir,
                replication=job.conf.output_replication,
            )

        shuffle_service: ShuffleService | None = None
        if job.conf.spill_to_fs and not job.conf.is_map_only:
            shuffle_service = ShuffleService(
                self.fs,
                num_maps=len(assignments),
                num_partitions=num_partitions,
                shuffle_dir=fspath.join(job.conf.output_dir, "_shuffle"),
                segment_size=job.conf.shuffle_segment_size,
            )

        def _run_map(assignment: Assignment) -> TaskResult:
            task_id = f"map-{assignment.split.split_id:05d}"
            try:
                return assignment.tracker.run_map_task(
                    job,
                    self.fs,
                    assignment.split,
                    num_partitions=num_partitions,
                    reader_factory=input_format.create_reader,
                    counters=counters,
                    locality=assignment.locality,
                    output_format=map_format,
                    shuffle=shuffle_service,
                )
            except Exception as exc:
                if shuffle_service is not None:
                    # Unblock reduce fetchers waiting on this map forever.
                    shuffle_service.abort(exc)
                return _failed_result(
                    task_id, assignment.tracker.host, "map", exc,
                    locality=assignment.locality,
                )

        def _run_reduce(partition_index: int) -> TaskResult:
            tracker = scheduler.pick_tracker_round_robin()
            task_id = f"reduce-{partition_index:05d}"
            try:
                if shuffle_service is not None:
                    pairs: Any = _counted(
                        shuffle_service.merged_pairs(partition_index), counters
                    )
                    presorted = True
                else:
                    pairs = merge_map_outputs(map_outputs, partition_index)
                    counters.increment("reduce_shuffle_records", len(pairs))
                    presorted = False
                return tracker.run_reduce_task(
                    job,
                    self.fs,
                    partition_index,
                    pairs,
                    counters=counters,
                    output_format=reduce_format,
                    presorted=presorted,
                )
            except Exception as exc:
                return _failed_result(task_id, tracker.host, "reduce", exc)

        map_results: list[TaskResult] = []
        reduce_results: list[TaskResult] = []
        max_workers = max(sum(t.slots for t in self.trackers), 1)
        try:
            if shuffle_service is not None and self.parallel:
                # Overlapped shuffle: reduce workers start alongside the map
                # phase and fetch segments as individual maps complete; the
                # separate pools keep blocked reducers from starving maps.
                with ThreadPoolExecutor(
                    max_workers=max(num_partitions, 1)
                ) as reduce_pool:
                    reduce_futures = [
                        reduce_pool.submit(_run_reduce, i)
                        for i in range(num_partitions)
                    ]
                    try:
                        map_results = self._execute_maps(
                            assignments, _run_map, max_workers
                        )
                    except BaseException as exc:
                        # _run_map only catches Exception; a BaseException
                        # (SystemExit, KeyboardInterrupt) escaping a map
                        # would otherwise leave the reducers blocked forever
                        # on maps that will never complete, hanging the
                        # reduce pool's shutdown below.
                        shuffle_service.abort(exc)
                        raise
                    reduce_results = [f.result() for f in reduce_futures]
            else:
                # Barrier mode: the whole map phase completes before reduce.
                map_results = self._execute_maps(assignments, _run_map, max_workers)
                map_failed = any(not r.succeeded for r in map_results)
                if not job.conf.is_map_only and not map_failed:
                    map_outputs = [
                        r.map_output for r in map_results if r.map_output is not None
                    ]
                    partitions = range(num_partitions)
                    if self.parallel and num_partitions > 1:
                        with ThreadPoolExecutor(max_workers=max_workers) as pool:
                            reduce_results = list(pool.map(_run_reduce, partitions))
                    else:
                        reduce_results = [_run_reduce(i) for i in partitions]
        finally:
            shuffle_stats = None
            if shuffle_service is not None:
                shuffle_stats = shuffle_service.stats()
                counters.increment(
                    "shuffle_segments_spilled", shuffle_service.segments_spilled
                )
                counters.increment(
                    "shuffle_segments_fetched", shuffle_service.segments_fetched
                )
                shuffle_service.cleanup()

        task_results = list(map_results) + list(reduce_results)
        output_paths = [r.output_path for r in task_results if r.output_path]
        succeeded = all(r.succeeded for r in task_results)
        elapsed = time.perf_counter() - started
        return JobResult(
            job_name=job.name,
            succeeded=succeeded,
            elapsed=elapsed,
            map_tasks=len(map_results),
            reduce_tasks=len(reduce_results),
            counters=counters,
            locality=scheduler.stats,
            task_results=task_results,
            output_paths=sorted(set(output_paths)),
            shuffle=shuffle_stats,
        )

    def _execute_maps(
        self,
        assignments: list[Assignment],
        run_map: Any,
        max_workers: int,
    ) -> list[TaskResult]:
        """Run every map task, in a worker pool when parallelism applies."""
        if self.parallel and len(assignments) > 1:
            with ThreadPoolExecutor(max_workers=max_workers) as pool:
                return list(pool.map(run_map, assignments))
        return [run_map(a) for a in assignments]

    def _select_output_formats(
        self, job: Job
    ) -> tuple[TextOutputFormat, TextOutputFormat]:
        """Output formats for the map and reduce sides of ``job``.

        ``single_output_file`` swaps the reduce side to
        :class:`SingleFileOutputFormat` (all reducers appending to one
        shared file — the §V scenario) when the backend supports concurrent
        appends, and falls back to per-reducer part files otherwise.  An
        explicit ``job.output_format`` always wins.
        """
        fmt = job.output_format or TextOutputFormat()
        reduce_fmt = fmt
        if (
            job.output_format is None
            and job.conf.single_output_file
            and not job.conf.is_map_only
            and hasattr(self.fs, "concurrent_append")
        ):
            reduce_fmt = SingleFileOutputFormat()
        return fmt, reduce_fmt


def make_cluster(
    fs: FileSystem | str,
    *,
    hosts: list[str] | None = None,
    num_trackers: int = 4,
    slots_per_tracker: int = 2,
    parallel: bool = True,
) -> JobTracker:
    """Convenience factory building a jobtracker with one tracker per host.

    ``fs`` may be a file-system instance or a URI string (``"hdfs://demo"``)
    resolved through the scheme registry, making the storage backend of a
    whole MapReduce cluster a one-string choice.  When ``hosts`` is omitted
    the tracker hosts are derived from the file system's storage nodes
    (BlobSeer providers for BSFS, datanodes for HDFS) so that data-local
    scheduling is possible, mirroring the paper's co-deployment of Hadoop
    tasktrackers and storage daemons.
    """
    if isinstance(fs, str):
        fs = get_filesystem(fs)
    if hosts is None:
        hosts = []
        blobseer = getattr(fs, "blobseer", None)
        if blobseer is not None:
            hosts = [p.host for p in blobseer.provider_manager.providers]
        namenode = getattr(fs, "namenode", None)
        if namenode is not None and not hosts:
            hosts = [d.host for d in namenode.datanodes]
        if not hosts:
            hosts = [f"tracker-{i}" for i in range(num_trackers)]
    trackers = [TaskTracker(host, slots=slots_per_tracker) for host in hosts]
    return JobTracker(fs, trackers, parallel=parallel)
