"""Workload generators and functional (in-process) microbenchmarks."""

from .generators import (
    deterministic_bytes,
    random_text,
    text_file_lines,
    write_binary_file,
    write_text_file,
)
from .microbench import (
    FunctionalRunResult,
    concurrent_appends_same_file,
    concurrent_reads_different_files,
    concurrent_reads_same_file,
    concurrent_writes_different_files,
)

__all__ = [
    "deterministic_bytes",
    "random_text",
    "text_file_lines",
    "write_text_file",
    "write_binary_file",
    "FunctionalRunResult",
    "concurrent_writes_different_files",
    "concurrent_reads_different_files",
    "concurrent_reads_same_file",
    "concurrent_appends_same_file",
]
