"""Synthetic data generators used by tests, examples and functional benchmarks.

The paper's workloads are text-heavy (random sentences, grep over text), so
the generators produce deterministic pseudo-random text and binary payloads
from explicit seeds — the same seed always yields the same bytes, which the
tests rely on for end-to-end content verification.
"""

from __future__ import annotations

import random
import zlib

from ..mapreduce.applications.random_text_writer import WORD_LIST, random_sentence

__all__ = [
    "deterministic_bytes",
    "random_text",
    "text_file_lines",
    "write_text_file",
    "write_binary_file",
]


def deterministic_bytes(size: int, *, seed: int = 0) -> bytes:
    """Return ``size`` pseudo-random bytes fully determined by ``seed``.

    Uses a cheap keyed stream (CRC-mixed counter) rather than ``os.urandom``
    so identical calls are reproducible and compressible workloads can be
    derived by repeating small seeds.
    """
    if size < 0:
        raise ValueError("size cannot be negative")
    out = bytearray()
    counter = 0
    state = seed & 0xFFFFFFFF
    while len(out) < size:
        state = zlib.crc32(counter.to_bytes(8, "little"), state) & 0xFFFFFFFF
        out += state.to_bytes(4, "little")
        counter += 1
    return bytes(out[:size])


def random_text(size: int, *, seed: int = 0) -> bytes:
    """Return roughly ``size`` bytes of newline-separated random sentences."""
    rng = random.Random(seed)
    lines: list[str] = []
    produced = 0
    while produced < size:
        sentence = random_sentence(rng)
        lines.append(sentence)
        produced += len(sentence) + 1
    return ("\n".join(lines) + "\n").encode("utf-8")


def text_file_lines(
    num_lines: int,
    *,
    seed: int = 0,
    words_per_line: int = 8,
) -> list[bytes]:
    """Return ``num_lines`` deterministic text lines (without newlines)."""
    rng = random.Random(seed)
    return [
        " ".join(rng.choice(WORD_LIST) for _ in range(words_per_line)).encode("utf-8")
        for _ in range(num_lines)
    ]


def write_text_file(fs, path: str, num_lines: int, *, seed: int = 0, **create_kwargs) -> int:
    """Create ``path`` on ``fs`` with ``num_lines`` deterministic lines.

    Returns the file size in bytes.  Works with any
    :class:`repro.fs.interface.FileSystem`.
    """
    total = 0
    with fs.create(path, **create_kwargs) as stream:
        for line in text_file_lines(num_lines, seed=seed):
            total += stream.write(line + b"\n")
    return total


def write_binary_file(fs, path: str, size: int, *, seed: int = 0, chunk: int = 1024 * 1024, **create_kwargs) -> int:
    """Create ``path`` on ``fs`` with ``size`` deterministic binary bytes."""
    written = 0
    with fs.create(path, **create_kwargs) as stream:
        offset = 0
        while written < size:
            n = min(chunk, size - written)
            stream.write(deterministic_bytes(n, seed=seed + offset))
            written += n
            offset += 1
    return written
