"""Functional (in-process) microbenchmarks: real bytes, real threads.

The cluster simulator reproduces the paper-scale figures; this module
exercises the same three access patterns against the *functional*
implementations (real BSFS and HDFS objects storing real bytes), with one
thread per client.  It is used by the F1 benchmark and by the concurrency
integration tests to verify that the Python implementations themselves
behave correctly and efficiently under concurrent access — the property the
paper's storage layer is designed around.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable

from ..fs.interface import FileSystem
from ..fs.registry import get_filesystem
from .generators import deterministic_bytes

__all__ = [
    "FunctionalRunResult",
    "concurrent_writes_different_files",
    "concurrent_reads_different_files",
    "concurrent_reads_same_file",
    "concurrent_appends_same_file",
]


def _as_filesystem(fs: FileSystem | str) -> FileSystem:
    """Accept a file-system instance or a URI string (``"bsfs://bench"``)."""
    if isinstance(fs, str):
        return get_filesystem(fs)
    return fs


@dataclass
class FunctionalRunResult:
    """Result of one functional microbenchmark run."""

    pattern: str
    scheme: str
    num_clients: int
    bytes_per_client: int
    elapsed: float
    errors: list[str] = field(default_factory=list)

    @property
    def total_bytes(self) -> int:
        """Total payload moved by all clients."""
        return self.num_clients * self.bytes_per_client

    @property
    def aggregate_throughput(self) -> float:
        """Total bytes divided by wall-clock time (bytes/second)."""
        return self.total_bytes / self.elapsed if self.elapsed > 0 else 0.0

    @property
    def succeeded(self) -> bool:
        """Whether every client completed without error."""
        return not self.errors

    def as_row(self) -> dict:
        """One row for reports."""
        return {
            "system": self.scheme,
            "pattern": self.pattern,
            "clients": self.num_clients,
            "MB_per_client": round(self.bytes_per_client / (1024 * 1024), 2),
            "elapsed_s": round(self.elapsed, 3),
            "aggregate_MBps": round(self.aggregate_throughput / (1024 * 1024), 2),
        }


def _run_threads(workers: list[Callable[[], None]]) -> tuple[float, list[str]]:
    """Run the worker callables concurrently; returns (elapsed, errors)."""
    errors: list[str] = []
    lock = threading.Lock()

    def _wrap(worker: Callable[[], None]) -> None:
        try:
            worker()
        except Exception as exc:  # noqa: BLE001 - benchmark error capture
            with lock:
                errors.append(f"{type(exc).__name__}: {exc}")

    threads = [threading.Thread(target=_wrap, args=(w,)) for w in workers]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return time.perf_counter() - started, errors


def concurrent_writes_different_files(
    fs: FileSystem | str,
    *,
    num_clients: int,
    bytes_per_client: int,
    directory: str = "/bench/write",
    chunk_size: int = 256 * 1024,
) -> FunctionalRunResult:
    """Every client writes its own file (the paper's Reduce-phase pattern)."""
    fs = _as_filesystem(fs)
    fs.mkdirs(directory)

    def _writer(index: int) -> Callable[[], None]:
        def _run() -> None:
            path = f"{directory}/client-{index}.bin"
            with fs.create(path, overwrite=True) as stream:
                written = 0
                while written < bytes_per_client:
                    n = min(chunk_size, bytes_per_client - written)
                    stream.write(deterministic_bytes(n, seed=index * 7919 + written))
                    written += n

        return _run

    elapsed, errors = _run_threads([_writer(i) for i in range(num_clients)])
    return FunctionalRunResult(
        pattern="write_different_files",
        scheme=fs.scheme,
        num_clients=num_clients,
        bytes_per_client=bytes_per_client,
        elapsed=elapsed,
        errors=errors,
    )


def concurrent_reads_different_files(
    fs: FileSystem | str,
    *,
    num_clients: int,
    bytes_per_client: int,
    directory: str = "/bench/read-diff",
    chunk_size: int = 256 * 1024,
) -> FunctionalRunResult:
    """Every client reads its own pre-written file (Map-phase pattern)."""
    fs = _as_filesystem(fs)
    fs.mkdirs(directory)
    for index in range(num_clients):
        path = f"{directory}/client-{index}.bin"
        if not fs.exists(path):
            with fs.create(path) as stream:
                written = 0
                while written < bytes_per_client:
                    n = min(chunk_size, bytes_per_client - written)
                    stream.write(deterministic_bytes(n, seed=index))
                    written += n

    def _reader(index: int) -> Callable[[], None]:
        def _run() -> None:
            path = f"{directory}/client-{index}.bin"
            with fs.open(path) as stream:
                total = 0
                while True:
                    chunk = stream.read(chunk_size)
                    if not chunk:
                        break
                    total += len(chunk)
                if total != bytes_per_client:
                    raise AssertionError(
                        f"client {index} read {total} bytes, expected {bytes_per_client}"
                    )

        return _run

    elapsed, errors = _run_threads([_reader(i) for i in range(num_clients)])
    return FunctionalRunResult(
        pattern="read_different_files",
        scheme=fs.scheme,
        num_clients=num_clients,
        bytes_per_client=bytes_per_client,
        elapsed=elapsed,
        errors=errors,
    )


def concurrent_reads_same_file(
    fs: FileSystem | str,
    *,
    num_clients: int,
    bytes_per_client: int,
    path: str = "/bench/shared-input.bin",
    chunk_size: int = 256 * 1024,
) -> FunctionalRunResult:
    """Clients read disjoint ranges of one shared file (Map-phase pattern)."""
    fs = _as_filesystem(fs)
    total_size = num_clients * bytes_per_client
    if not fs.exists(path) or fs.status(path).size < total_size:
        if fs.exists(path):
            fs.delete(path)
        with fs.create(path) as stream:
            written = 0
            while written < total_size:
                n = min(chunk_size, total_size - written)
                stream.write(deterministic_bytes(n, seed=written))
                written += n

    def _reader(index: int) -> Callable[[], None]:
        def _run() -> None:
            offset = index * bytes_per_client
            with fs.open(path) as stream:
                remaining = bytes_per_client
                position = offset
                while remaining > 0:
                    chunk = stream.pread(position, min(chunk_size, remaining))
                    if not chunk:
                        raise AssertionError(
                            f"client {index} hit EOF with {remaining} bytes left"
                        )
                    position += len(chunk)
                    remaining -= len(chunk)

        return _run

    elapsed, errors = _run_threads([_reader(i) for i in range(num_clients)])
    return FunctionalRunResult(
        pattern="read_same_file",
        scheme=fs.scheme,
        num_clients=num_clients,
        bytes_per_client=bytes_per_client,
        elapsed=elapsed,
        errors=errors,
    )


def concurrent_appends_same_file(
    fs: FileSystem | str,
    *,
    num_clients: int,
    appends_per_client: int,
    append_size: int,
    path: str = "/bench/shared-append.log",
) -> FunctionalRunResult:
    """Clients append concurrently to one shared file (the §V extension).

    Requires a file system exposing ``concurrent_append`` (BSFS and
    LocalFS); the HDFS baseline raises, which the benchmark reports as an
    unsupported run.
    """
    fs = _as_filesystem(fs)
    concurrent_append = getattr(fs, "concurrent_append", None)
    if concurrent_append is None:
        from ..fs.errors import UnsupportedOperationError

        raise UnsupportedOperationError(
            f"{fs.scheme} does not support concurrent appends to one file"
        )
    if not fs.exists(path):
        with fs.create(path):
            pass

    def _appender(index: int) -> Callable[[], None]:
        def _run() -> None:
            for sequence in range(appends_per_client):
                payload = deterministic_bytes(
                    append_size, seed=index * 104729 + sequence
                )
                concurrent_append(path, payload)

        return _run

    elapsed, errors = _run_threads([_appender(i) for i in range(num_clients)])
    return FunctionalRunResult(
        pattern="append_same_file",
        scheme=fs.scheme,
        num_clients=num_clients,
        bytes_per_client=appends_per_client * append_size,
        elapsed=elapsed,
        errors=errors,
    )
