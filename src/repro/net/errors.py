"""Errors of the :mod:`repro.net` service layer.

The hierarchy separates the three failure domains a caller must tell
apart:

* **framing errors** (:class:`FrameError` and subclasses) — the byte
  stream itself is malformed: a corrupted header, an oversized frame, a
  stream cut mid-frame.  These are protocol violations; the connection
  carrying them is unusable and must be dropped.
* **transport errors** (:class:`TransportError` and subclasses) — the
  bytes never made it (or the reply never came back): the peer is down,
  the call timed out.  These are *retryable* and, crucially, ambiguous —
  a timed-out request may or may not have executed remotely, which is why
  the services exposed over this layer keep their mutating operations
  idempotent (see ``ProviderManager.deregister``).
* **remote application errors** are *not* wrapped: the remote exception
  object travels back in the response and is re-raised as-is at the call
  site, so client stubs stay transparent (a remote
  ``ProviderUnavailableError`` still triggers replica failover).  Only
  when the original exception cannot be serialised does the caller see a
  :class:`RemoteCallError` carrying its repr.
"""

from __future__ import annotations

__all__ = [
    "NetError",
    "FrameError",
    "FrameTooLargeError",
    "TruncatedFrameError",
    "MessageDecodeError",
    "TransportError",
    "RpcTimeoutError",
    "PeerUnavailableError",
    "RemoteCallError",
    "UnknownServiceError",
]


class NetError(Exception):
    """Base class of every error raised by the service layer itself."""


class FrameError(NetError):
    """The byte stream violates the framing protocol."""


class FrameTooLargeError(FrameError):
    """A frame header announces a payload above the configured maximum."""

    def __init__(self, announced: int, limit: int) -> None:
        super().__init__(
            f"frame announces {announced} payload bytes, above the "
            f"{limit}-byte limit"
        )
        self.announced = announced
        self.limit = limit


class TruncatedFrameError(FrameError):
    """The stream ended in the middle of a frame."""


class MessageDecodeError(FrameError):
    """A frame's payload does not decode to a request or response."""


class TransportError(NetError):
    """A message could not be delivered or answered (retryable)."""


class RpcTimeoutError(TransportError):
    """No response arrived within the call's timeout.

    The request *may* have executed remotely — timeout is inherently
    ambiguous, which is why control-plane mutations are idempotent.
    """


class PeerUnavailableError(TransportError):
    """The peer refused, closed or never accepted the connection."""

    def __init__(self, peer: str, detail: str | None = None) -> None:
        message = f"peer {peer!r} is unavailable"
        if detail:
            message = f"{message}: {detail}"
        super().__init__(message)
        self.peer = peer


class RemoteCallError(NetError):
    """The remote call raised an exception that could not travel back.

    Carries the remote exception's repr; the common, picklable exception
    types are re-raised as themselves instead.
    """


class UnknownServiceError(NetError):
    """The request names a service or method the peer does not expose."""
