"""RPC message types and their serialisation.

Two message kinds flow over the framed stream:

* :class:`Request` — ``(msg_id, service, method, args, kwargs)``.  The
  ``msg_id`` is the *correlation id*: responses may come back in any
  order (the server handles requests of one connection concurrently), so
  the client matches them by id, never by position.
* :class:`Response` — ``(msg_id, ok, value | error)``.  Application
  errors travel as the pickled exception *object* so the caller re-raises
  the original type (replica failover relies on catching
  ``ProviderUnavailableError`` from a stub exactly like from a local
  provider).  Unpicklable values or exceptions degrade to a
  :class:`~repro.net.errors.RemoteCallError` carrying their repr.

Serialisation is pickle (the segment files of the shuffle already commit
to pickle for on-storage data); the framing layer above bounds message
size, and decode failures surface as
:class:`~repro.net.errors.MessageDecodeError` so a garbage frame cannot
crash a server loop.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Any

from .errors import MessageDecodeError, RemoteCallError

__all__ = [
    "Request",
    "Response",
    "encode_message",
    "decode_message",
    "encode_message_v2",
    "decode_message_v2",
    "DEFAULT_OOB_THRESHOLD",
]

#: Bytes payloads at least this large leave the pickle stream as
#: out-of-band buffers (their own frame segments) under protocol v2.
DEFAULT_OOB_THRESHOLD = 16 * 1024


@dataclass(frozen=True, slots=True)
class Request:
    """One method invocation on a named remote service."""

    msg_id: int
    service: str
    method: str
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)


@dataclass(frozen=True, slots=True)
class Response:
    """The outcome of one request, correlated by ``msg_id``."""

    msg_id: int
    ok: bool
    value: Any = None
    error: BaseException | None = None


def encode_message(message: Request | Response) -> bytes:
    """Serialise a message; unpicklable content degrades, never raises.

    A response whose value or error cannot be pickled is replaced by an
    error response carrying the repr — the caller gets a
    :class:`RemoteCallError` instead of the connection dying on a
    serialisation failure the remote side could not anticipate.
    """
    try:
        return pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        if isinstance(message, Response):
            fallback = Response(
                msg_id=message.msg_id,
                ok=False,
                error=RemoteCallError(
                    f"response not serialisable ({exc!r}); "
                    f"value/error was {message.value!r} / {message.error!r}"
                ),
            )
            return pickle.dumps(fallback, protocol=pickle.HIGHEST_PROTOCOL)
        raise MessageDecodeError(f"request not serialisable: {exc!r}") from exc


def _exportable(obj: Any, threshold: int, depth: int) -> Any:
    """Wrap bulk bytes-likes in :class:`pickle.PickleBuffer`, recursively.

    Only shallow containers are walked (``depth`` levels of
    tuple/list/dict): the bulk payloads of this codebase — pages,
    blocks, shuffle chunks — all sit in the top couple of levels of a
    message's args/kwargs/value, and an unbounded walk would tax every
    tiny metadata op for the benefit of none.

    memoryviews are *always* wrapped (plain pickle cannot serialise
    them at all); writable ones are snapshotted to bytes first so the
    receiver's reconstruction is immutable and the sender cannot mutate
    a payload mid-send.  Non-contiguous or multi-dimensional views fall
    back to a bytes copy.
    """
    if isinstance(obj, bytes):
        if len(obj) >= threshold:
            return pickle.PickleBuffer(obj)
        return obj
    if isinstance(obj, bytearray):
        if len(obj) >= threshold:
            return pickle.PickleBuffer(bytes(obj))
        return obj
    if isinstance(obj, memoryview):
        if not obj.contiguous or obj.ndim != 1 or obj.readonly is False:
            return (
                pickle.PickleBuffer(obj.tobytes())
                if obj.nbytes >= threshold
                else obj.tobytes()
            )
        view = obj.cast("B") if obj.format != "B" else obj
        return pickle.PickleBuffer(view)
    if depth > 0:
        if type(obj) is tuple:
            return tuple(_exportable(item, threshold, depth - 1) for item in obj)
        if type(obj) is list:
            return [_exportable(item, threshold, depth - 1) for item in obj]
        if type(obj) is dict:
            return {
                key: _exportable(item, threshold, depth - 1)
                for key, item in obj.items()
            }
    return obj


def encode_message_v2(
    message: Request | Response,
    *,
    oob_threshold: int = DEFAULT_OOB_THRESHOLD,
) -> tuple[bytes, list]:
    """Serialise a message for protocol v2: ``(head, bulk_buffers)``.

    ``head`` is a pickle-protocol-5 stream whose bulk payloads (bytes
    of at least ``oob_threshold``, and every memoryview) were lifted
    out-of-band; ``bulk_buffers`` are those payloads' raw buffers, in
    pickling order, ready to travel as their own frame segments.  The
    receiver reassembles with :func:`decode_message_v2` — bulk bytes
    objects are adopted *as-is* (zero-copy) by the unpickler.

    Unpicklable content degrades exactly like :func:`encode_message`.
    """
    if isinstance(message, Request):
        prepared: Request | Response = Request(
            msg_id=message.msg_id,
            service=message.service,
            method=message.method,
            args=_exportable(message.args, oob_threshold, 3),
            kwargs=_exportable(message.kwargs, oob_threshold, 3),
        )
    else:
        prepared = Response(
            msg_id=message.msg_id,
            ok=message.ok,
            value=_exportable(message.value, oob_threshold, 3),
            error=message.error,
        )
    buffers: list[pickle.PickleBuffer] = []
    try:
        head = pickle.dumps(prepared, protocol=5, buffer_callback=buffers.append)
    except Exception as exc:
        buffers.clear()
        if isinstance(message, Response):
            fallback = Response(
                msg_id=message.msg_id,
                ok=False,
                error=RemoteCallError(
                    f"response not serialisable ({exc!r}); "
                    f"value/error was {message.value!r} / {message.error!r}"
                ),
            )
            return pickle.dumps(fallback, protocol=5), []
        raise MessageDecodeError(f"request not serialisable: {exc!r}") from exc
    return head, [buf.raw() for buf in buffers]


def decode_message_v2(head: bytes, buffers: list) -> Request | Response:
    """Reassemble a v2 message from its head and out-of-band segments.

    ``buffers`` must be the frame's bulk segments in wire order.  When a
    segment is an immutable ``bytes`` object the unpickler adopts it
    directly — the payload the service sees *is* the receive buffer.
    """
    try:
        message = pickle.loads(head, buffers=buffers)
    except Exception as exc:
        raise MessageDecodeError(
            f"v2 message head does not unpickle: {exc!r}"
        ) from exc
    if not isinstance(message, (Request, Response)):
        raise MessageDecodeError(
            f"v2 message head decodes to {type(message).__name__}, "
            "not a Request or Response"
        )
    return message


def decode_message(payload: bytes) -> Request | Response:
    """Deserialise one frame payload into a message.

    Anything that does not unpickle to a :class:`Request` or
    :class:`Response` raises :class:`MessageDecodeError` — garbage frames
    are a protocol violation, handled by dropping the connection.
    """
    try:
        message = pickle.loads(payload)
    except Exception as exc:
        raise MessageDecodeError(f"frame payload does not unpickle: {exc!r}") from exc
    if not isinstance(message, (Request, Response)):
        raise MessageDecodeError(
            f"frame payload decodes to {type(message).__name__}, "
            "not a Request or Response"
        )
    return message
