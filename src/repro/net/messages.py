"""RPC message types and their serialisation.

Two message kinds flow over the framed stream:

* :class:`Request` — ``(msg_id, service, method, args, kwargs)``.  The
  ``msg_id`` is the *correlation id*: responses may come back in any
  order (the server handles requests of one connection concurrently), so
  the client matches them by id, never by position.
* :class:`Response` — ``(msg_id, ok, value | error)``.  Application
  errors travel as the pickled exception *object* so the caller re-raises
  the original type (replica failover relies on catching
  ``ProviderUnavailableError`` from a stub exactly like from a local
  provider).  Unpicklable values or exceptions degrade to a
  :class:`~repro.net.errors.RemoteCallError` carrying their repr.

Serialisation is pickle (the segment files of the shuffle already commit
to pickle for on-storage data); the framing layer above bounds message
size, and decode failures surface as
:class:`~repro.net.errors.MessageDecodeError` so a garbage frame cannot
crash a server loop.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Any

from .errors import MessageDecodeError, RemoteCallError

__all__ = ["Request", "Response", "encode_message", "decode_message"]


@dataclass(frozen=True, slots=True)
class Request:
    """One method invocation on a named remote service."""

    msg_id: int
    service: str
    method: str
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)


@dataclass(frozen=True, slots=True)
class Response:
    """The outcome of one request, correlated by ``msg_id``."""

    msg_id: int
    ok: bool
    value: Any = None
    error: BaseException | None = None


def encode_message(message: Request | Response) -> bytes:
    """Serialise a message; unpicklable content degrades, never raises.

    A response whose value or error cannot be pickled is replaced by an
    error response carrying the repr — the caller gets a
    :class:`RemoteCallError` instead of the connection dying on a
    serialisation failure the remote side could not anticipate.
    """
    try:
        return pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        if isinstance(message, Response):
            fallback = Response(
                msg_id=message.msg_id,
                ok=False,
                error=RemoteCallError(
                    f"response not serialisable ({exc!r}); "
                    f"value/error was {message.value!r} / {message.error!r}"
                ),
            )
            return pickle.dumps(fallback, protocol=pickle.HIGHEST_PROTOCOL)
        raise MessageDecodeError(f"request not serialisable: {exc!r}") from exc


def decode_message(payload: bytes) -> Request | Response:
    """Deserialise one frame payload into a message.

    Anything that does not unpickle to a :class:`Request` or
    :class:`Response` raises :class:`MessageDecodeError` — garbage frames
    are a protocol violation, handled by dropping the connection.
    """
    try:
        message = pickle.loads(payload)
    except Exception as exc:
        raise MessageDecodeError(f"frame payload does not unpickle: {exc!r}") from exc
    if not isinstance(message, (Request, Response)):
        raise MessageDecodeError(
            f"frame payload decodes to {type(message).__name__}, "
            "not a Request or Response"
        )
    return message
