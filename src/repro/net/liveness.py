"""Failure detection: heartbeats, liveness registry, heartbeat pumps.

BlobSeer-style clusters never ask a node "are you alive?" — the node
proves it, periodically, by heartbeating the control endpoint.  The
:class:`LivenessRegistry` is that endpoint's memory: it records the last
beat of every node and declares a node **dead** once
``max_missed × heartbeat_interval`` elapses without one.  Death and
recovery fire callbacks (re-replication hooks, scheduler blacklisting);
a node that beats again after being declared dead is *recovered*, not
silently resurrected, so the control plane can reconcile its state
(e.g. via a fresh block report).

Three moving parts:

* :class:`LivenessRegistry` — the bookkeeping.  Pure and clock-injectable
  so tests drive time deterministically.
* :class:`LivenessMonitor` — a thread that periodically calls
  :meth:`LivenessRegistry.check` (the registry itself never spins).
* :class:`HeartbeatPump` — the node side: a thread that beats a control
  stub every interval and attaches a block report every *n*-th beat.
  Transport failures are swallowed — a pump must outlive a flaky link;
  the registry's timeout is the arbiter of death, not a client error.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Iterable

from .errors import NetError

__all__ = ["LivenessRegistry", "LivenessMonitor", "HeartbeatPump"]


class LivenessRegistry:
    """Heartbeat bookkeeping and dead/alive classification for a cluster."""

    def __init__(
        self,
        *,
        heartbeat_interval: float = 0.5,
        max_missed: int = 3,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")
        if max_missed < 1:
            raise ValueError("max_missed must be at least 1")
        self.heartbeat_interval = heartbeat_interval
        self.max_missed = max_missed
        self._clock = clock
        self._lock = threading.Lock()
        self._last_beat: dict[str, float] = {}
        self._dead: set[str] = set()
        self._meta: dict[str, dict[str, Any]] = {}
        self._on_death: list[Callable[[str], None]] = []
        self._on_recover: list[Callable[[str], None]] = []
        self._changed = threading.Condition(self._lock)
        #: Death events declared so far (monitoring/tests).
        self.deaths_declared = 0

    # -- callbacks ------------------------------------------------------------------
    def on_death(self, callback: Callable[[str], None]) -> None:
        """Run ``callback(node_id)`` when a node is declared dead."""
        with self._lock:
            self._on_death.append(callback)

    def on_recover(self, callback: Callable[[str], None]) -> None:
        """Run ``callback(node_id)`` when a dead node heartbeats again."""
        with self._lock:
            self._on_recover.append(callback)

    # -- node side ------------------------------------------------------------------
    def register(self, node_id: str, **meta: Any) -> None:
        """Start tracking ``node_id`` (counts as its first heartbeat)."""
        with self._lock:
            self._last_beat[node_id] = self._clock()
            self._meta[node_id] = dict(meta)
            self._dead.discard(node_id)
            self._changed.notify_all()

    def heartbeat(self, node_id: str) -> None:
        """Record one beat; auto-registers unknown nodes, revives dead ones."""
        recovered: list[Callable[[str], None]] = []
        with self._lock:
            self._last_beat[node_id] = self._clock()
            self._meta.setdefault(node_id, {})
            if node_id in self._dead:
                self._dead.discard(node_id)
                recovered = list(self._on_recover)
            self._changed.notify_all()
        for callback in recovered:
            callback(node_id)

    def block_report(self, node_id: str, block_ids: Iterable[Any]) -> None:
        """Record a full block report (counts as a heartbeat)."""
        blocks = list(block_ids)
        self.heartbeat(node_id)
        with self._lock:
            self._meta.setdefault(node_id, {})["blocks"] = blocks

    def deregister(self, node_id: str) -> None:
        """Stop tracking a node (clean shutdown — no death callback)."""
        with self._lock:
            self._last_beat.pop(node_id, None)
            self._meta.pop(node_id, None)
            self._dead.discard(node_id)
            self._changed.notify_all()

    # -- control side ----------------------------------------------------------------
    def check(self) -> list[str]:
        """Classify nodes; return those *newly* declared dead.

        Death callbacks run here, outside the lock, so a re-replication
        hook may itself query the registry.
        """
        deadline = self.max_missed * self.heartbeat_interval
        now = self._clock()
        newly_dead: list[str] = []
        with self._lock:
            for node_id, last in self._last_beat.items():
                if node_id not in self._dead and now - last > deadline:
                    self._dead.add(node_id)
                    self.deaths_declared += 1
                    newly_dead.append(node_id)
            callbacks = list(self._on_death)
            if newly_dead:
                self._changed.notify_all()
        for node_id in newly_dead:
            for callback in callbacks:
                callback(node_id)
        return newly_dead

    def is_alive(self, node_id: str) -> bool:
        """Whether ``node_id`` is tracked and not declared dead."""
        with self._lock:
            return node_id in self._last_beat and node_id not in self._dead

    def alive_nodes(self) -> list[str]:
        """Tracked nodes not declared dead."""
        with self._lock:
            return sorted(set(self._last_beat) - self._dead)

    def dead_nodes(self) -> list[str]:
        """Nodes currently declared dead."""
        with self._lock:
            return sorted(self._dead)

    def last_report(self, node_id: str) -> list[Any] | None:
        """The node's most recent block report, if it sent one."""
        with self._lock:
            meta = self._meta.get(node_id)
            blocks = None if meta is None else meta.get("blocks")
            return None if blocks is None else list(blocks)

    def await_death(self, node_id: str, timeout: float = 5.0) -> bool:
        """Block until ``node_id`` is declared dead (or ``timeout`` expires).

        Runs :meth:`check` itself while waiting, so it works without a
        :class:`LivenessMonitor` thread.
        """
        deadline = time.monotonic() + timeout
        while True:
            self.check()
            with self._lock:
                if node_id in self._dead or node_id not in self._last_beat:
                    return node_id in self._dead
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._changed.wait(min(remaining, self.heartbeat_interval / 2))


class LivenessMonitor:
    """Background thread periodically running ``registry.check()``."""

    def __init__(
        self, registry: LivenessRegistry, *, poll_interval: float | None = None
    ) -> None:
        self._registry = registry
        self._poll = (
            poll_interval
            if poll_interval is not None
            else registry.heartbeat_interval / 2
        )
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def start(self) -> "LivenessMonitor":
        if self._thread is not None:
            raise RuntimeError("monitor already started")
        self._thread = threading.Thread(
            target=self._run, name="liveness-monitor", daemon=True
        )
        self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.wait(self._poll):
            self._registry.check()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)

    def __enter__(self) -> "LivenessMonitor":
        return self.start() if self._thread is None else self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


class HeartbeatPump:
    """Node-side thread beating a control endpoint at a fixed interval.

    ``beat`` is any zero-argument callable performing one heartbeat RPC;
    ``report`` (optional) performs a block report and is used instead of
    ``beat`` every ``report_every``-th cycle, so the control plane's view
    of the node's blocks stays fresh without per-beat payloads.  An
    optional ``should_beat`` gate lets fault plans silence a pump (a dead
    process sends nothing).  Transport errors are counted and swallowed.
    """

    def __init__(
        self,
        beat: Callable[[], None],
        *,
        interval: float = 0.5,
        report: Callable[[], None] | None = None,
        report_every: int = 5,
        should_beat: Callable[[], bool] | None = None,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        if report_every < 1:
            raise ValueError("report_every must be at least 1")
        self._beat = beat
        self._report = report
        self._report_every = report_every
        self._should_beat = should_beat
        self.interval = interval
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        #: Beats sent / beats that failed at the transport (monitoring).
        self.beats_sent = 0
        self.beats_failed = 0

    def start(self) -> "HeartbeatPump":
        if self._thread is not None:
            raise RuntimeError("pump already started")
        self._thread = threading.Thread(
            target=self._run, name="heartbeat-pump", daemon=True
        )
        self._thread.start()
        return self

    def _run(self) -> None:
        cycle = 0
        while True:
            cycle += 1
            if self._should_beat is None or self._should_beat():
                use_report = (
                    self._report is not None and cycle % self._report_every == 0
                )
                try:
                    (self._report if use_report else self._beat)()
                    self.beats_sent += 1
                except NetError:
                    self.beats_failed += 1
            if self._stop.wait(self.interval):
                return

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)

    def __enter__(self) -> "HeartbeatPump":
        return self.start() if self._thread is None else self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
