"""TCP transport: asyncio RPC server + multiplexing client connections.

The server (:class:`RpcServer`) runs an asyncio event loop on a
dedicated thread.  Each connection is a framed stream received through
``asyncio.BufferedProtocol``: the shared
:class:`~repro.net.framing.ScatterParser` steers small data (headers,
segment tables, metadata ops) into a scratch buffer and bulk segments
straight into their own exactly-sized buffers, so a multi-MiB page is
written to memory once on receive.  Every decoded request is handled as
its own task (dispatch runs in the loop's default executor because
services are synchronous objects), so *many requests of one connection
execute concurrently* and responses return in completion order — the
correlation id, not arrival order, pairs them up.

The client (:class:`TcpTransport`) keeps a small per-peer connection
pool.  Each pooled connection multiplexes any number of in-flight calls:
a writer lock serialises frame writes (v2 frames leave through one
scatter-gather ``sendmsg``, bulk payloads uncopied), a background reader
thread demultiplexes responses to per-call events by ``msg_id``.
Connection failures fail all in-flight calls with
:class:`~repro.net.errors.PeerUnavailableError` and the next call
reconnects (the base class's retry policy provides the backoff).

Protocol negotiation is per connection: a fresh connection that wants v2
sends a v1-framed probe to the reserved ``__wire__`` pseudo-service.  A
v2 server intercepts it and answers with its capabilities; a v1 server
routes it through its registry, which answers with an
``UnknownServiceError`` *error response* — the connection survives and
the client simply stays on v1.  Downgrade is therefore free and
automatic in both directions.

Small-op batching is opt-in per transport (``batching=True``): queued
sub-threshold requests coalesce into one ``FLAG_BATCH`` frame.  The
flusher is group-commit clocked — the first batch goes out immediately,
and while its responses are outstanding the next batch accumulates, so
batch depth adapts to the number of concurrent callers without a tuned
timer.  A lone caller pays no added latency (its request bypasses the
queue entirely) and a storm of small metadata ops collapses into few
frames and syscalls.  The server
dispatches a batch frame's requests sequentially in one executor task
and coalesces their responses the same way, which is the throughput
trade the metadata channels want; calls that must not wait behind a
batch (long polls) pass ``no_batch=True``.
"""

from __future__ import annotations

import asyncio
import socket
import threading
import time
from collections import deque
from typing import Any

from .errors import (
    FrameError,
    FrameTooLargeError,
    MessageDecodeError,
    PeerUnavailableError,
    RemoteCallError,
    RpcTimeoutError,
)
from .faults import NetworkFaultPlan
from .framing import (
    DEFAULT_MAX_FRAME,
    FLAG_BATCH,
    PROTOCOL_V1,
    PROTOCOL_V2,
    ScatterParser,
    codec_names,
    encode_frame,
    encode_frame_v2,
    recv_frame,
)
from .messages import (
    Request,
    Response,
    decode_message,
    decode_message_v2,
    encode_message,
    encode_message_v2,
)
from .service import ServiceRegistry
from .transport import RetryPolicy, Transport, WireConfig

__all__ = ["RpcServer", "TcpTransport", "WIRE_SERVICE"]

_READ_CHUNK = 256 * 1024
#: Socket buffer size: holds a whole bulk payload so one send hands the
#: entire scatter list to the kernel without blocking or staging copies.
_SOCK_BUF = 1024 * 1024
#: Reserved pseudo-service name used by the protocol negotiation probe.
WIRE_SERVICE = "__wire__"
#: How long a fresh connection waits for the negotiation probe's answer.
_HELLO_TIMEOUT = 5.0
#: Upper bound on how long the flusher lets a batch accumulate behind an
#: outstanding one.  Normally the previous batch's responses clock the
#: next flush well before this; the cap only matters when a response is
#: lost (timeout), where it degrades group commit to windowed batching
#: instead of wedging the channel.
_GROUP_COMMIT_CAP = 0.02


def _tune_socket(sock: socket.socket) -> None:
    """Part of the v2 wire path: NODELAY for request/response latency,
    buffers deep enough that a whole bulk payload enters the kernel in
    one scatter-gather send.  Legacy (protocol 1) endpoints keep the OS
    defaults so v1 mode stays faithful to the original wire behaviour.
    """
    try:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_SNDBUF, _SOCK_BUF)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, _SOCK_BUF)
    except OSError:
        pass  # tuning is best-effort; the defaults still work


class RpcServer:
    """Asyncio TCP server dispatching framed requests to a registry."""

    def __init__(
        self,
        registry: ServiceRegistry,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_frame: int = DEFAULT_MAX_FRAME,
        wire: WireConfig | None = None,
        protocol: int | None = None,
    ) -> None:
        self._registry = registry
        self._host = host
        self._port = port
        self._max_frame = max_frame
        self._wire = wire if wire is not None else WireConfig.from_env()
        #: Highest protocol this server speaks.  ``protocol=1`` is the
        #: legacy mode: v2 frames are rejected as framing violations and
        #: the ``__wire__`` probe falls through to the registry (which
        #: answers "unknown service"), exactly like a pre-v2 build.
        self._protocol = protocol if protocol is not None else self._wire.protocol
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.AbstractServer | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._start_error: BaseException | None = None
        #: Live server-side connections (loop-thread access only).
        self._connections: set["_ServerConnection"] = set()
        #: Requests served since start (monitoring/tests).
        self.requests_served = 0
        #: Requests that arrived inside batch frames (monitoring/tests).
        self.batched_requests = 0
        #: Connections rejected for protocol violations (bad frames).
        self.protocol_errors = 0

    # -- lifecycle ------------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        """``(host, port)`` the server is bound to (after :meth:`start`)."""
        if not self._started.is_set() or self._server is None:
            raise RuntimeError("server is not running")
        return self._host, self._port

    def start(self) -> tuple[str, int]:
        """Bind and serve on a background event-loop thread."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._run_loop, name="rpc-server", daemon=True
        )
        self._thread.start()
        self._started.wait()
        if self._start_error is not None:
            raise self._start_error
        return self.address

    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)
        try:
            self._server = loop.run_until_complete(
                loop.create_server(
                    lambda: _ServerConnection(self), self._host, self._port
                )
            )
            bound = self._server.sockets[0].getsockname()
            self._host, self._port = bound[0], bound[1]
        except BaseException as exc:  # bind failure must reach start()
            self._start_error = exc
            self._started.set()
            loop.close()
            return
        self._started.set()
        try:
            loop.run_forever()
        finally:
            for task in asyncio.all_tasks(loop):
                task.cancel()
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    def stop(self) -> None:
        """Stop serving and join the loop thread (idempotent)."""
        loop, server = self._loop, self._server
        if loop is None or not loop.is_running():
            return

        def _shutdown() -> None:
            if server is not None:
                server.close()
            for connection in list(self._connections):
                connection.abort()
            loop.stop()

        loop.call_soon_threadsafe(_shutdown)
        if self._thread is not None:
            self._thread.join(timeout=5.0)

    def __enter__(self) -> "RpcServer":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- request handling --------------------------------------------------------------
    def _wire_hello(self, request: Request) -> Response:
        """Answer the negotiation probe with this server's capabilities."""
        return Response(
            msg_id=request.msg_id,
            ok=True,
            value={
                "versions": (PROTOCOL_V1, PROTOCOL_V2),
                "max_frame": self._max_frame,
                "codecs": codec_names(),
                "batch": True,
            },
        )

    def _dispatch(self, request: Request) -> Response:
        if request.service == WIRE_SERVICE and self._protocol >= PROTOCOL_V2:
            return self._wire_hello(request)
        return self._registry.dispatch(request)


class _ServerConnection(asyncio.BufferedProtocol):
    """One server-side connection: scatter receive, per-request tasks."""

    def __init__(self, server: RpcServer) -> None:
        self._server = server
        self._parser = ScatterParser(
            max_frame=server._max_frame,
            accept_v2=server._protocol >= PROTOCOL_V2,
        )
        self._scratch = memoryview(bytearray(_READ_CHUNK))
        self._direct = False
        self._transport: asyncio.Transport | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._writable: asyncio.Event | None = None

    # -- asyncio protocol hooks --------------------------------------------------------
    def connection_made(self, transport: asyncio.BaseTransport) -> None:
        self._transport = transport  # type: ignore[assignment]
        if self._server._protocol >= PROTOCOL_V2:
            sock = transport.get_extra_info("socket")
            if sock is not None:
                _tune_socket(sock)
        self._loop = asyncio.get_running_loop()
        self._writable = asyncio.Event()
        self._writable.set()
        self._server._connections.add(self)

    def connection_lost(self, exc: Exception | None) -> None:
        self._server._connections.discard(self)
        if self._writable is not None:
            self._writable.set()  # wake writers so their tasks can fail out

    def pause_writing(self) -> None:
        self._writable.clear()

    def resume_writing(self) -> None:
        self._writable.set()

    def eof_received(self) -> bool:
        return False  # close when the peer half-closes

    def get_buffer(self, sizehint: int) -> memoryview:
        target = self._parser.wants_direct()
        if target is not None:
            # A bulk segment is pending: receive straight into its
            # preallocated buffer — the payload is written once.
            self._direct = True
            return target
        self._direct = False
        return self._scratch

    def buffer_updated(self, nbytes: int) -> None:
        try:
            if self._direct:
                frames = self._parser.advance_direct(nbytes)
            else:
                frames = self._parser.feed(self._scratch[:nbytes])
        except FrameError:
            # Malformed stream: a framing violation poisons the whole
            # connection; drop it (in-flight tasks of this connection
            # still complete and write their responses before the close
            # below takes effect).
            self._server.protocol_errors += 1
            self._transport.close()
            return
        for frame in frames:
            if frame.version == PROTOCOL_V2 and frame.is_batch:
                self._loop.create_task(self._serve_batch(frame.segments))
                continue
            try:
                if frame.version == PROTOCOL_V1:
                    message = decode_message(frame.payload)
                else:
                    message = decode_message_v2(
                        frame.segments[0], list(frame.segments[1:])
                    )
            except MessageDecodeError:
                self._server.protocol_errors += 1
                continue
            if not isinstance(message, Request):
                self._server.protocol_errors += 1
                continue
            self._loop.create_task(self._serve_one(message, frame.version))

    def abort(self) -> None:
        if self._transport is not None:
            self._transport.abort()

    # -- serving -----------------------------------------------------------------------
    async def _serve_one(self, request: Request, version: int) -> None:
        # Services are synchronous objects; running dispatch on the
        # executor keeps slow handlers from stalling the event loop, and
        # gives one connection real request concurrency.  The wire hello
        # is answered inline — it must not queue behind slow handlers.
        if request.service == WIRE_SERVICE:
            response = self._server._dispatch(request)
        else:
            response = await self._loop.run_in_executor(
                None, self._server._dispatch, request
            )
        try:
            await self._write(self._encode_response(response, version))
            self._server.requests_served += 1
        except (ConnectionError, RuntimeError):
            pass  # client went away mid-response

    async def _serve_batch(self, segments: list[bytes]) -> None:
        server = self._server
        requests: list[Request] = []
        for segment in segments:
            try:
                message = decode_message(segment)
            except MessageDecodeError:
                server.protocol_errors += 1
                continue
            if isinstance(message, Request):
                requests.append(message)
            else:
                server.protocol_errors += 1
        if not requests:
            return

        def run() -> list[Response]:
            # One executor round for the whole batch: the client opted
            # into trading per-request concurrency for per-op overhead
            # on this channel (uniformly short metadata calls).
            return [server._dispatch(request) for request in requests]

        responses = await self._loop.run_in_executor(None, run)
        server.batched_requests += len(requests)
        wire_cfg = server._wire
        small: list[bytes] = []
        bulky: list[list] = []
        for response in responses:
            head, buffers = encode_message_v2(
                response, oob_threshold=wire_cfg.oob_threshold
            )
            if buffers or len(head) >= wire_cfg.batch_threshold:
                bulky.append(
                    encode_frame_v2(
                        [head, *buffers],
                        max_frame=server._max_frame,
                        compress_threshold=wire_cfg.compress_threshold,
                        codec=wire_cfg.compress_codec,
                    )
                )
            else:
                small.append(head)
        try:
            for start in range(0, len(small), wire_cfg.batch_max_ops):
                group = small[start : start + wire_cfg.batch_max_ops]
                await self._write(
                    encode_frame_v2(
                        group, flags=FLAG_BATCH, max_frame=server._max_frame
                    )
                )
            for parts in bulky:
                await self._write(parts)
            server.requests_served += len(requests)
        except (ConnectionError, RuntimeError):
            pass  # client went away mid-response

    def _encode_response(self, response: Response, version: int) -> list:
        try:
            if version >= PROTOCOL_V2:
                head, buffers = encode_message_v2(
                    response, oob_threshold=self._server._wire.oob_threshold
                )
                return encode_frame_v2(
                    [head, *buffers],
                    max_frame=self._server._max_frame,
                    compress_threshold=self._server._wire.compress_threshold,
                    codec=self._server._wire.compress_codec,
                )
            return [
                encode_frame(
                    encode_message(response), max_frame=self._server._max_frame
                )
            ]
        except FrameTooLargeError as exc:
            # An oversize response must not silently strand the caller
            # until timeout: degrade to an error response it can raise.
            fallback = Response(
                msg_id=response.msg_id,
                ok=False,
                error=RemoteCallError(f"response exceeds frame limit: {exc}"),
            )
            return self._encode_response(fallback, version)

    async def _write(self, parts: list) -> None:
        await self._writable.wait()
        if self._transport is None or self._transport.is_closing():
            raise ConnectionError("connection closed")
        # Write the scatter list part by part instead of writelines:
        # on 3.11 writelines joins its argument, re-copying every bulk
        # payload.  The loop has no await, so concurrent tasks still
        # cannot interleave frames.
        for part in parts:
            self._transport.write(part)


class _PendingCall:
    """One in-flight request awaiting its correlated response."""

    __slots__ = ("event", "response", "failure")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.response: Response | None = None
        self.failure: Exception | None = None


class _Connection:
    """One multiplexed client connection: send lock + reader thread."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        peer: str,
        max_frame: int,
        wire: WireConfig | None = None,
        want_protocol: int | None = None,
        batching: bool = False,
        owner: "TcpTransport | None" = None,
    ) -> None:
        self._peer = peer
        self._max_frame = max_frame
        self._wire = wire if wire is not None else WireConfig.from_env()
        self._owner = owner
        #: Protocol in force on this connection (negotiation may raise it).
        self.protocol = PROTOCOL_V1
        self._peer_codecs: tuple[str, ...] = ()
        try:
            self._sock = socket.create_connection((host, port), timeout=10.0)
        except OSError as exc:
            raise PeerUnavailableError(peer, repr(exc)) from exc
        self._sock.settimeout(None)
        want = want_protocol if want_protocol is not None else self._wire.protocol
        if want >= PROTOCOL_V2:
            _tune_socket(self._sock)
        self._send_lock = threading.Lock()
        self._pending_lock = threading.Lock()
        self._pending: dict[int, _PendingCall] = {}
        self._dead = False
        self._batching = False
        self._batch_cond = threading.Condition()
        self._batch_queue: deque[tuple[int, bytes]] = deque()
        self._batched_ids: set[int] = set()
        self._batched_in_flight = 0
        self._flusher: threading.Thread | None = None
        self._reader = threading.Thread(
            target=self._read_loop, name=f"rpc-client-{peer}", daemon=True
        )
        self._reader.start()
        if want >= PROTOCOL_V2:
            self._negotiate()
        if batching and self.protocol >= PROTOCOL_V2:
            self._batching = True
            self._flusher = threading.Thread(
                target=self._flush_loop, name=f"rpc-batch-{peer}", daemon=True
            )
            self._flusher.start()

    @property
    def alive(self) -> bool:
        return not self._dead

    @property
    def in_flight(self) -> int:
        with self._pending_lock:
            return len(self._pending)

    # -- negotiation -------------------------------------------------------------------
    def _negotiate(self) -> None:
        """Probe the peer for v2; any non-fatal failure means v1.

        The probe is a *v1-framed* request to the reserved ``__wire__``
        service, so a v1 server treats it as an ordinary unknown-service
        call and answers with an error response — the connection
        survives and this client simply stays on protocol v1.
        """
        probe = Request(msg_id=0, service=WIRE_SERVICE, method="describe")
        try:
            response = self.request(probe, _HELLO_TIMEOUT, no_batch=True)
        except PeerUnavailableError:
            raise  # the connection itself died: surface as a dial failure
        except RpcTimeoutError:
            return  # silent peer: assume v1, the stream is still clean
        if not response.ok or not isinstance(response.value, dict):
            return
        versions = tuple(response.value.get("versions", ()))
        if PROTOCOL_V2 in versions:
            self.protocol = PROTOCOL_V2
            self._peer_codecs = tuple(response.value.get("codecs", ()))

    def _compress_threshold(self) -> int | None:
        """The effective threshold: only codecs the peer declared count."""
        if self._wire.compress_threshold is None:
            return None
        if self._wire.compress_codec not in self._peer_codecs:
            return None
        return self._wire.compress_threshold

    # -- calling -----------------------------------------------------------------------
    def request(
        self, request: Request, timeout: float, *, no_batch: bool = False
    ) -> Response:
        """Send one request and block for its correlated response."""
        pending = _PendingCall()
        with self._pending_lock:
            if self._dead:
                raise PeerUnavailableError(self._peer, "connection lost")
            self._pending[request.msg_id] = pending
            in_flight = len(self._pending)
        try:
            self._send_request(request, no_batch=no_batch, in_flight=in_flight)
        except OSError as exc:
            self._fail_all(PeerUnavailableError(self._peer, repr(exc)))
            raise PeerUnavailableError(self._peer, repr(exc)) from exc
        if not pending.event.wait(timeout):
            with self._pending_lock:
                self._pending.pop(request.msg_id, None)
            raise RpcTimeoutError(
                f"call to {self._peer!r} timed out after {timeout:g}s "
                f"(msg_id={request.msg_id})"
            )
        if pending.failure is not None:
            raise pending.failure
        assert pending.response is not None
        return pending.response

    def _send_request(
        self, request: Request, *, no_batch: bool, in_flight: int
    ) -> None:
        if self.protocol >= PROTOCOL_V2:
            head, buffers = encode_message_v2(
                request, oob_threshold=self._wire.oob_threshold
            )
            if (
                self._batching
                and not no_batch
                and not buffers
                and len(head) < self._wire.batch_threshold
                and in_flight > 1
            ):
                # Another call is already in flight, so the channel's
                # latency is bounded by it anyway: queue this head for
                # the flusher and let it coalesce with its neighbours.
                with self._batch_cond:
                    self._batch_queue.append((request.msg_id, head))
                    self._batch_cond.notify()
                return
            self._sendmsg(
                encode_frame_v2(
                    [head, *buffers],
                    max_frame=self._max_frame,
                    compress_threshold=self._compress_threshold(),
                    codec=self._wire.compress_codec,
                )
            )
        else:
            wire = encode_frame(
                encode_message(request), max_frame=self._max_frame
            )
            with self._send_lock:
                self._sock.sendall(wire)

    def _sendmsg(self, parts: list) -> None:
        """Scatter-gather send: the bulk buffers go to the kernel as-is."""
        views = [memoryview(part) for part in parts]
        with self._send_lock:
            while views:
                sent = self._sock.sendmsg(views)
                while sent:
                    first = views[0]
                    if sent >= first.nbytes:
                        sent -= first.nbytes
                        views.pop(0)
                    else:
                        views[0] = first[sent:]
                        sent = 0

    # -- batching ----------------------------------------------------------------------
    def _flush_loop(self) -> None:
        """Group-commit batch flusher.

        The first batch goes out immediately.  While its responses are
        outstanding the queue keeps accumulating, and the *arrival of
        the last response* clocks the next flush — exactly the group
        commit discipline the metadata plane uses for publish.  Batch
        depth therefore adapts to the number of concurrent callers
        without a tuned timer.  ``_GROUP_COMMIT_CAP`` bounds the wait so
        a response lost to a timeout degrades the discipline to windowed
        batching instead of stalling the channel; a positive
        ``batch_window`` additionally waits for company when exactly one
        request is queued.
        """
        wire_cfg = self._wire
        while True:
            with self._batch_cond:
                while not self._batch_queue and not self._dead:
                    self._batch_cond.wait()
                if self._dead:
                    return
                deadline = time.monotonic() + _GROUP_COMMIT_CAP
                while (
                    self._batched_in_flight > 0
                    and not self._dead
                    and len(self._batch_queue) < wire_cfg.batch_max_ops
                ):
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        # A response went missing (timed out caller):
                        # write the stragglers off so the channel keeps
                        # flowing; late replies are dropped harmlessly.
                        self._batched_ids.clear()
                        self._batched_in_flight = 0
                        break
                    self._batch_cond.wait(remaining)
                if self._dead:
                    return
                if wire_cfg.batch_window > 0 and len(self._batch_queue) == 1:
                    self._batch_cond.wait(wire_cfg.batch_window)
                    if self._dead:
                        return
                batch: list[bytes] = []
                size = 0
                while self._batch_queue and len(batch) < wire_cfg.batch_max_ops:
                    msg_id, head = self._batch_queue[0]
                    if batch and size + len(head) > wire_cfg.batch_max_bytes:
                        break
                    self._batch_queue.popleft()
                    self._batched_ids.add(msg_id)
                    batch.append(head)
                    size += len(head)
                self._batched_in_flight += len(batch)
            try:
                self._sendmsg(
                    encode_frame_v2(
                        batch, flags=FLAG_BATCH, max_frame=self._max_frame
                    )
                )
            except OSError as exc:
                self._fail_all(PeerUnavailableError(self._peer, repr(exc)))
                return
            if self._owner is not None:
                self._owner.batches_sent += 1
                self._owner.requests_batched += len(batch)

    # -- receiving ---------------------------------------------------------------------
    def _read_loop(self) -> None:
        # Exact-framed reads: the stream layout is self-describing, so
        # each bulk segment arrives as one MSG_WAITALL read into its own
        # immutable bytes — zero user-space copies beyond the kernel's.
        try:
            while True:
                frame = recv_frame(self._sock, max_frame=self._max_frame)
                if frame is None:
                    raise ConnectionError("peer closed the connection")
                if frame.version == PROTOCOL_V2 and frame.is_batch:
                    self._deliver_batch(
                        [decode_message(segment) for segment in frame.segments]
                    )
                elif frame.version == PROTOCOL_V2:
                    self._deliver(
                        decode_message_v2(
                            frame.segments[0], list(frame.segments[1:])
                        )
                    )
                else:
                    self._deliver(decode_message(frame.payload))
        except Exception as exc:
            self._fail_all(PeerUnavailableError(self._peer, repr(exc)))

    def _deliver(self, message: Request | Response) -> None:
        if not isinstance(message, Response):
            raise MessageDecodeError("server sent a non-response message")
        with self._pending_lock:
            pending = self._pending.pop(message.msg_id, None)
        if pending is not None:  # late reply after timeout: drop
            pending.response = message
            pending.event.set()
        if self._flusher is not None:
            with self._batch_cond:
                if message.msg_id in self._batched_ids:
                    self._batched_ids.discard(message.msg_id)
                    self._batched_in_flight -= 1
                    if self._batched_in_flight == 0:
                        # Last response of the batch: clock the next flush.
                        self._batch_cond.notify()

    def _deliver_batch(self, messages: list[Request | Response]) -> None:
        """Deliver a coalesced response frame's messages in one pass.

        The batched-in-flight bookkeeping is settled under a single
        lock acquisition for the whole frame (rather than per message)
        and the flusher is woken once, after every caller's event is
        set — so it never races the wakeups it is about to clock on.
        """
        resolved: list[tuple[_PendingCall, Response]] = []
        with self._pending_lock:
            for message in messages:
                if not isinstance(message, Response):
                    raise MessageDecodeError(
                        "server sent a non-response message"
                    )
                pending = self._pending.pop(message.msg_id, None)
                if pending is not None:  # late reply after timeout: drop
                    resolved.append((pending, message))
        for pending, message in resolved:
            pending.response = message
            pending.event.set()
        if self._flusher is not None:
            with self._batch_cond:
                for message in messages:
                    if message.msg_id in self._batched_ids:
                        self._batched_ids.discard(message.msg_id)
                        self._batched_in_flight -= 1
                if self._batched_in_flight == 0:
                    self._batch_cond.notify()

    def _fail_all(self, error: Exception) -> None:
        with self._pending_lock:
            self._dead = True
            pending, self._pending = self._pending, {}
        with self._batch_cond:
            self._batch_cond.notify_all()
        for call in pending.values():
            call.failure = error
            call.event.set()
        try:
            self._sock.close()
        except OSError:
            pass

    def close(self) -> None:
        self._fail_all(PeerUnavailableError(self._peer, "connection closed"))


class TcpTransport(Transport):
    """Pooled, multiplexed TCP channel to one :class:`RpcServer`."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        peer: str | None = None,
        local: str = "client",
        timeout: float = 5.0,
        retry: RetryPolicy | None = None,
        faults: NetworkFaultPlan | None = None,
        pool_size: int = 2,
        max_frame: int = DEFAULT_MAX_FRAME,
        wire: WireConfig | None = None,
        protocol: int | None = None,
        batching: bool = False,
    ) -> None:
        if pool_size < 1:
            raise ValueError("pool_size must be at least 1")
        super().__init__(
            peer=peer if peer is not None else f"{host}:{port}",
            local=local,
            timeout=timeout,
            retry=retry,
            faults=faults,
        )
        self._host = host
        self._port = port
        self._pool_size = pool_size
        self._max_frame = max_frame
        self._wire = wire if wire is not None else WireConfig.from_env()
        self._protocol = protocol if protocol is not None else self._wire.protocol
        self._batching = batching
        self._pool_lock = threading.Lock()
        self._pool: list[_Connection] = []
        #: Batch frames sent across all connections (monitoring/tests).
        self.batches_sent = 0
        #: Requests that travelled inside batch frames (monitoring/tests).
        self.requests_batched = 0

    @property
    def negotiated_protocols(self) -> list[int]:
        """Per-pooled-connection protocol versions (monitoring/tests)."""
        with self._pool_lock:
            return [connection.protocol for connection in self._pool]

    def _checkout(self) -> _Connection:
        """Pick the least-loaded live connection, dialling up to the cap."""
        with self._pool_lock:
            if self._closed:
                raise PeerUnavailableError(self.peer, "transport closed")
            self._pool = [c for c in self._pool if c.alive]
            if self._pool and (
                len(self._pool) >= self._pool_size
                or min(c.in_flight for c in self._pool) == 0
            ):
                return min(self._pool, key=lambda c: c.in_flight)
            connection = _Connection(
                self._host,
                self._port,
                peer=self.peer,
                max_frame=self._max_frame,
                wire=self._wire,
                want_protocol=self._protocol,
                batching=self._batching,
                owner=self,
            )
            self._pool.append(connection)
            return connection

    def _call_once(
        self,
        service: str,
        method: str,
        args: tuple,
        kwargs: dict,
        timeout: float,
        *,
        no_batch: bool = False,
    ) -> Any:
        self._check_faults(self.local, self.peer, method)
        with self._pool_lock:
            msg_id = next(self._msg_ids)
        request = Request(
            msg_id=msg_id, service=service, method=method, args=args, kwargs=kwargs
        )
        response = self._checkout().request(request, timeout, no_batch=no_batch)
        self._check_faults(self.peer, self.local, method)
        return self._unwrap(response)

    def close(self) -> None:
        with self._pool_lock:
            self._closed = True
            pool, self._pool = self._pool, []
        for connection in pool:
            connection.close()
