"""TCP transport: asyncio RPC server + multiplexing client connections.

The server (:class:`RpcServer`) runs an asyncio event loop on a
dedicated thread.  Each connection is a framed stream; every decoded
request is handled as its own task (dispatch runs in the loop's default
executor because services are synchronous objects), so *many requests of
one connection execute concurrently* and responses return in completion
order — the correlation id, not arrival order, pairs them up.

The client (:class:`TcpTransport`) keeps a small per-peer connection
pool.  Each pooled connection multiplexes any number of in-flight calls:
a writer lock serialises frame writes, a background reader thread
demultiplexes responses to per-call events by ``msg_id``.  Connection
failures fail all in-flight calls with
:class:`~repro.net.errors.PeerUnavailableError` and the next call
reconnects (the base class's retry policy provides the backoff).
"""

from __future__ import annotations

import asyncio
import socket
import threading
from typing import Any

from .errors import (
    FrameError,
    MessageDecodeError,
    PeerUnavailableError,
    RpcTimeoutError,
)
from .faults import NetworkFaultPlan
from .framing import DEFAULT_MAX_FRAME, FrameDecoder, encode_frame
from .messages import Request, Response, decode_message, encode_message
from .service import ServiceRegistry
from .transport import RetryPolicy, Transport

__all__ = ["RpcServer", "TcpTransport"]

_READ_CHUNK = 256 * 1024


class RpcServer:
    """Asyncio TCP server dispatching framed requests to a registry."""

    def __init__(
        self,
        registry: ServiceRegistry,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_frame: int = DEFAULT_MAX_FRAME,
    ) -> None:
        self._registry = registry
        self._host = host
        self._port = port
        self._max_frame = max_frame
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.AbstractServer | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._start_error: BaseException | None = None
        #: Requests served since start (monitoring/tests).
        self.requests_served = 0
        #: Connections rejected for protocol violations (bad frames).
        self.protocol_errors = 0

    # -- lifecycle ------------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        """``(host, port)`` the server is bound to (after :meth:`start`)."""
        if not self._started.is_set() or self._server is None:
            raise RuntimeError("server is not running")
        return self._host, self._port

    def start(self) -> tuple[str, int]:
        """Bind and serve on a background event-loop thread."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._run_loop, name="rpc-server", daemon=True
        )
        self._thread.start()
        self._started.wait()
        if self._start_error is not None:
            raise self._start_error
        return self.address

    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)
        try:
            self._server = loop.run_until_complete(
                asyncio.start_server(self._handle_connection, self._host, self._port)
            )
            bound = self._server.sockets[0].getsockname()
            self._host, self._port = bound[0], bound[1]
        except BaseException as exc:  # bind failure must reach start()
            self._start_error = exc
            self._started.set()
            loop.close()
            return
        self._started.set()
        try:
            loop.run_forever()
        finally:
            for task in asyncio.all_tasks(loop):
                task.cancel()
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    def stop(self) -> None:
        """Stop serving and join the loop thread (idempotent)."""
        loop, server = self._loop, self._server
        if loop is None or not loop.is_running():
            return

        def _shutdown() -> None:
            if server is not None:
                server.close()
            loop.stop()

        loop.call_soon_threadsafe(_shutdown)
        if self._thread is not None:
            self._thread.join(timeout=5.0)

    def __enter__(self) -> "RpcServer":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- connection handling ----------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        decoder = FrameDecoder(max_frame=self._max_frame)
        write_lock = asyncio.Lock()
        loop = asyncio.get_running_loop()
        try:
            while True:
                data = await reader.read(_READ_CHUNK)
                if not data:
                    break
                try:
                    payloads = decoder.feed(data)
                except FrameError:
                    # Malformed stream: a framing violation poisons the
                    # whole connection; drop it (in-flight tasks of this
                    # connection still complete and write their responses
                    # before the close below takes effect).
                    self.protocol_errors += 1
                    break
                for payload in payloads:
                    loop.create_task(self._serve_one(payload, writer, write_lock))
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
            except Exception:
                pass

    async def _serve_one(
        self,
        payload: bytes,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        try:
            message = decode_message(payload)
        except MessageDecodeError:
            self.protocol_errors += 1
            return
        if not isinstance(message, Request):
            self.protocol_errors += 1
            return
        loop = asyncio.get_running_loop()
        # Services are synchronous objects; running dispatch on the
        # executor keeps slow handlers from stalling the event loop, and
        # gives one connection real request concurrency.
        response = await loop.run_in_executor(
            None, self._registry.dispatch, message
        )
        wire = encode_frame(encode_message(response), max_frame=self._max_frame)
        try:
            async with write_lock:
                writer.write(wire)
                await writer.drain()
            self.requests_served += 1
        except (ConnectionError, RuntimeError):
            pass  # client went away mid-response


class _PendingCall:
    """One in-flight request awaiting its correlated response."""

    __slots__ = ("event", "response", "failure")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.response: Response | None = None
        self.failure: Exception | None = None


class _Connection:
    """One multiplexed client connection: send lock + reader thread."""

    def __init__(self, host: str, port: int, *, peer: str, max_frame: int) -> None:
        self._peer = peer
        self._max_frame = max_frame
        try:
            self._sock = socket.create_connection((host, port), timeout=10.0)
        except OSError as exc:
            raise PeerUnavailableError(peer, repr(exc)) from exc
        self._sock.settimeout(None)
        self._send_lock = threading.Lock()
        self._pending_lock = threading.Lock()
        self._pending: dict[int, _PendingCall] = {}
        self._dead = False
        self._reader = threading.Thread(
            target=self._read_loop, name=f"rpc-client-{peer}", daemon=True
        )
        self._reader.start()

    @property
    def alive(self) -> bool:
        return not self._dead

    @property
    def in_flight(self) -> int:
        with self._pending_lock:
            return len(self._pending)

    def request(self, request: Request, timeout: float) -> Response:
        """Send one request and block for its correlated response."""
        pending = _PendingCall()
        with self._pending_lock:
            if self._dead:
                raise PeerUnavailableError(self._peer, "connection lost")
            self._pending[request.msg_id] = pending
        wire = encode_frame(encode_message(request), max_frame=self._max_frame)
        try:
            with self._send_lock:
                self._sock.sendall(wire)
        except OSError as exc:
            self._fail_all(PeerUnavailableError(self._peer, repr(exc)))
            raise PeerUnavailableError(self._peer, repr(exc)) from exc
        if not pending.event.wait(timeout):
            with self._pending_lock:
                self._pending.pop(request.msg_id, None)
            raise RpcTimeoutError(
                f"call to {self._peer!r} timed out after {timeout:g}s "
                f"(msg_id={request.msg_id})"
            )
        if pending.failure is not None:
            raise pending.failure
        assert pending.response is not None
        return pending.response

    def _read_loop(self) -> None:
        decoder = FrameDecoder(max_frame=self._max_frame)
        try:
            while True:
                data = self._sock.recv(_READ_CHUNK)
                if not data:
                    raise ConnectionError("peer closed the connection")
                for payload in decoder.feed(data):
                    message = decode_message(payload)
                    if not isinstance(message, Response):
                        raise MessageDecodeError(
                            "server sent a non-response message"
                        )
                    with self._pending_lock:
                        pending = self._pending.pop(message.msg_id, None)
                    if pending is not None:  # late reply after timeout: drop
                        pending.response = message
                        pending.event.set()
        except Exception as exc:
            self._fail_all(PeerUnavailableError(self._peer, repr(exc)))

    def _fail_all(self, error: Exception) -> None:
        with self._pending_lock:
            self._dead = True
            pending, self._pending = self._pending, {}
        for call in pending.values():
            call.failure = error
            call.event.set()
        try:
            self._sock.close()
        except OSError:
            pass

    def close(self) -> None:
        self._fail_all(PeerUnavailableError(self._peer, "connection closed"))


class TcpTransport(Transport):
    """Pooled, multiplexed TCP channel to one :class:`RpcServer`."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        peer: str | None = None,
        local: str = "client",
        timeout: float = 5.0,
        retry: RetryPolicy | None = None,
        faults: NetworkFaultPlan | None = None,
        pool_size: int = 2,
        max_frame: int = DEFAULT_MAX_FRAME,
    ) -> None:
        if pool_size < 1:
            raise ValueError("pool_size must be at least 1")
        super().__init__(
            peer=peer if peer is not None else f"{host}:{port}",
            local=local,
            timeout=timeout,
            retry=retry,
            faults=faults,
        )
        self._host = host
        self._port = port
        self._pool_size = pool_size
        self._max_frame = max_frame
        self._pool_lock = threading.Lock()
        self._pool: list[_Connection] = []

    def _checkout(self) -> _Connection:
        """Pick the least-loaded live connection, dialling up to the cap."""
        with self._pool_lock:
            if self._closed:
                raise PeerUnavailableError(self.peer, "transport closed")
            self._pool = [c for c in self._pool if c.alive]
            if self._pool and (
                len(self._pool) >= self._pool_size
                or min(c.in_flight for c in self._pool) == 0
            ):
                return min(self._pool, key=lambda c: c.in_flight)
            connection = _Connection(
                self._host, self._port, peer=self.peer, max_frame=self._max_frame
            )
            self._pool.append(connection)
            return connection

    def _call_once(
        self,
        service: str,
        method: str,
        args: tuple,
        kwargs: dict,
        timeout: float,
    ) -> Any:
        self._check_faults(self.local, self.peer, method)
        with self._pool_lock:
            msg_id = next(self._msg_ids)
        request = Request(
            msg_id=msg_id, service=service, method=method, args=args, kwargs=kwargs
        )
        response = self._checkout().request(request, timeout)
        self._check_faults(self.peer, self.local, method)
        return self._unwrap(response)

    def close(self) -> None:
        with self._pool_lock:
            self._closed = True
            pool, self._pool = self._pool, []
        for connection in pool:
            connection.close()
