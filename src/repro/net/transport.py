"""Client-side transports: how a stub reaches one peer.

A :class:`Transport` is a channel to exactly one peer (one node process,
or one loopback registry).  It owns the retry policy — transient
transport failures (:class:`~repro.net.errors.RpcTimeoutError`,
:class:`~repro.net.errors.PeerUnavailableError`) are retried with
exponential backoff, while *remote application exceptions* are re-raised
immediately and untouched, so a stub behaves like the local object it
mirrors.

Two implementations exist:

* :class:`LoopbackTransport` (here) — in-process: the request still
  round-trips through the full frame codec and message serialisation
  (same bytes as the wire, so loopback tests exercise the real protocol)
  but is dispatched synchronously.  It is the default everywhere because
  it keeps tier-1 fast and deterministic, and it honours a
  :class:`~repro.net.faults.NetworkFaultPlan` so partial-failure
  scenarios run without sockets.
* :class:`~repro.net.tcp.TcpTransport` — real sockets against an
  :class:`~repro.net.tcp.RpcServer`, for multi-process clusters.
"""

from __future__ import annotations

import itertools
import threading
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Iterator

from .errors import TransportError
from .faults import NetworkFaultPlan
from .framing import DEFAULT_MAX_FRAME, FrameDecoder, encode_frame
from .messages import Request, Response, decode_message, encode_message
from .service import ServiceRegistry

__all__ = ["RetryPolicy", "Transport", "LoopbackTransport"]


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Bounded exponential backoff for transient transport failures."""

    #: Additional attempts after the first (0 = never retry).
    retries: int = 2
    #: Sleep before the first retry, in seconds.
    backoff: float = 0.05
    #: Multiplier applied to the sleep between consecutive retries.
    backoff_factor: float = 2.0
    #: Ceiling on any single sleep.
    max_backoff: float = 1.0

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError("retries must be non-negative")
        if self.backoff < 0 or self.max_backoff < 0:
            raise ValueError("backoff values must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1.0")

    def delays(self) -> Iterator[float]:
        """The sleep before each retry, in order."""
        delay = self.backoff
        for _ in range(self.retries):
            yield min(delay, self.max_backoff)
            delay *= self.backoff_factor

    @classmethod
    def no_retry(cls) -> "RetryPolicy":
        """A policy that fails fast (used by heartbeats: the next beat
        *is* the retry)."""
        return cls(retries=0)


class Transport(ABC):
    """A request/response channel to one named peer."""

    def __init__(
        self,
        *,
        peer: str,
        local: str = "client",
        timeout: float = 5.0,
        retry: RetryPolicy | None = None,
        faults: NetworkFaultPlan | None = None,
    ) -> None:
        if timeout <= 0:
            raise ValueError("timeout must be positive")
        #: Name of the node this transport reaches (fault-plan address).
        self.peer = peer
        #: Name of the calling endpoint (fault-plan address).
        self.local = local
        self.timeout = timeout
        self.retry = retry if retry is not None else RetryPolicy()
        self.faults = faults
        self._msg_ids = itertools.count(1)
        self._closed = False
        #: Calls that needed at least one retry (monitoring/tests).
        self.calls_retried = 0

    # -- public API -----------------------------------------------------------------
    def call(
        self,
        service: str,
        method: str,
        *args: Any,
        timeout: float | None = None,
        **kwargs: Any,
    ) -> Any:
        """Invoke ``service.method(*args, **kwargs)`` on the peer.

        Transient transport failures are retried per the policy; remote
        application exceptions are re-raised unchanged and never retried.
        """
        timeout = timeout if timeout is not None else self.timeout
        last: TransportError | None = None
        for attempt, delay in enumerate(
            itertools.chain([None], self.retry.delays())
        ):
            if delay is not None:
                self.calls_retried += attempt == 1
                time.sleep(delay)
            try:
                return self._call_once(service, method, args, kwargs, timeout)
            except TransportError as exc:
                last = exc
        assert last is not None
        raise last

    def close(self) -> None:
        """Release the channel's resources (idempotent)."""
        self._closed = True

    def __enter__(self) -> "Transport":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- per-implementation ----------------------------------------------------------
    @abstractmethod
    def _call_once(
        self,
        service: str,
        method: str,
        args: tuple,
        kwargs: dict,
        timeout: float,
    ) -> Any:
        """One request/response exchange; raises
        :class:`TransportError` on delivery failure."""

    # -- shared helpers ---------------------------------------------------------------
    def _check_faults(self, src: str, dst: str, method: str | None) -> None:
        if self.faults is not None:
            self.faults.on_message(src, dst, method=method)

    @staticmethod
    def _unwrap(response: Response) -> Any:
        """Return the response value or re-raise the remote exception."""
        if response.ok:
            return response.value
        error = response.error
        if isinstance(error, BaseException):
            raise error
        raise TransportError(f"malformed error response: {error!r}")


class LoopbackTransport(Transport):
    """In-process transport with full codec fidelity.

    Every call is encoded to wire bytes, re-decoded, dispatched against
    the registry, and the response round-trips the same way — so the
    loopback path and the TCP path disagree only in where the bytes
    travel.  Dispatch is synchronous on the caller's thread, keeping
    tier-1 deterministic.
    """

    def __init__(
        self,
        registry: ServiceRegistry,
        *,
        peer: str = "loopback",
        local: str = "client",
        timeout: float = 5.0,
        retry: RetryPolicy | None = None,
        faults: NetworkFaultPlan | None = None,
        max_frame: int = DEFAULT_MAX_FRAME,
    ) -> None:
        super().__init__(
            peer=peer, local=local, timeout=timeout, retry=retry, faults=faults
        )
        self._registry = registry
        self._max_frame = max_frame
        self._lock = threading.Lock()
        #: Round-trips served (monitoring/tests).
        self.calls_served = 0

    def _call_once(
        self,
        service: str,
        method: str,
        args: tuple,
        kwargs: dict,
        timeout: float,
    ) -> Any:
        with self._lock:
            msg_id = next(self._msg_ids)
        request = Request(
            msg_id=msg_id, service=service, method=method, args=args, kwargs=kwargs
        )
        # Request direction: encode, apply faults, decode, dispatch.
        wire = encode_frame(encode_message(request), max_frame=self._max_frame)
        self._check_faults(self.local, self.peer, method)
        decoder = FrameDecoder(max_frame=self._max_frame)
        (payload,) = decoder.feed(wire)
        decoded = decode_message(payload)
        assert isinstance(decoded, Request)
        response = self._registry.dispatch(decoded)
        # Response direction: encode, apply faults, decode, unwrap.
        wire = encode_frame(encode_message(response), max_frame=self._max_frame)
        self._check_faults(self.peer, self.local, method)
        (payload,) = FrameDecoder(max_frame=self._max_frame).feed(wire)
        returned = decode_message(payload)
        assert isinstance(returned, Response) and returned.msg_id == msg_id
        with self._lock:
            self.calls_served += 1
        return self._unwrap(returned)
