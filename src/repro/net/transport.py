"""Client-side transports: how a stub reaches one peer.

A :class:`Transport` is a channel to exactly one peer (one node process,
or one loopback registry).  It owns the retry policy — transient
transport failures (:class:`~repro.net.errors.RpcTimeoutError`,
:class:`~repro.net.errors.PeerUnavailableError`) are retried with
exponential backoff, while *remote application exceptions* are re-raised
immediately and untouched, so a stub behaves like the local object it
mirrors.

Two implementations exist:

* :class:`LoopbackTransport` (here) — in-process: the request still
  round-trips through the full frame codec and message serialisation
  (same bytes as the wire, so loopback tests exercise the real protocol)
  but is dispatched synchronously.  It is the default everywhere because
  it keeps tier-1 fast and deterministic, and it honours a
  :class:`~repro.net.faults.NetworkFaultPlan` so partial-failure
  scenarios run without sockets.
* :class:`~repro.net.tcp.TcpTransport` — real sockets against an
  :class:`~repro.net.tcp.RpcServer`, for multi-process clusters.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Iterator

from .errors import TransportError
from .faults import NetworkFaultPlan
from .framing import (
    DEFAULT_MAX_FRAME,
    PROTOCOL_V1,
    PROTOCOL_V2,
    FrameDecoder,
    encode_frame,
    encode_frame_v2,
)
from .messages import (
    DEFAULT_OOB_THRESHOLD,
    Request,
    Response,
    decode_message,
    decode_message_v2,
    encode_message,
    encode_message_v2,
)
from .service import ServiceRegistry

__all__ = ["RetryPolicy", "WireConfig", "Transport", "LoopbackTransport"]


@dataclass(frozen=True, slots=True)
class WireConfig:
    """Wire-protocol knobs shared by both transports and the server.

    The default protocol comes from ``REPRO_WIRE_PROTOCOL`` (``1`` or
    ``2``, default ``2``) so the whole test matrix can be flipped from
    the environment without touching call sites.
    """

    #: Preferred protocol version (negotiation may still settle on v1).
    protocol: int = PROTOCOL_V2
    #: Bytes payloads at least this large travel out-of-band under v2.
    oob_threshold: int = DEFAULT_OOB_THRESHOLD
    #: Extra seconds a lone queued request may wait for company before
    #: its batch frame is flushed (0 = flush immediately; batching still
    #: coalesces naturally while a previous flush is in flight).
    batch_window: float = 0.0
    #: Ceiling on requests coalesced into one batch frame.
    batch_max_ops: int = 64
    #: Ceiling on a batch frame's summed payload bytes.
    batch_max_bytes: int = 128 * 1024
    #: Only messages encoding below this many bytes are batched.
    batch_threshold: int = 2048
    #: Compress segments of at least this many bytes (None = never).
    compress_threshold: int | None = None
    #: Segment codec used when compression triggers.
    compress_codec: str = "zlib"

    def __post_init__(self) -> None:
        if self.protocol not in (PROTOCOL_V1, PROTOCOL_V2):
            raise ValueError(f"unknown wire protocol {self.protocol}")
        if self.oob_threshold < 1:
            raise ValueError("oob_threshold must be positive")
        if self.batch_window < 0:
            raise ValueError("batch_window must be non-negative")
        if self.batch_max_ops < 1 or self.batch_max_bytes < 1:
            raise ValueError("batch limits must be positive")
        if self.batch_threshold < 1:
            raise ValueError("batch_threshold must be positive")
        if self.compress_threshold is not None and self.compress_threshold < 1:
            raise ValueError("compress_threshold must be positive")

    @classmethod
    def from_env(cls, **overrides: Any) -> "WireConfig":
        """Build a config honouring ``REPRO_WIRE_PROTOCOL``."""
        if "protocol" not in overrides:
            raw = os.environ.get("REPRO_WIRE_PROTOCOL", "").strip()
            if raw:
                try:
                    overrides["protocol"] = int(raw)
                except ValueError:
                    raise ValueError(
                        f"REPRO_WIRE_PROTOCOL must be 1 or 2, got {raw!r}"
                    ) from None
        return cls(**overrides)


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Bounded exponential backoff for transient transport failures."""

    #: Additional attempts after the first (0 = never retry).
    retries: int = 2
    #: Sleep before the first retry, in seconds.
    backoff: float = 0.05
    #: Multiplier applied to the sleep between consecutive retries.
    backoff_factor: float = 2.0
    #: Ceiling on any single sleep.
    max_backoff: float = 1.0

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError("retries must be non-negative")
        if self.backoff < 0 or self.max_backoff < 0:
            raise ValueError("backoff values must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1.0")

    def delays(self) -> Iterator[float]:
        """The sleep before each retry, in order."""
        delay = self.backoff
        for _ in range(self.retries):
            yield min(delay, self.max_backoff)
            delay *= self.backoff_factor

    @classmethod
    def no_retry(cls) -> "RetryPolicy":
        """A policy that fails fast (used by heartbeats: the next beat
        *is* the retry)."""
        return cls(retries=0)


class Transport(ABC):
    """A request/response channel to one named peer."""

    def __init__(
        self,
        *,
        peer: str,
        local: str = "client",
        timeout: float = 5.0,
        retry: RetryPolicy | None = None,
        faults: NetworkFaultPlan | None = None,
    ) -> None:
        if timeout <= 0:
            raise ValueError("timeout must be positive")
        #: Name of the node this transport reaches (fault-plan address).
        self.peer = peer
        #: Name of the calling endpoint (fault-plan address).
        self.local = local
        self.timeout = timeout
        self.retry = retry if retry is not None else RetryPolicy()
        self.faults = faults
        self._msg_ids = itertools.count(1)
        self._closed = False
        #: Calls that needed at least one retry (monitoring/tests).
        self.calls_retried = 0

    # -- public API -----------------------------------------------------------------
    def call(
        self,
        service: str,
        method: str,
        *args: Any,
        timeout: float | None = None,
        no_batch: bool = False,
        **kwargs: Any,
    ) -> Any:
        """Invoke ``service.method(*args, **kwargs)`` on the peer.

        Transient transport failures are retried per the policy; remote
        application exceptions are re-raised unchanged and never retried.
        ``no_batch`` exempts this call from small-op coalescing on
        transports that batch (long-poll calls must not delay a batch
        flush, nor wait in one) — it is consumed here, never forwarded.
        """
        timeout = timeout if timeout is not None else self.timeout
        last: TransportError | None = None
        for attempt, delay in enumerate(
            itertools.chain([None], self.retry.delays())
        ):
            if delay is not None:
                self.calls_retried += attempt == 1
                time.sleep(delay)
            try:
                return self._call_once(
                    service, method, args, kwargs, timeout, no_batch=no_batch
                )
            except TransportError as exc:
                last = exc
        assert last is not None
        raise last

    def close(self) -> None:
        """Release the channel's resources (idempotent)."""
        self._closed = True

    def __enter__(self) -> "Transport":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- per-implementation ----------------------------------------------------------
    @abstractmethod
    def _call_once(
        self,
        service: str,
        method: str,
        args: tuple,
        kwargs: dict,
        timeout: float,
        *,
        no_batch: bool = False,
    ) -> Any:
        """One request/response exchange; raises
        :class:`TransportError` on delivery failure."""

    # -- shared helpers ---------------------------------------------------------------
    def _check_faults(self, src: str, dst: str, method: str | None) -> None:
        if self.faults is not None:
            self.faults.on_message(src, dst, method=method)

    @staticmethod
    def _unwrap(response: Response) -> Any:
        """Return the response value or re-raise the remote exception."""
        if response.ok:
            return response.value
        error = response.error
        if isinstance(error, BaseException):
            raise error
        raise TransportError(f"malformed error response: {error!r}")


class LoopbackTransport(Transport):
    """In-process transport with full codec fidelity.

    Every call is encoded to wire bytes, re-decoded, dispatched against
    the registry, and the response round-trips the same way — so the
    loopback path and the TCP path disagree only in where the bytes
    travel.  Dispatch is synchronous on the caller's thread, keeping
    tier-1 deterministic.
    """

    def __init__(
        self,
        registry: ServiceRegistry,
        *,
        peer: str = "loopback",
        local: str = "client",
        timeout: float = 5.0,
        retry: RetryPolicy | None = None,
        faults: NetworkFaultPlan | None = None,
        max_frame: int = DEFAULT_MAX_FRAME,
        wire: WireConfig | None = None,
        protocol: int | None = None,
    ) -> None:
        super().__init__(
            peer=peer, local=local, timeout=timeout, retry=retry, faults=faults
        )
        self._registry = registry
        self._max_frame = max_frame
        self._wire = wire if wire is not None else WireConfig.from_env()
        self._protocol = protocol if protocol is not None else self._wire.protocol
        self._lock = threading.Lock()
        # One decoder for the transport's lifetime (its state is always
        # at a frame boundary between calls); serialized by ``_lock``.
        self._decoder = FrameDecoder(max_frame=max_frame, accept_v2=True)
        #: Round-trips served (monitoring/tests).
        self.calls_served = 0

    def _codec_round_trip(self, message: Request | Response):
        """Encode ``message`` to wire bytes and decode them back.

        The same codec path as TCP, minus the socket: v2 messages go
        through out-of-band extraction, scatter-gather framing (the
        parts are joined here — that join *is* the simulated wire) and
        segment-table decode on the shared decoder.
        """
        if self._protocol >= PROTOCOL_V2:
            head, buffers = encode_message_v2(
                message, oob_threshold=self._wire.oob_threshold
            )
            parts = encode_frame_v2(
                [head, *buffers],
                max_frame=self._max_frame,
                compress_threshold=self._wire.compress_threshold,
                codec=self._wire.compress_codec,
            )
            with self._lock:
                (frame,) = self._decoder.feed_frames(b"".join(parts))
            return decode_message_v2(
                frame.segments[0], list(frame.segments[1:])
            )
        wire = encode_frame(encode_message(message), max_frame=self._max_frame)
        with self._lock:
            (frame,) = self._decoder.feed_frames(wire)
        return decode_message(frame.payload)

    def _call_once(
        self,
        service: str,
        method: str,
        args: tuple,
        kwargs: dict,
        timeout: float,
        *,
        no_batch: bool = False,
    ) -> Any:
        with self._lock:
            msg_id = next(self._msg_ids)
        request = Request(
            msg_id=msg_id, service=service, method=method, args=args, kwargs=kwargs
        )
        # Request direction: encode, apply faults, decode, dispatch.
        self._check_faults(self.local, self.peer, method)
        decoded = self._codec_round_trip(request)
        assert isinstance(decoded, Request)
        response = self._registry.dispatch(decoded)
        # Response direction: encode, apply faults, decode, unwrap.
        self._check_faults(self.peer, self.local, method)
        returned = self._codec_round_trip(response)
        assert isinstance(returned, Response) and returned.msg_id == msg_id
        with self._lock:
            self.calls_served += 1
        return self._unwrap(returned)
