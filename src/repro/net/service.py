"""Server-side service registry and request dispatch.

A *service* is any plain object registered under a name: the dispatcher
resolves ``request.method`` to a public attribute, calls it (or reads it,
when it is a plain attribute or property — stubs use this to mirror
``provider_id`` / ``host`` / ``available`` without per-class adapters)
and wraps the outcome in a :class:`~repro.net.messages.Response`.

Application exceptions are captured into the response — the server loop
never dies on a failing handler — while private attributes and unknown
names come back as :class:`~repro.net.errors.UnknownServiceError`.
"""

from __future__ import annotations

import threading

from .errors import UnknownServiceError
from .messages import Request, Response

__all__ = ["ServiceRegistry"]


class ServiceRegistry:
    """Named services exposed by one node, plus the dispatch logic."""

    def __init__(self) -> None:
        self._services: dict[str, object] = {}
        self._lock = threading.Lock()

    def register(self, name: str, service: object) -> None:
        """Expose ``service`` under ``name`` (replaces a previous one)."""
        if not name:
            raise ValueError("a service needs a non-empty name")
        with self._lock:
            self._services[name] = service

    def unregister(self, name: str) -> None:
        """Stop exposing ``name`` (idempotent)."""
        with self._lock:
            self._services.pop(name, None)

    def get(self, name: str) -> object:
        """The object registered under ``name``."""
        with self._lock:
            try:
                return self._services[name]
            except KeyError:
                raise UnknownServiceError(f"no service named {name!r}") from None

    @property
    def service_names(self) -> list[str]:
        """Names of every exposed service."""
        with self._lock:
            return sorted(self._services)

    def dispatch(self, request: Request) -> Response:
        """Execute one request and return its response (never raises).

        ``method`` must name a public attribute of the service: a callable
        is invoked with the request's arguments, a non-callable is read
        (argument-less attribute access, used by stubs for identity and
        availability fields).
        """
        try:
            service = self.get(request.service)
            if request.method.startswith("_"):
                raise UnknownServiceError(
                    f"method {request.method!r} of service "
                    f"{request.service!r} is not public"
                )
            try:
                attribute = getattr(service, request.method)
            except AttributeError:
                raise UnknownServiceError(
                    f"service {request.service!r} has no method "
                    f"{request.method!r}"
                ) from None
            if callable(attribute):
                value = attribute(*request.args, **request.kwargs)
            else:
                value = attribute
            return Response(msg_id=request.msg_id, ok=True, value=value)
        except Exception as exc:
            return Response(msg_id=request.msg_id, ok=False, error=exc)
