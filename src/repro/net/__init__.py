"""repro.net: the service layer — RPC, heartbeats, failure detection.

The functional layer's nodes (data providers, HDFS datanodes) are plain
objects; this package puts them behind a message protocol so a
deployment can span processes without changing any caller:

* :mod:`~repro.net.framing` / :mod:`~repro.net.messages` — the wire
  formats: length-prefixed frames carrying pickled request/response
  messages with correlation ids (protocol v1), and the scatter-gather
  v2 layout whose segment table lets bulk payloads travel out-of-band,
  small ops coalesce into batch frames, and fat segments compress above
  a threshold.
* :mod:`~repro.net.transport` / :mod:`~repro.net.tcp` — client channels:
  an in-process loopback (full codec fidelity, deterministic) and a real
  TCP transport with connection pooling and multiplexing, both with
  retry/backoff for transient failures.
* :mod:`~repro.net.service` — the server side: named services and
  dispatch.
* :mod:`~repro.net.stubs` — duck-typed remote providers/datanodes the
  replication and filesystem layers use unchanged.
* :mod:`~repro.net.liveness` — heartbeats, the liveness registry and the
  missed-heartbeat failure detector.
* :mod:`~repro.net.cluster` — node harness, control service and the
  recovery coordinator that re-replicates a dead node's data.
* :mod:`~repro.net.faults` — wire-level fault injection (kill, drop,
  delay, partition) for chaos tests on the loopback path.
"""

from .cluster import (
    CONTROL_SERVICE,
    ClusterConfig,
    ControlService,
    NodeServer,
    RecoveryCoordinator,
    connect_datanode,
    connect_jobservice,
    connect_metadata,
    connect_provider,
    loopback_datanode_stub,
    loopback_jobservice_stub,
    loopback_metadata_stub,
    loopback_provider_stub,
)
from .errors import (
    FrameError,
    FrameTooLargeError,
    MessageDecodeError,
    NetError,
    PeerUnavailableError,
    RemoteCallError,
    RpcTimeoutError,
    TransportError,
    TruncatedFrameError,
    UnknownServiceError,
)
from .faults import NetworkFaultPlan
from .framing import (
    DEFAULT_MAX_FRAME,
    FLAG_BATCH,
    PROTOCOL_V1,
    PROTOCOL_V2,
    Frame,
    FrameDecoder,
    ScatterParser,
    encode_frame,
    encode_frame_v2,
    register_segment_codec,
)
from .liveness import HeartbeatPump, LivenessMonitor, LivenessRegistry
from .messages import (
    Request,
    Response,
    decode_message,
    decode_message_v2,
    encode_message,
    encode_message_v2,
)
from .service import ServiceRegistry
from .stubs import (
    RemoteDataNode,
    RemoteDataProvider,
    RemoteJobService,
    RemoteMetadataProvider,
)
from .tcp import WIRE_SERVICE, RpcServer, TcpTransport
from .transport import LoopbackTransport, RetryPolicy, Transport, WireConfig

__all__ = [
    # errors
    "NetError",
    "FrameError",
    "FrameTooLargeError",
    "TruncatedFrameError",
    "MessageDecodeError",
    "TransportError",
    "RpcTimeoutError",
    "PeerUnavailableError",
    "RemoteCallError",
    "UnknownServiceError",
    # wire format
    "encode_frame",
    "encode_frame_v2",
    "FrameDecoder",
    "ScatterParser",
    "Frame",
    "FLAG_BATCH",
    "PROTOCOL_V1",
    "PROTOCOL_V2",
    "register_segment_codec",
    "DEFAULT_MAX_FRAME",
    "Request",
    "Response",
    "encode_message",
    "decode_message",
    "encode_message_v2",
    "decode_message_v2",
    # transports and services
    "Transport",
    "LoopbackTransport",
    "TcpTransport",
    "WireConfig",
    "RetryPolicy",
    "ServiceRegistry",
    "RpcServer",
    "WIRE_SERVICE",
    # stubs
    "RemoteDataProvider",
    "RemoteDataNode",
    "RemoteMetadataProvider",
    "RemoteJobService",
    # liveness
    "LivenessRegistry",
    "LivenessMonitor",
    "HeartbeatPump",
    # cluster
    "CONTROL_SERVICE",
    "ClusterConfig",
    "ControlService",
    "NodeServer",
    "RecoveryCoordinator",
    "loopback_provider_stub",
    "loopback_datanode_stub",
    "loopback_metadata_stub",
    "loopback_jobservice_stub",
    "connect_provider",
    "connect_datanode",
    "connect_metadata",
    "connect_jobservice",
    # faults
    "NetworkFaultPlan",
]
