"""repro.net: the service layer — RPC, heartbeats, failure detection.

The functional layer's nodes (data providers, HDFS datanodes) are plain
objects; this package puts them behind a message protocol so a
deployment can span processes without changing any caller:

* :mod:`~repro.net.framing` / :mod:`~repro.net.messages` — the wire
  format: length-prefixed frames carrying pickled request/response
  messages with correlation ids.
* :mod:`~repro.net.transport` / :mod:`~repro.net.tcp` — client channels:
  an in-process loopback (full codec fidelity, deterministic) and a real
  TCP transport with connection pooling and multiplexing, both with
  retry/backoff for transient failures.
* :mod:`~repro.net.service` — the server side: named services and
  dispatch.
* :mod:`~repro.net.stubs` — duck-typed remote providers/datanodes the
  replication and filesystem layers use unchanged.
* :mod:`~repro.net.liveness` — heartbeats, the liveness registry and the
  missed-heartbeat failure detector.
* :mod:`~repro.net.cluster` — node harness, control service and the
  recovery coordinator that re-replicates a dead node's data.
* :mod:`~repro.net.faults` — wire-level fault injection (kill, drop,
  delay, partition) for chaos tests on the loopback path.
"""

from .cluster import (
    CONTROL_SERVICE,
    ClusterConfig,
    ControlService,
    NodeServer,
    RecoveryCoordinator,
    connect_datanode,
    connect_jobservice,
    connect_metadata,
    connect_provider,
    loopback_datanode_stub,
    loopback_jobservice_stub,
    loopback_metadata_stub,
    loopback_provider_stub,
)
from .errors import (
    FrameError,
    FrameTooLargeError,
    MessageDecodeError,
    NetError,
    PeerUnavailableError,
    RemoteCallError,
    RpcTimeoutError,
    TransportError,
    TruncatedFrameError,
    UnknownServiceError,
)
from .faults import NetworkFaultPlan
from .framing import DEFAULT_MAX_FRAME, FrameDecoder, encode_frame
from .liveness import HeartbeatPump, LivenessMonitor, LivenessRegistry
from .messages import Request, Response, decode_message, encode_message
from .service import ServiceRegistry
from .stubs import (
    RemoteDataNode,
    RemoteDataProvider,
    RemoteJobService,
    RemoteMetadataProvider,
)
from .tcp import RpcServer, TcpTransport
from .transport import LoopbackTransport, RetryPolicy, Transport

__all__ = [
    # errors
    "NetError",
    "FrameError",
    "FrameTooLargeError",
    "TruncatedFrameError",
    "MessageDecodeError",
    "TransportError",
    "RpcTimeoutError",
    "PeerUnavailableError",
    "RemoteCallError",
    "UnknownServiceError",
    # wire format
    "encode_frame",
    "FrameDecoder",
    "DEFAULT_MAX_FRAME",
    "Request",
    "Response",
    "encode_message",
    "decode_message",
    # transports and services
    "Transport",
    "LoopbackTransport",
    "TcpTransport",
    "RetryPolicy",
    "ServiceRegistry",
    "RpcServer",
    # stubs
    "RemoteDataProvider",
    "RemoteDataNode",
    "RemoteMetadataProvider",
    "RemoteJobService",
    # liveness
    "LivenessRegistry",
    "LivenessMonitor",
    "HeartbeatPump",
    # cluster
    "CONTROL_SERVICE",
    "ClusterConfig",
    "ControlService",
    "NodeServer",
    "RecoveryCoordinator",
    "loopback_provider_stub",
    "loopback_datanode_stub",
    "loopback_metadata_stub",
    "loopback_jobservice_stub",
    "connect_provider",
    "connect_datanode",
    "connect_metadata",
    "connect_jobservice",
    # faults
    "NetworkFaultPlan",
]
