"""Cluster plumbing: node harness, control service, recovery coordinator.

This module assembles the service layer's pieces into the deployment
shapes the tests and ``scripts/run_node.py`` use:

* :class:`NodeServer` — the *worker process* harness.  It exposes one
  storage node (a :class:`~repro.core.provider.DataProvider` or an HDFS
  :class:`~repro.hdfs.datanode.DataNode`) through an
  :class:`~repro.net.tcp.RpcServer`, registers with the control endpoint,
  and keeps a :class:`~repro.net.liveness.HeartbeatPump` running — with a
  full block report attached every *n*-th beat.
* :class:`ControlService` — the *head process* RPC surface receiving
  those heartbeats and reports into a
  :class:`~repro.net.liveness.LivenessRegistry`.
* :class:`RecoveryCoordinator` — subscribes to death events and performs
  the BlobSeer reaction: deregister the dead node (idempotently) and
  re-replicate what it held — ``BlobSeer.repair`` per blob for
  providers, ``NameNode.handle_dead_datanode`` for datanodes.
* :func:`loopback_provider_stub` / :func:`loopback_datanode_stub` — the
  single-process deployment: the same stub/service/codec path as TCP,
  with a :class:`~repro.net.faults.NetworkFaultPlan` standing in for
  real network failures.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

from .errors import NetError
from .faults import NetworkFaultPlan
from .liveness import HeartbeatPump, LivenessMonitor, LivenessRegistry
from .service import ServiceRegistry
from .stubs import (
    DATANODE_SERVICE,
    JOBSERVICE_SERVICE,
    METADATA_SERVICE,
    PROVIDER_SERVICE,
    RemoteDataNode,
    RemoteDataProvider,
    RemoteJobService,
    RemoteMetadataProvider,
)
from .tcp import RpcServer, TcpTransport
from .transport import LoopbackTransport, RetryPolicy, Transport, WireConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.client import BlobSeer
    from ..hdfs.namenode import NameNode

__all__ = [
    "ClusterConfig",
    "ControlService",
    "NodeServer",
    "RecoveryCoordinator",
    "loopback_provider_stub",
    "loopback_datanode_stub",
    "loopback_metadata_stub",
    "loopback_jobservice_stub",
    "connect_provider",
    "connect_datanode",
    "connect_metadata",
    "connect_jobservice",
]

#: Name the control-plane service is registered under.
CONTROL_SERVICE = "control"


@dataclass(frozen=True, slots=True)
class ClusterConfig:
    """Tunables of one service-layer deployment."""

    #: Seconds between heartbeats from each node.
    heartbeat_interval: float = 0.5
    #: Beats a node may miss before being declared dead.
    max_missed_heartbeats: int = 3
    #: Every n-th heartbeat carries a full block report.
    block_report_every: int = 5
    #: Default RPC timeout, seconds.
    rpc_timeout: float = 5.0
    #: Transport-level retries per RPC (transient failures only).
    rpc_retries: int = 2
    #: TCP connections pooled per peer.
    pool_size: int = 2
    #: Preferred wire protocol (``None`` = honour ``REPRO_WIRE_PROTOCOL``,
    #: defaulting to v2; negotiation still downgrades per connection).
    wire_protocol: int | None = None
    #: Coalesce sub-threshold metadata ops into batch frames.
    metadata_batching: bool = True
    #: Extra seconds a lone queued request waits for batch company.
    batch_window: float = 0.0
    #: Compress wire segments of at least this many bytes (None = never).
    compress_threshold: int | None = None

    def __post_init__(self) -> None:
        if self.heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")
        if self.max_missed_heartbeats < 1:
            raise ValueError("max_missed_heartbeats must be at least 1")
        if self.block_report_every < 1:
            raise ValueError("block_report_every must be at least 1")
        if self.rpc_timeout <= 0:
            raise ValueError("rpc_timeout must be positive")
        if self.rpc_retries < 0:
            raise ValueError("rpc_retries must be non-negative")
        if self.pool_size < 1:
            raise ValueError("pool_size must be at least 1")
        if self.wire_protocol not in (None, 1, 2):
            raise ValueError("wire_protocol must be 1, 2 or None")
        if self.batch_window < 0:
            raise ValueError("batch_window must be non-negative")
        if self.compress_threshold is not None and self.compress_threshold < 1:
            raise ValueError("compress_threshold must be positive")

    def retry_policy(self) -> RetryPolicy:
        """The retry policy RPC clients of this deployment use."""
        return RetryPolicy(retries=self.rpc_retries)

    def wire_config(self) -> WireConfig:
        """The wire-protocol knobs of this deployment."""
        overrides: dict[str, Any] = {
            "batch_window": self.batch_window,
            "compress_threshold": self.compress_threshold,
        }
        if self.wire_protocol is not None:
            overrides["protocol"] = self.wire_protocol
        return WireConfig.from_env(**overrides)

    def make_registry(
        self, *, clock: Callable[[], float] | None = None
    ) -> LivenessRegistry:
        """A liveness registry matching this deployment's intervals."""
        kwargs: dict[str, Any] = {}
        if clock is not None:
            kwargs["clock"] = clock
        return LivenessRegistry(
            heartbeat_interval=self.heartbeat_interval,
            max_missed=self.max_missed_heartbeats,
            **kwargs,
        )


class ControlService:
    """Head-process RPC surface for node registration and heartbeats."""

    def __init__(self, registry: LivenessRegistry) -> None:
        self.liveness = registry
        self._lock = threading.Lock()
        self._kinds: dict[str, tuple[str, int]] = {}
        self._listeners: list[Callable[[str, str, int], None]] = []

    def on_register(self, callback: Callable[[str, str, int], None]) -> None:
        """Run ``callback(node_name, kind, numeric_id)`` on registrations."""
        with self._lock:
            self._listeners.append(callback)

    def register(self, node_name: str, kind: str, numeric_id: int) -> None:
        """A node announces itself (idempotent — restarts re-register)."""
        with self._lock:
            self._kinds[node_name] = (kind, numeric_id)
            listeners = list(self._listeners)
        self.liveness.register(node_name, kind=kind, numeric_id=numeric_id)
        for callback in listeners:
            callback(node_name, kind, numeric_id)

    def heartbeat(self, node_name: str) -> None:
        """One beat from ``node_name``."""
        self.liveness.heartbeat(node_name)

    def block_report(self, node_name: str, blocks: list) -> None:
        """A full block report (counts as a heartbeat)."""
        self.liveness.block_report(node_name, blocks)

    def deregister(self, node_name: str) -> None:
        """Clean shutdown of a node — no death event will fire."""
        self.liveness.deregister(node_name)
        with self._lock:
            self._kinds.pop(node_name, None)

    def node_kind(self, node_name: str) -> tuple[str, int] | None:
        """``(kind, numeric_id)`` of a registered node, if known."""
        with self._lock:
            return self._kinds.get(node_name)

    def known_nodes(self) -> dict[str, tuple[str, int]]:
        """Snapshot of every registered node's ``(kind, numeric_id)``."""
        with self._lock:
            return dict(self._kinds)


class NodeServer:
    """Worker-process harness: RPC server + heartbeat pump for one node.

    ``node`` is duck-typed: anything with ``submit_job`` serves as a
    multi-tenant job service (service name ``"jobservice"``), anything
    with ``put_page`` as a data provider (service name ``"provider"``),
    anything with a ``node_id`` as an HDFS datanode (service name
    ``"datanode"``), and anything else with a ``provider_id`` as a
    metadata provider (service name ``"metadata"``) — the submission
    plane runs over the same RPC/heartbeat harness as the storage planes.
    """

    def __init__(
        self,
        node: Any,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        control: Transport | None = None,
        config: ClusterConfig | None = None,
        node_name: str | None = None,
        should_beat: Callable[[], bool] | None = None,
    ) -> None:
        self.node = node
        self.config = config if config is not None else ClusterConfig()
        if hasattr(node, "submit_job"):
            self.kind, self.numeric_id = "jobservice", 0
            self.service_name = JOBSERVICE_SERVICE
        elif hasattr(node, "put_page"):
            self.kind, self.numeric_id = "provider", node.provider_id
            self.service_name = PROVIDER_SERVICE
        elif hasattr(node, "node_id"):
            self.kind, self.numeric_id = "datanode", node.node_id
            self.service_name = DATANODE_SERVICE
        elif hasattr(node, "provider_id"):
            self.kind, self.numeric_id = "metadata", node.provider_id
            self.service_name = METADATA_SERVICE
        else:
            raise TypeError(
                "node must expose submit_job (job service), put_page "
                "(provider), node_id (datanode) or provider_id (metadata "
                "provider)"
            )
        self.node_name = (
            node_name
            if node_name is not None
            else getattr(node, "host", f"{self.kind}-{self.numeric_id}")
        )
        self.registry = ServiceRegistry()
        self.registry.register(self.service_name, node)
        self.registry.register("node", self)
        self.rpc = RpcServer(
            self.registry, host=host, port=port, wire=self.config.wire_config()
        )
        self._control = control
        self._should_beat = should_beat
        self._pump: HeartbeatPump | None = None

    # -- control-plane RPCs (callable remotely through service "node") ----------------
    def ping(self) -> str:
        """Cheap reachability probe."""
        return self.node_name

    def describe(self) -> dict:
        """Identity and service layout of this node process."""
        return {
            "node_name": self.node_name,
            "kind": self.kind,
            "numeric_id": self.numeric_id,
            "services": self.registry.service_names,
        }

    def block_report_payload(self) -> list:
        """What this node stores, in control-plane terms."""
        if self.kind == "jobservice":
            return self.node.job_ids()
        if self.kind == "provider":
            return self.node.page_keys()
        if self.kind == "metadata":
            return self.node.keys()
        return self.node.block_ids()

    # -- lifecycle ------------------------------------------------------------------
    def start(self) -> tuple[str, int]:
        """Serve RPCs; register with control and start heartbeating."""
        address = self.rpc.start()
        if self._control is not None:
            self._control.call(
                CONTROL_SERVICE,
                "register",
                self.node_name,
                self.kind,
                self.numeric_id,
            )
            self._pump = HeartbeatPump(
                self._send_heartbeat,
                interval=self.config.heartbeat_interval,
                report=self._send_block_report,
                report_every=self.config.block_report_every,
                should_beat=self._should_beat,
            ).start()
        return address

    def _send_heartbeat(self) -> None:
        assert self._control is not None
        self._control.call(CONTROL_SERVICE, "heartbeat", self.node_name)

    def _send_block_report(self) -> None:
        assert self._control is not None
        self._control.call(
            CONTROL_SERVICE,
            "block_report",
            self.node_name,
            self.block_report_payload(),
        )

    def stop(self, *, deregister: bool = False) -> None:
        """Stop pumping and serving; optionally announce clean shutdown."""
        if self._pump is not None:
            self._pump.stop()
            self._pump = None
        if deregister and self._control is not None:
            try:
                self._control.call(CONTROL_SERVICE, "deregister", self.node_name)
            except NetError:
                pass  # control gone; its timeout handles us
        self.rpc.stop()
        if self._control is not None:
            self._control.close()

    def __enter__(self) -> "NodeServer":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


class RecoveryCoordinator:
    """Turns death events into re-replication.

    Wire it to a :class:`LivenessRegistry` (and usually a
    :class:`ControlService` for automatic kind tracking); on a node's
    death it deregisters the node from the owning manager and restores
    the replication factor of everything it held.
    """

    def __init__(
        self,
        registry: LivenessRegistry,
        *,
        blobseer: "BlobSeer | None" = None,
        namenode: "NameNode | None" = None,
        control: ControlService | None = None,
    ) -> None:
        self._registry = registry
        self._blobseer = blobseer
        self._namenode = namenode
        self._lock = threading.Lock()
        self._nodes: dict[str, tuple[str, int]] = {}
        #: ``[(node_name, kind, repaired_count)]`` — death events handled.
        self.recoveries: list[tuple[str, str, int]] = []
        registry.on_death(self._handle_death)
        if control is not None:
            control.on_register(self._track)
            for name, (kind, numeric_id) in control.known_nodes().items():
                self._track(name, kind, numeric_id)

    def _track(self, node_name: str, kind: str, numeric_id: int) -> None:
        with self._lock:
            self._nodes[node_name] = (kind, numeric_id)

    def track_provider(self, node_name: str, provider_id: int) -> None:
        """Associate a liveness node name with a BlobSeer provider id."""
        self._track(node_name, "provider", provider_id)

    def track_datanode(self, node_name: str, node_id: int) -> None:
        """Associate a liveness node name with an HDFS datanode id."""
        self._track(node_name, "datanode", node_id)

    def _handle_death(self, node_name: str) -> None:
        with self._lock:
            kind, numeric_id = self._nodes.get(node_name, (None, -1))
        repaired = 0
        if kind == "provider" and self._blobseer is not None:
            self._blobseer.provider_manager.deregister(numeric_id)
            for blob_id in self._blobseer.version_manager.blob_ids():
                try:
                    repaired += self._blobseer.repair(blob_id)
                except Exception:
                    continue  # a blob beyond repair must not block the rest
        elif kind == "datanode" and self._namenode is not None:
            self._namenode.deregister_datanode(numeric_id)
            repaired = self._namenode.handle_dead_datanode(numeric_id)
        with self._lock:
            self.recoveries.append((node_name, kind or "unknown", repaired))

    def monitor(self, *, poll_interval: float | None = None) -> LivenessMonitor:
        """A monitor thread driving this coordinator's registry."""
        return LivenessMonitor(self._registry, poll_interval=poll_interval)


# -- loopback deployments --------------------------------------------------------------


def loopback_provider_stub(
    provider: Any,
    *,
    faults: NetworkFaultPlan | None = None,
    local: str = "client",
    timeout: float = 5.0,
    retry: RetryPolicy | None = None,
) -> RemoteDataProvider:
    """Wrap a provider in the full stub/codec path without sockets.

    The returned stub is addressable by the provider's ``host`` in the
    fault plan, so ``faults.kill(provider.host)`` models a node-process
    crash in a single-process test.
    """
    registry = ServiceRegistry()
    registry.register(PROVIDER_SERVICE, provider)
    transport = LoopbackTransport(
        registry,
        peer=provider.host,
        local=local,
        timeout=timeout,
        retry=retry,
        faults=faults,
    )
    return RemoteDataProvider.connect(transport)


def loopback_datanode_stub(
    datanode: Any,
    *,
    faults: NetworkFaultPlan | None = None,
    local: str = "client",
    timeout: float = 5.0,
    retry: RetryPolicy | None = None,
) -> RemoteDataNode:
    """Wrap an HDFS datanode in the loopback stub/codec path."""
    registry = ServiceRegistry()
    registry.register(DATANODE_SERVICE, datanode)
    transport = LoopbackTransport(
        registry,
        peer=datanode.host,
        local=local,
        timeout=timeout,
        retry=retry,
        faults=faults,
    )
    return RemoteDataNode.connect(transport)


def loopback_metadata_stub(
    provider: Any,
    *,
    faults: NetworkFaultPlan | None = None,
    local: str = "client",
    timeout: float = 5.0,
    retry: RetryPolicy | None = None,
) -> RemoteMetadataProvider:
    """Wrap a metadata provider in the loopback stub/codec path.

    Metadata providers carry no ``host`` field, so the stub is
    addressable in the fault plan as ``metadata-<provider_id>``.
    """
    registry = ServiceRegistry()
    registry.register(METADATA_SERVICE, provider)
    transport = LoopbackTransport(
        registry,
        peer=f"metadata-{provider.provider_id}",
        local=local,
        timeout=timeout,
        retry=retry,
        faults=faults,
    )
    return RemoteMetadataProvider.connect(transport)


def loopback_jobservice_stub(
    endpoint: Any,
    *,
    faults: NetworkFaultPlan | None = None,
    local: str = "client",
    timeout: float = 30.0,
    retry: RetryPolicy | None = None,
) -> RemoteJobService:
    """Wrap a job-service endpoint in the loopback stub/codec path.

    ``endpoint`` is a
    :class:`~repro.mapreduce.service.JobServiceEndpoint`; the stub is
    addressable in the fault plan as ``"jobservice"``.  The default
    timeout is generous — ``wait_job`` blocks for the job's duration.
    """
    registry = ServiceRegistry()
    registry.register(JOBSERVICE_SERVICE, endpoint)
    transport = LoopbackTransport(
        registry,
        peer="jobservice",
        local=local,
        timeout=timeout,
        retry=retry,
        faults=faults,
    )
    return RemoteJobService.connect(transport)


def connect_provider(
    host: str,
    port: int,
    *,
    config: ClusterConfig | None = None,
    faults: NetworkFaultPlan | None = None,
) -> RemoteDataProvider:
    """Connect a provider stub to a :class:`NodeServer` over TCP."""
    config = config if config is not None else ClusterConfig()
    transport = TcpTransport(
        host,
        port,
        timeout=config.rpc_timeout,
        retry=config.retry_policy(),
        faults=faults,
        pool_size=config.pool_size,
        wire=config.wire_config(),
    )
    return RemoteDataProvider.connect(transport)


def connect_datanode(
    host: str,
    port: int,
    *,
    config: ClusterConfig | None = None,
    faults: NetworkFaultPlan | None = None,
) -> RemoteDataNode:
    """Connect a datanode stub to a :class:`NodeServer` over TCP."""
    config = config if config is not None else ClusterConfig()
    transport = TcpTransport(
        host,
        port,
        timeout=config.rpc_timeout,
        retry=config.retry_policy(),
        faults=faults,
        pool_size=config.pool_size,
        wire=config.wire_config(),
    )
    return RemoteDataNode.connect(transport)


def connect_metadata(
    host: str,
    port: int,
    *,
    config: ClusterConfig | None = None,
    faults: NetworkFaultPlan | None = None,
) -> RemoteMetadataProvider:
    """Connect a metadata-provider stub to a :class:`NodeServer` over TCP.

    The metadata channel carries uniformly tiny, high-rate ops (lookup,
    publish, ticket assignment), so it is where small-op batching pays:
    ``config.metadata_batching`` turns coalescing on for this transport
    (a no-op when negotiation settles on protocol v1).
    """
    config = config if config is not None else ClusterConfig()
    transport = TcpTransport(
        host,
        port,
        timeout=config.rpc_timeout,
        retry=config.retry_policy(),
        faults=faults,
        pool_size=config.pool_size,
        wire=config.wire_config(),
        batching=config.metadata_batching,
    )
    return RemoteMetadataProvider.connect(transport)


def connect_jobservice(
    host: str,
    port: int,
    *,
    config: ClusterConfig | None = None,
    faults: NetworkFaultPlan | None = None,
    timeout: float = 30.0,
) -> RemoteJobService:
    """Connect a job-service stub to a :class:`NodeServer` over TCP.

    ``timeout`` defaults above the deployment's RPC timeout because
    ``wait_job`` legitimately blocks for a whole job execution.
    """
    config = config if config is not None else ClusterConfig()
    transport = TcpTransport(
        host,
        port,
        timeout=max(timeout, config.rpc_timeout),
        retry=config.retry_policy(),
        faults=faults,
        pool_size=config.pool_size,
        wire=config.wire_config(),
    )
    return RemoteJobService.connect(transport)
