"""Network fault injection: drop, delay, partition and kill at the wire.

PR 4's fault framework injects failures *inside* the task runtime; this
module injects them *between* nodes, where real distributed failures
live.  A :class:`NetworkFaultPlan` is shared by every transport of a
deployment and consulted on each message:

* **kill** — the peer's process is gone: every message to it fails fast
  with :class:`~repro.net.errors.PeerUnavailableError` (connection
  refused semantics).  This is the loopback-transport equivalent of
  ``SIGKILL`` on a real node process.
* **partition** — both endpoints are up but cannot reach each other:
  messages are silently lost, surfacing as
  :class:`~repro.net.errors.RpcTimeoutError` after the call's timeout.
* **drop** — lose the next *n* matching messages (one direction,
  optionally one method), modelling flaky links.
* **delay** — add fixed latency to every message of a peer (limplock).

Faults are addressed by *peer name* (the node id used for heartbeats),
so a chaos test can kill exactly the node whose recovery it then
asserts.  All state changes are thread-safe and reversible
(:meth:`revive`, :meth:`heal`, :meth:`clear_delay`).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from .errors import PeerUnavailableError, RpcTimeoutError

__all__ = ["NetworkFaultPlan"]

#: Wildcard matching any endpoint in drop rules.
ANY = "*"


@dataclass
class _DropRule:
    src: str
    dst: str
    method: str | None
    remaining: int | None  # None = drop forever

    def matches(self, src: str, dst: str, method: str | None) -> bool:
        if self.src not in (ANY, src) or self.dst not in (ANY, dst):
            return False
        if self.method is not None and self.method != method:
            return False
        return self.remaining is None or self.remaining > 0


class NetworkFaultPlan:
    """Mutable, thread-safe schedule of wire-level faults.

    Transports call :meth:`on_message` for each message direction; the
    method either returns normally (possibly after sleeping an injected
    delay) or raises the transport error the fault models.
    """

    def __init__(self, *, sleep=time.sleep) -> None:
        self._lock = threading.Lock()
        self._killed: set[str] = set()
        self._partitions: set[frozenset[str]] = set()
        self._drops: list[_DropRule] = []
        self._delays: dict[str, float] = {}
        self._sleep = sleep
        #: Counters for tests and reports.
        self.messages_dropped = 0
        self.messages_delayed = 0
        self.messages_refused = 0

    # -- fault programming --------------------------------------------------------
    def kill(self, peer: str) -> None:
        """Take ``peer``'s process down: calls to it fail immediately."""
        with self._lock:
            self._killed.add(peer)

    def revive(self, peer: str) -> None:
        """Bring a killed peer back (its service object survived)."""
        with self._lock:
            self._killed.discard(peer)

    def is_killed(self, peer: str) -> bool:
        """Whether ``peer`` is currently killed."""
        with self._lock:
            return peer in self._killed

    def partition(self, a: str, b: str) -> None:
        """Cut the link between ``a`` and ``b`` (both directions)."""
        with self._lock:
            self._partitions.add(frozenset((a, b)))

    def heal(self, a: str, b: str) -> None:
        """Restore the link between ``a`` and ``b``."""
        with self._lock:
            self._partitions.discard(frozenset((a, b)))

    def drop(
        self,
        *,
        src: str = ANY,
        dst: str = ANY,
        count: int | None = 1,
        method: str | None = None,
    ) -> None:
        """Lose the next ``count`` messages from ``src`` to ``dst``
        (``count=None`` drops them forever; ``method`` narrows the rule)."""
        with self._lock:
            self._drops.append(
                _DropRule(src=src, dst=dst, method=method, remaining=count)
            )

    def delay(self, peer: str, seconds: float) -> None:
        """Add ``seconds`` of latency to every message touching ``peer``."""
        if seconds < 0:
            raise ValueError("delay must be non-negative")
        with self._lock:
            self._delays[peer] = seconds

    def clear_delay(self, peer: str) -> None:
        """Remove an injected latency."""
        with self._lock:
            self._delays.pop(peer, None)

    # -- the hook transports call -------------------------------------------------
    def on_message(
        self,
        src: str,
        dst: str,
        *,
        method: str | None = None,
    ) -> None:
        """Apply the plan to one message from ``src`` to ``dst``.

        Raises :class:`PeerUnavailableError` when the destination (or the
        source — a killed node sends nothing) is killed, and
        :class:`RpcTimeoutError` when the message is lost to a partition
        or a drop rule.  Injected delays sleep here.
        """
        delay = 0.0
        with self._lock:
            if dst in self._killed or src in self._killed:
                self.messages_refused += 1
                victim = dst if dst in self._killed else src
                raise PeerUnavailableError(victim, "process killed by fault plan")
            if frozenset((src, dst)) in self._partitions:
                self.messages_dropped += 1
                raise RpcTimeoutError(
                    f"message {src} -> {dst} lost to a network partition"
                )
            for rule in self._drops:
                if rule.matches(src, dst, method):
                    if rule.remaining is not None:
                        rule.remaining -= 1
                    self.messages_dropped += 1
                    raise RpcTimeoutError(
                        f"message {src} -> {dst} "
                        f"({method or 'any'}) dropped by fault plan"
                    )
            delay = max(
                self._delays.get(src, 0.0), self._delays.get(dst, 0.0)
            )
            if delay > 0:
                self.messages_delayed += 1
        if delay > 0:
            self._sleep(delay)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        with self._lock:
            return (
                f"NetworkFaultPlan(killed={sorted(self._killed)}, "
                f"partitions={len(self._partitions)}, "
                f"drops={len(self._drops)}, delays={dict(self._delays)})"
            )
