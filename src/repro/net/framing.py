"""Frame codecs: the wire formats of the service layer.

Two frame layouts share one stream, distinguished by the version byte of
a common fixed header::

    +-------+---------+------------------+-----------------+
    | magic | version | payload length   | payload bytes   |
    | 1 B   | 1 B     | 4 B big-endian   | <length> bytes  |
    +-------+---------+------------------+-----------------+

**Protocol v1** (:data:`PROTOCOL_V1`) is the original format: the whole
payload is one opaque blob (a pickled message).  It follows the shuffle
segment framing idiom but adds the magic byte and version so a stream
that is not an RPC stream at all is rejected at the first frame.

**Protocol v2** (:data:`PROTOCOL_V2`) structures the payload as a
*segment table* followed by the segments themselves::

    payload := flags(1B)  nseg(2B BE)
               nseg x [ stored_length(4B BE)  seg_flags(1B) ]
               segment bytes, concatenated

    frame flags:   bit 0 = FLAG_BATCH — every segment is one complete
                   encoded message (small-op coalescing envelope)
    segment flags: bits 0-3 = codec id of a compressed segment
                   (0 = raw, 1 = zlib; see register_segment_codec)

v2 exists for the data path: a message's bulk payloads (pages, blocks)
travel as their *own* segments, so the sender can hand the original
buffers to a scatter-gather write (``sendmsg`` / ``writelines``) without
ever concatenating them into one heap-allocated frame, and the receiver
can place each bulk segment into an exactly-sized buffer instead of
re-slicing a grow-and-compact accumulation buffer.

:class:`ScatterParser` is the incremental decoder both transports share.
It accepts arbitrary chunk boundaries via :meth:`ScatterParser.feed`
(small data is absorbed into an offset-drained buffer — amortized O(1)
per byte, no per-frame prefix deletion) and, while a bulk segment is
pending, exposes the exact remaining region of that segment's buffer via
:meth:`ScatterParser.wants_direct` so the caller can ``recv_into`` it
with no intermediate copy.  :class:`FrameDecoder` is the thin historical
wrapper over it (feed chunks, get payloads) that tests and the loopback
transport use.
"""

from __future__ import annotations

import socket
import struct
import zlib
from typing import Callable, Sequence

from .errors import FrameError, FrameTooLargeError, TruncatedFrameError

__all__ = [
    "MAGIC",
    "PROTOCOL_VERSION",
    "PROTOCOL_V1",
    "PROTOCOL_V2",
    "HEADER",
    "V2_META",
    "V2_SEGMENT",
    "FLAG_BATCH",
    "DEFAULT_MAX_FRAME",
    "encode_frame",
    "encode_frame_v2",
    "register_segment_codec",
    "recv_frame",
    "Frame",
    "ScatterParser",
    "FrameDecoder",
]

#: First byte of every frame; anything else on the stream is garbage.
MAGIC = 0xB5
#: The original, single-blob wire protocol.
PROTOCOL_V1 = 1
#: The scatter-gather wire protocol (segment table + out-of-band bulk).
PROTOCOL_V2 = 2
#: Historical alias — the protocol every peer is guaranteed to speak.
PROTOCOL_VERSION = PROTOCOL_V1
#: Frame header: magic byte, protocol version, payload length.
HEADER = struct.Struct(">BBI")
#: v2 payload prelude: frame flags, segment count.
V2_META = struct.Struct(">BH")
#: One v2 segment-table entry: stored length, segment flags.
V2_SEGMENT = struct.Struct(">IB")
#: v2 frame flag: every segment is one complete encoded message.
FLAG_BATCH = 0x01
#: Low nibble of a segment's flags: codec id (0 = uncompressed).
SEG_CODEC_MASK = 0x0F
#: Default ceiling on a frame's payload (pages are <= a few MiB; 64 MiB
#: leaves room for whole-block transfers plus pickling overhead).
DEFAULT_MAX_FRAME = 64 * 1024 * 1024
#: Ceiling on a v2 frame's segment count (sanity bound on the table).
MAX_SEGMENTS = 4096
#: Segments at least this large are received straight into an
#: exactly-sized buffer instead of through the chunk accumulation path.
DIRECT_CUTOFF = 64 * 1024


# -- segment codecs --------------------------------------------------------------------


def _zlib_compress(data) -> bytes:
    # Level 1: the wire codec trades ratio for speed — threshold
    # compression exists to win on fat, compressible payloads, not to
    # stall the event loop grinding incompressible pages.
    return zlib.compress(data, 1)


def _zlib_decompress(data, limit: int) -> bytes:
    decomp = zlib.decompressobj()
    try:
        out = decomp.decompress(data, limit + 1)
    except zlib.error as exc:
        raise FrameError(f"corrupt compressed segment: {exc!r}") from exc
    if len(out) > limit or not decomp.eof:
        raise FrameError(
            f"compressed segment inflates past the {limit}-byte frame limit"
        )
    return out


#: codec id -> (name, compress(data) -> bytes, decompress(data, limit) -> bytes)
_SEGMENT_CODECS: dict[int, tuple[str, Callable, Callable]] = {
    1: ("zlib", _zlib_compress, _zlib_decompress),
}
_CODEC_IDS: dict[str, int] = {"zlib": 1}


def register_segment_codec(
    code: int,
    name: str,
    compress: Callable[[bytes], bytes],
    decompress: Callable[[bytes, int], bytes],
) -> None:
    """Register a pluggable segment codec under ``code`` (1..15).

    ``decompress(data, limit)`` must reject output above ``limit`` bytes
    (decompression-bomb guard) by raising :class:`FrameError`.
    """
    if not 1 <= code <= SEG_CODEC_MASK:
        raise ValueError(f"codec id must be 1..{SEG_CODEC_MASK}, got {code}")
    _SEGMENT_CODECS[code] = (name, compress, decompress)
    _CODEC_IDS[name] = code


def codec_names() -> tuple[str, ...]:
    """Names of every registered segment codec (negotiation payload)."""
    return tuple(sorted(_CODEC_IDS))


# -- encoding --------------------------------------------------------------------------


def encode_frame(payload: bytes, *, max_frame: int = DEFAULT_MAX_FRAME) -> bytes:
    """Wrap ``payload`` into one v1 wire frame."""
    if len(payload) > max_frame:
        raise FrameTooLargeError(len(payload), max_frame)
    return HEADER.pack(MAGIC, PROTOCOL_V1, len(payload)) + payload


def _nbytes(segment) -> int:
    return segment.nbytes if isinstance(segment, memoryview) else len(segment)


def encode_frame_v2(
    segments: Sequence,
    *,
    flags: int = 0,
    max_frame: int = DEFAULT_MAX_FRAME,
    compress_threshold: int | None = None,
    codec: str = "zlib",
) -> list:
    """Encode one v2 frame as a scatter-gather list, copy-free.

    Returns ``[head, seg0, seg1, ...]`` where ``head`` is the fixed
    header plus the segment table and every other element is the
    caller's buffer itself (bytes or memoryview) — hand the list to
    ``socket.sendmsg`` / ``writer.writelines`` and the bulk payloads are
    never concatenated or copied by this layer.

    Segments of at least ``compress_threshold`` bytes are compressed
    with ``codec`` and flagged, but only when that actually shrinks them
    — incompressible pages travel raw.
    """
    if not segments:
        raise ValueError("a v2 frame needs at least one segment")
    if len(segments) > MAX_SEGMENTS:
        raise ValueError(f"too many segments ({len(segments)} > {MAX_SEGMENTS})")
    out: list = []
    entries: list[tuple[int, int]] = []
    total = V2_META.size + len(segments) * V2_SEGMENT.size
    for segment in segments:
        size = _nbytes(segment)
        seg_flags = 0
        if (
            compress_threshold is not None
            and codec
            and size >= compress_threshold
        ):
            code = _CODEC_IDS.get(codec)
            if code is None:
                raise ValueError(f"unknown segment codec {codec!r}")
            packed = _SEGMENT_CODECS[code][1](segment)
            if len(packed) < size:
                segment, size, seg_flags = packed, len(packed), code
        entries.append((size, seg_flags))
        out.append(segment)
        total += size
    if total > max_frame:
        raise FrameTooLargeError(total, max_frame)
    head = bytearray(HEADER.pack(MAGIC, PROTOCOL_V2, total))
    head += V2_META.pack(flags, len(entries))
    for size, seg_flags in entries:
        head += V2_SEGMENT.pack(size, seg_flags)
    out.insert(0, bytes(head))
    return out


# -- decoding --------------------------------------------------------------------------


class Frame:
    """One decoded frame: its protocol version, flags and segments."""

    __slots__ = ("version", "flags", "segments")

    def __init__(self, version: int, flags: int, segments: list[bytes]) -> None:
        self.version = version
        self.flags = flags
        self.segments = segments

    @property
    def payload(self) -> bytes:
        """The single payload of a v1 frame (first segment otherwise)."""
        return self.segments[0]

    @property
    def is_batch(self) -> bool:
        """True when every segment is one complete encoded message."""
        return bool(self.flags & FLAG_BATCH)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        sizes = [len(s) for s in self.segments]
        return f"Frame(v{self.version}, flags=0x{self.flags:02X}, segments={sizes})"


#: Parser stages, in stream order.
_HEADER, _META, _TABLE, _SEGMENT = range(4)
#: Compact the accumulation buffer once this many bytes are drained.
_COMPACT_AT = 64 * 1024


class ScatterParser:
    """Incremental scatter-gather frame parser for both protocols.

    Not thread-safe: each connection owns exactly one parser (frames of
    one stream are sequential by construction).  Two input paths exist:

    * :meth:`feed` — arbitrary chunks from any byte source.  Small data
      (headers, tables, sub-cutoff segments) accumulates in an
      offset-drained buffer: the read offset advances per frame and the
      buffer is compacted only once a threshold of dead prefix builds
      up, so decoding *n* small frames costs O(n), not O(n²).
    * :meth:`wants_direct` / :meth:`advance_direct` — while a bulk
      segment (>= ``direct_cutoff``) is incomplete, the parser exposes
      the exact remaining region of that segment's preallocated buffer,
      so a socket reader can ``recv_into`` it and the payload is written
      in place with zero intermediate copies.

    A malformed stream (bad magic, unknown version, oversized
    announcement, inconsistent segment table) raises
    :class:`FrameError`; the parser — and the connection feeding it —
    is unusable afterwards.
    """

    __slots__ = (
        "max_frame",
        "direct_cutoff",
        "_accept_v2",
        "_buf",
        "_off",
        "_stage",
        "_version",
        "_length",
        "_flags",
        "_table",
        "_segments",
        "_seg_index",
        "_direct",
        "_direct_view",
        "_direct_filled",
        "_pending",
        "_broken",
        "frames_decoded",
        "bytes_compacted",
    )

    def __init__(
        self,
        *,
        max_frame: int = DEFAULT_MAX_FRAME,
        accept_v2: bool = True,
        direct_cutoff: int = DIRECT_CUTOFF,
    ) -> None:
        if max_frame < 1:
            raise ValueError("max_frame must be positive")
        if direct_cutoff < 1:
            raise ValueError("direct_cutoff must be positive")
        self.max_frame = max_frame
        self.direct_cutoff = direct_cutoff
        self._accept_v2 = accept_v2
        self._buf = bytearray()
        self._off = 0
        self._stage = _HEADER
        self._version = 0
        self._length = 0
        self._flags = 0
        self._table: list[tuple[int, int]] = []
        self._segments: list[bytes] = []
        self._seg_index = 0
        self._direct: bytearray | None = None
        self._direct_view: memoryview | None = None
        self._direct_filled = 0
        #: Bytes absorbed towards the next, still-incomplete frame.
        self._pending = 0
        self._broken = False
        #: Total frames decoded (monitoring/tests).
        self.frames_decoded = 0
        #: Bytes moved by buffer compaction — the copy-work metric the
        #: linearity regression test asserts on (the old decoder's
        #: per-frame prefix deletion made this quadratic in a burst).
        self.bytes_compacted = 0

    # -- introspection -----------------------------------------------------------------
    @property
    def pending_bytes(self) -> int:
        """Bytes buffered towards the next, still-incomplete frame."""
        return self._pending

    @property
    def at_boundary(self) -> bool:
        """True when the stream may end here without truncating a frame."""
        return self._pending == 0

    # -- direct (scatter-receive) path -------------------------------------------------
    def wants_direct(self) -> memoryview | None:
        """The exact region a pending bulk segment still needs, if any.

        When non-``None``, the caller should ``recv_into`` this view and
        report progress through :meth:`advance_direct`.  Feeding through
        :meth:`feed` remains correct meanwhile — mixed use is safe.
        """
        if self._direct_view is None:
            return None
        return self._direct_view[self._direct_filled :]

    def advance_direct(self, nbytes: int) -> list[Frame]:
        """Record ``nbytes`` received into :meth:`wants_direct`'s view."""
        if self._direct is None:
            raise RuntimeError("no bulk segment is pending direct receive")
        self._check_usable()
        self._direct_filled += nbytes
        self._pending += nbytes
        frames: list[Frame] = []
        if self._direct_filled >= len(self._direct):
            self._finish_direct(frames)
            self._run(frames)
        return frames

    # -- chunked path ------------------------------------------------------------------
    def feed(self, data) -> list[Frame]:
        """Absorb one chunk and return every frame it completes."""
        self._check_usable()
        frames: list[Frame] = []
        view = memoryview(data)
        if self._direct is not None:
            # A bulk segment is mid-receive: route its remainder straight
            # into the preallocated buffer, never through the small buffer.
            need = len(self._direct) - self._direct_filled
            take = min(need, view.nbytes)
            self._direct_view[self._direct_filled : self._direct_filled + take] = (
                view[:take]
            )
            self._direct_filled += take
            self._pending += take
            view = view[take:]
            if self._direct_filled >= len(self._direct):
                self._finish_direct(frames)
            elif view.nbytes == 0:
                return frames
        if view.nbytes:
            self._buf += view
            self._pending += view.nbytes
        self._run(frames)
        return frames

    def eof(self) -> None:
        """Signal end of stream; raises if it ends inside a frame."""
        if self._pending:
            raise TruncatedFrameError(
                f"stream ended with {self._pending} bytes of an incomplete frame"
            )

    # -- internals ---------------------------------------------------------------------
    def _check_usable(self) -> None:
        if self._broken:
            raise FrameError("parser is unusable after a protocol violation")

    def _fail(self, error: FrameError) -> FrameError:
        self._broken = True
        return error

    def _available(self) -> int:
        return len(self._buf) - self._off

    def _run(self, frames: list[Frame]) -> None:
        try:
            self._parse(frames)
        except FrameError as exc:
            raise self._fail(exc) from None
        finally:
            self._compact()

    def _parse(self, frames: list[Frame]) -> None:
        while True:
            if self._stage == _HEADER:
                if self._available() < HEADER.size:
                    return
                magic, version, length = HEADER.unpack_from(self._buf, self._off)
                if magic != MAGIC:
                    raise FrameError(
                        f"bad frame magic 0x{magic:02X} (expected "
                        f"0x{MAGIC:02X}): not an RPC stream"
                    )
                if version != PROTOCOL_V1 and not (
                    version == PROTOCOL_V2 and self._accept_v2
                ):
                    raise FrameError(
                        f"unsupported protocol version {version} "
                        f"(expected {PROTOCOL_V1}"
                        + (f" or {PROTOCOL_V2}" if self._accept_v2 else "")
                        + ")"
                    )
                if length > self.max_frame:
                    raise FrameTooLargeError(length, self.max_frame)
                self._off += HEADER.size
                self._version, self._length = version, length
                self._segments = []
                self._seg_index = 0
                if version == PROTOCOL_V1:
                    self._flags = 0
                    self._table = [(length, 0)]
                    self._stage = _SEGMENT
                else:
                    self._stage = _META
            elif self._stage == _META:
                if self._available() < V2_META.size:
                    return
                flags, nseg = V2_META.unpack_from(self._buf, self._off)
                if not 1 <= nseg <= MAX_SEGMENTS:
                    raise FrameError(f"v2 frame announces {nseg} segments")
                if V2_META.size + nseg * V2_SEGMENT.size > self._length:
                    raise FrameError("v2 segment table exceeds the frame length")
                self._off += V2_META.size
                self._flags = flags
                self._table = []
                self._stage = _TABLE
                self._seg_index = nseg  # reuse as "entries still to read"
            elif self._stage == _TABLE:
                need = self._seg_index * V2_SEGMENT.size
                if self._available() < need:
                    return
                for _ in range(self._seg_index):
                    entry = V2_SEGMENT.unpack_from(self._buf, self._off)
                    self._table.append(entry)
                    self._off += V2_SEGMENT.size
                body = sum(size for size, _ in self._table)
                declared = (
                    V2_META.size + len(self._table) * V2_SEGMENT.size + body
                )
                if declared != self._length:
                    raise FrameError(
                        f"v2 segment table sums to {declared} bytes but the "
                        f"frame announces {self._length}"
                    )
                self._seg_index = 0
                self._stage = _SEGMENT
            else:  # _SEGMENT
                if self._seg_index >= len(self._table):
                    self._emit(frames)
                    continue
                size, seg_flags = self._table[self._seg_index]
                available = self._available()
                if available < size:
                    if size >= self.direct_cutoff:
                        # Bulk segment: preallocate its exact buffer, move
                        # what already arrived, and let the caller receive
                        # the remainder straight into it.
                        self._direct = bytearray(size)
                        self._direct_view = memoryview(self._direct)
                        self._direct_view[:available] = memoryview(self._buf)[
                            self._off : self._off + available
                        ]
                        self._direct_filled = available
                        self._off += available
                    return
                segment = bytes(
                    memoryview(self._buf)[self._off : self._off + size]
                )
                self._off += size
                self._store_segment(segment, seg_flags)

    def _finish_direct(self, frames: list[Frame]) -> None:
        size, seg_flags = self._table[self._seg_index]
        segment = bytes(self._direct)
        self._direct = None
        self._direct_view = None
        self._direct_filled = 0
        try:
            self._store_segment(segment, seg_flags)
            if self._seg_index >= len(self._table):
                self._emit(frames)
        except FrameError as exc:
            raise self._fail(exc) from None

    def _store_segment(self, segment: bytes, seg_flags: int) -> None:
        self._segments.append(
            _decode_stored(segment, seg_flags, self.max_frame)
        )
        self._seg_index += 1

    def _emit(self, frames: list[Frame]) -> None:
        frames.append(Frame(self._version, self._flags, self._segments))
        self._pending -= HEADER.size + self._length
        self._segments = []
        self._stage = _HEADER
        self.frames_decoded += 1

    def _compact(self) -> None:
        if self._off == len(self._buf):
            if self._off:
                self._buf.clear()
                self._off = 0
        elif self._off >= _COMPACT_AT:
            self.bytes_compacted += len(self._buf) - self._off
            del self._buf[: self._off]
            self._off = 0


def _decode_stored(segment: bytes, seg_flags: int, limit: int) -> bytes:
    """Undo a segment's codec flag (bomb-guarded by ``limit``)."""
    code = seg_flags & SEG_CODEC_MASK
    if not code:
        return segment
    try:
        decompress = _SEGMENT_CODECS[code][2]
    except KeyError:
        raise FrameError(f"unknown segment codec id {code}") from None
    return decompress(segment, limit)


# -- exact-framed socket reads ---------------------------------------------------------

#: Frames no larger than this are read by :func:`recv_frame` in one gulp
#: (two syscalls for a whole small-op or batch frame); larger frames get
#: per-segment reads so every bulk segment lands in its own buffer.
_GULP_CUTOFF = 64 * 1024


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    """Exactly ``count`` bytes from a blocking socket, as one ``bytes``.

    ``MSG_WAITALL`` makes the kernel assemble the full run into a single
    allocation — for a bulk segment this is the *only* user-space copy
    of the payload, and the resulting immutable ``bytes`` is adopted
    as-is by the pickle-5 out-of-band decode path.
    """
    data = sock.recv(count, socket.MSG_WAITALL)
    if len(data) == count:
        return data
    if not data:
        raise TruncatedFrameError("stream ended inside a frame")
    # MSG_WAITALL can return short (signals, huge reads): finish by hand.
    parts = [data]
    got = len(data)
    while got < count:
        more = sock.recv(count - got, socket.MSG_WAITALL)
        if not more:
            raise TruncatedFrameError("stream ended inside a frame")
        parts.append(more)
        got += len(more)
    return b"".join(parts)


def _check_header(magic: int, version: int, length: int, max_frame: int, accept_v2: bool) -> None:
    if magic != MAGIC:
        raise FrameError(
            f"bad frame magic 0x{magic:02X} (expected "
            f"0x{MAGIC:02X}): not an RPC stream"
        )
    if version != PROTOCOL_V1 and not (version == PROTOCOL_V2 and accept_v2):
        raise FrameError(
            f"unsupported protocol version {version} "
            f"(expected {PROTOCOL_V1}"
            + (f" or {PROTOCOL_V2}" if accept_v2 else "")
            + ")"
        )
    if length > max_frame:
        raise FrameTooLargeError(length, max_frame)


def _check_table(
    entries: list[tuple[int, int]], nseg: int, length: int
) -> None:
    if not 1 <= nseg <= MAX_SEGMENTS:
        raise FrameError(f"v2 frame announces {nseg} segments")
    declared = V2_META.size + nseg * V2_SEGMENT.size + sum(
        size for size, _ in entries
    )
    if declared != length:
        raise FrameError(
            f"v2 segment table sums to {declared} bytes but the "
            f"frame announces {length}"
        )


def recv_frame(
    sock: socket.socket,
    *,
    max_frame: int = DEFAULT_MAX_FRAME,
    accept_v2: bool = True,
) -> Frame | None:
    """Read one whole frame from a blocking socket, minimally copied.

    The stream's self-describing layout makes exact reads possible: the
    fixed header announces the frame length, the v2 segment table
    announces every segment's size.  Small frames arrive in one gulp;
    each bulk segment of a large v2 frame is read with ``MSG_WAITALL``
    straight into its own immutable ``bytes`` — no accumulation buffer,
    no re-slicing, no materialization copy.  This is the receive path of
    the threaded client; the asyncio server uses :class:`ScatterParser`.

    Returns ``None`` on a clean end-of-stream at a frame boundary.
    Raises :class:`FrameError` (stream corrupt) or
    :class:`TruncatedFrameError` (peer died mid-frame) otherwise.
    """
    header = sock.recv(HEADER.size, socket.MSG_WAITALL)
    if not header:
        return None
    if len(header) < HEADER.size:
        header += _recv_exact(sock, HEADER.size - len(header))
    magic, version, length = HEADER.unpack(header)
    _check_header(magic, version, length, max_frame, accept_v2)
    if version == PROTOCOL_V1:
        payload = _recv_exact(sock, length) if length else b""
        return Frame(PROTOCOL_V1, 0, [payload])
    if length < V2_META.size:
        raise FrameError("v2 segment table exceeds the frame length")
    if length <= _GULP_CUTOFF:
        body = memoryview(_recv_exact(sock, length))
        flags, nseg = V2_META.unpack_from(body, 0)
        if V2_META.size + nseg * V2_SEGMENT.size > length:
            raise FrameError("v2 segment table exceeds the frame length")
        entries = [
            V2_SEGMENT.unpack_from(body, V2_META.size + i * V2_SEGMENT.size)
            for i in range(nseg)
        ]
        _check_table(entries, nseg, length)
        segments: list[bytes] = []
        offset = V2_META.size + nseg * V2_SEGMENT.size
        for size, seg_flags in entries:
            segments.append(
                _decode_stored(
                    bytes(body[offset : offset + size]), seg_flags, max_frame
                )
            )
            offset += size
        return Frame(PROTOCOL_V2, flags, segments)
    flags, nseg = V2_META.unpack(_recv_exact(sock, V2_META.size))
    if not 1 <= nseg <= MAX_SEGMENTS:
        raise FrameError(f"v2 frame announces {nseg} segments")
    if V2_META.size + nseg * V2_SEGMENT.size > length:
        raise FrameError("v2 segment table exceeds the frame length")
    table = _recv_exact(sock, nseg * V2_SEGMENT.size)
    entries = list(V2_SEGMENT.iter_unpack(table))
    _check_table(entries, nseg, length)
    segments = []
    for size, seg_flags in entries:
        data = _recv_exact(sock, size) if size else b""
        segments.append(_decode_stored(data, seg_flags, max_frame))
    return Frame(PROTOCOL_V2, flags, segments)


class FrameDecoder:
    """Chunk-fed frame decoder: the historical feed/payload surface.

    A thin wrapper over :class:`ScatterParser` for consumers that hold
    complete chunks in hand (the loopback transport, tests).  With the
    default ``accept_v2=False`` it is a strict v1 decoder — a v2 frame
    raises :class:`FrameError` exactly like any other unknown version,
    which is the behaviour protocol negotiation relies on.
    """

    def __init__(
        self,
        *,
        max_frame: int = DEFAULT_MAX_FRAME,
        accept_v2: bool = False,
    ) -> None:
        self._parser = ScatterParser(max_frame=max_frame, accept_v2=accept_v2)
        self.max_frame = max_frame

    @property
    def frames_decoded(self) -> int:
        """Total frames decoded (monitoring/tests)."""
        return self._parser.frames_decoded

    @property
    def bytes_compacted(self) -> int:
        """Bytes moved by buffer compaction (linearity metric)."""
        return self._parser.bytes_compacted

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered towards the next, still-incomplete frame."""
        return self._parser.pending_bytes

    @property
    def at_boundary(self) -> bool:
        """True when the stream may end here without truncating a frame."""
        return self._parser.at_boundary

    def feed(self, data) -> list[bytes]:
        """Absorb ``data`` and return every v1 payload it completes."""
        return [frame.payload for frame in self._parser.feed(data)]

    def feed_frames(self, data) -> list[Frame]:
        """Absorb ``data`` and return every frame (v1 or v2) it completes."""
        return self._parser.feed(data)

    def eof(self) -> None:
        """Signal end of stream; raises if it ends inside a frame."""
        self._parser.eof()
