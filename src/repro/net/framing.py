"""Length-prefixed frame codec: the wire format of the service layer.

Every message travels as one *frame*::

    +-------+---------+------------------+-----------------+
    | magic | version | payload length   | payload bytes   |
    | 1 B   | 1 B     | 4 B big-endian   | <length> bytes  |
    +-------+---------+------------------+-----------------+

The format follows the shuffle segment framing idiom
(:mod:`repro.mapreduce.shuffle_service` uses bare ``4-byte length +
payload`` records) but adds a magic byte and a protocol version so a
stream that is not an RPC stream at all — a stray HTTP client, a
truncated recording, garbage — is rejected at the first frame instead of
being misread as a gigantic length.

:class:`FrameDecoder` is an incremental decoder: feed it arbitrary chunk
boundaries (as delivered by a socket) and it yields complete payloads,
holding partial frames across calls.  It enforces a maximum payload size
(:data:`DEFAULT_MAX_FRAME`) so a corrupted or hostile length field cannot
make the receiver buffer gigabytes.
"""

from __future__ import annotations

import struct

from .errors import FrameError, FrameTooLargeError, TruncatedFrameError

__all__ = [
    "MAGIC",
    "PROTOCOL_VERSION",
    "HEADER",
    "DEFAULT_MAX_FRAME",
    "encode_frame",
    "FrameDecoder",
]

#: First byte of every frame; anything else on the stream is garbage.
MAGIC = 0xB5
#: Wire protocol version carried in every frame header.
PROTOCOL_VERSION = 1
#: Frame header: magic byte, protocol version, payload length.
HEADER = struct.Struct(">BBI")
#: Default ceiling on a frame's payload (pages are <= a few MiB; 64 MiB
#: leaves room for whole-block transfers plus pickling overhead).
DEFAULT_MAX_FRAME = 64 * 1024 * 1024


def encode_frame(payload: bytes, *, max_frame: int = DEFAULT_MAX_FRAME) -> bytes:
    """Wrap ``payload`` into one wire frame."""
    if len(payload) > max_frame:
        raise FrameTooLargeError(len(payload), max_frame)
    return HEADER.pack(MAGIC, PROTOCOL_VERSION, len(payload)) + payload


class FrameDecoder:
    """Incremental frame decoder over an arbitrary chunked byte stream.

    Not thread-safe: each connection owns exactly one decoder (frames of
    one stream are sequential by construction; concurrency lives at the
    message layer through correlation ids, not inside the codec).
    """

    def __init__(self, *, max_frame: int = DEFAULT_MAX_FRAME) -> None:
        if max_frame < 1:
            raise ValueError("max_frame must be positive")
        self.max_frame = max_frame
        self._buffer = bytearray()
        #: Total payloads decoded (monitoring/tests).
        self.frames_decoded = 0

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered towards the next, still-incomplete frame."""
        return len(self._buffer)

    @property
    def at_boundary(self) -> bool:
        """True when the stream may end here without truncating a frame."""
        return not self._buffer

    def feed(self, data: bytes) -> list[bytes]:
        """Absorb ``data`` and return every payload it completes.

        Raises :class:`FrameError` on a malformed header and
        :class:`FrameTooLargeError` on an oversized announcement; after
        either, the stream is unusable and the connection must be closed.
        """
        self._buffer.extend(data)
        payloads: list[bytes] = []
        while len(self._buffer) >= HEADER.size:
            magic, version, length = HEADER.unpack_from(self._buffer)
            if magic != MAGIC:
                raise FrameError(
                    f"bad frame magic 0x{magic:02X} (expected 0x{MAGIC:02X}): "
                    "not an RPC stream"
                )
            if version != PROTOCOL_VERSION:
                raise FrameError(
                    f"unsupported protocol version {version} "
                    f"(expected {PROTOCOL_VERSION})"
                )
            if length > self.max_frame:
                raise FrameTooLargeError(length, self.max_frame)
            if len(self._buffer) < HEADER.size + length:
                break
            payloads.append(bytes(self._buffer[HEADER.size : HEADER.size + length]))
            del self._buffer[: HEADER.size + length]
            self.frames_decoded += 1
        return payloads

    def eof(self) -> None:
        """Signal end of stream; raises if it ends inside a frame."""
        if self._buffer:
            raise TruncatedFrameError(
                f"stream ended with {len(self._buffer)} bytes of an "
                "incomplete frame"
            )
