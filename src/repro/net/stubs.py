"""Client stubs: remote nodes behind local duck types.

A stub mirrors the public surface of a storage node
(:class:`~repro.core.provider.DataProvider` or
:class:`~repro.hdfs.datanode.DataNode`) and forwards every call over a
:class:`~repro.net.transport.Transport`.  The replication layer, the
provider manager and the HDFS filesystem only rely on the duck type, so
they operate on stubs unchanged — a remote cluster looks exactly like
the in-process one.

Error mapping is the interesting part:

* Remote *application* exceptions re-raise as themselves (the transport
  carries the pickled object), so ``ProviderUnavailableError`` and
  ``KeyError`` drive the existing replica-failover paths.
* *Transport* failures (peer gone, timeout after retries) convert to
  :class:`~repro.core.errors.ProviderUnavailableError` — from the data
  path's perspective an unreachable node and a crashed node are the
  same event, and both must trigger failover, not an unhandled
  ``NetError``.
* Predicates degrade gracefully: ``available`` is ``False`` and
  ``has_page`` / ``has_block`` answer ``False`` when the node cannot be
  reached — callers probing for replicas treat silence as absence.

Identity fields (``provider_id``, ``host``, ``rack``) are fetched once
at connect time: they are immutable on the node, and the allocation
strategies read them in tight loops.
"""

from __future__ import annotations

from typing import Any

from ..core.errors import ProviderUnavailableError
from ..core.pages import PageKey
from ..core.provider import ProviderStats
from ..hdfs.datanode import DataNodeStats
from .errors import NetError
from .transport import Transport

__all__ = [
    "RemoteDataProvider",
    "RemoteDataNode",
    "RemoteMetadataProvider",
    "RemoteJobService",
]

#: Service names a node process exposes its storage object under.
PROVIDER_SERVICE = "provider"
DATANODE_SERVICE = "datanode"
METADATA_SERVICE = "metadata"
JOBSERVICE_SERVICE = "jobservice"


class _Stub:
    """Shared forwarding machinery for both stub kinds."""

    def __init__(self, transport: Transport, service: str) -> None:
        self._transport = transport
        self._service = service

    def _call(self, method: str, *args: Any, **kwargs: Any) -> Any:
        try:
            return self._transport.call(self._service, method, *args, **kwargs)
        except NetError as exc:
            raise ProviderUnavailableError(
                f"{self._transport.peer} unreachable: {exc!r}"
            ) from exc

    def _probe(self, method: str, *args: Any) -> Any:
        """A call whose failure means "no" rather than an error."""
        try:
            return self._transport.call(self._service, method, *args)
        except NetError:
            return None

    def close(self) -> None:
        """Close the underlying transport (the remote node keeps running)."""
        self._transport.close()

    @property
    def transport(self) -> Transport:
        """The channel this stub talks through (tests and fault plans)."""
        return self._transport


class RemoteDataProvider(_Stub):
    """A :class:`~repro.core.provider.DataProvider` living in another process."""

    def __init__(
        self,
        transport: Transport,
        *,
        provider_id: int,
        host: str,
        rack: str,
        service: str = PROVIDER_SERVICE,
    ) -> None:
        super().__init__(transport, service)
        self.provider_id = provider_id
        self.host = host
        self.rack = rack

    @classmethod
    def connect(
        cls, transport: Transport, *, service: str = PROVIDER_SERVICE
    ) -> "RemoteDataProvider":
        """Build a stub by fetching the node's identity over the wire."""
        return cls(
            transport,
            provider_id=transport.call(service, "provider_id"),
            host=transport.call(service, "host"),
            rack=transport.call(service, "rack"),
            service=service,
        )

    # -- availability -------------------------------------------------------------
    @property
    def available(self) -> bool:
        value = self._probe("available")
        return bool(value)

    def fail(self) -> None:
        self._call("fail")

    def recover(self) -> None:
        self._call("recover")

    # -- page operations ----------------------------------------------------------
    def put_page(self, key: PageKey, data: bytes) -> None:
        self._call("put_page", key, data)

    def get_page(self, key: PageKey) -> bytes:
        return self._call("get_page", key)

    def has_page(self, key: PageKey) -> bool:
        return bool(self._probe("has_page", key))

    def remove_page(self, key: PageKey) -> None:
        self._call("remove_page", key)

    def page_keys(self) -> list[PageKey]:
        return self._call("page_keys")

    def pages_for_blob(self, blob_id: int) -> list[PageKey]:
        return self._call("pages_for_blob", blob_id)

    # -- statistics ---------------------------------------------------------------
    def stats(self) -> ProviderStats:
        return self._call("stats")

    def sync(self) -> None:
        self._call("sync")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RemoteDataProvider(id={self.provider_id}, host={self.host!r}, "
            f"peer={self._transport.peer!r})"
        )


class RemoteMetadataProvider(_Stub):
    """A :class:`~repro.core.dht.MetadataProvider` in another process.

    Mirrors the metadata node's key-value surface closely enough that a
    :class:`~repro.core.dht.MetadataDHT` (and therefore the sharded
    metadata plane built on it) runs over remote nodes unchanged.
    ``stats`` stays a property to match the in-process class, and
    ``len(stub)`` reads the remote entry count through it — the DHT's
    ``distribution()`` relies on ``__len__``, and dunder names are not
    dispatchable over the wire.
    """

    def __init__(
        self,
        transport: Transport,
        *,
        provider_id: int,
        service: str = METADATA_SERVICE,
    ) -> None:
        super().__init__(transport, service)
        self.provider_id = provider_id

    @classmethod
    def connect(
        cls, transport: Transport, *, service: str = METADATA_SERVICE
    ) -> "RemoteMetadataProvider":
        """Build a stub by fetching the node's identity over the wire."""
        return cls(
            transport,
            provider_id=transport.call(service, "provider_id"),
            service=service,
        )

    # -- availability -------------------------------------------------------------
    @property
    def available(self) -> bool:
        return bool(self._probe("available"))

    def fail(self) -> None:
        self._call("fail")

    def recover(self) -> None:
        self._call("recover")

    # -- key-value operations -----------------------------------------------------
    def put(self, key: str, value: Any) -> None:
        self._call("put", key, value)

    def get(self, key: str) -> Any:
        return self._call("get", key)

    def contains(self, key: str) -> bool:
        return bool(self._call("contains", key))

    def delete(self, key: str) -> None:
        self._call("delete", key)

    def keys(self) -> list[str]:
        return self._call("keys")

    def __len__(self) -> int:
        return int(self.stats["entries"])

    # -- statistics ---------------------------------------------------------------
    @property
    def stats(self) -> dict[str, int]:
        return self._call("stats")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RemoteMetadataProvider(id={self.provider_id}, "
            f"peer={self._transport.peer!r})"
        )


class RemoteJobService(_Stub):
    """A :class:`~repro.mapreduce.service.JobServiceEndpoint` in another process.

    The submission plane of the multi-tenant job service over the wire:
    ids in, states and result summaries out.  Application exceptions
    (:class:`~repro.mapreduce.service.AdmissionError`, quota errors raised
    at submit time) re-raise as themselves through the transport's pickled
    error path; an unreachable service surfaces as
    :class:`~repro.core.errors.ProviderUnavailableError`, like every other
    dead node.
    """

    def __init__(
        self, transport: Transport, *, service: str = JOBSERVICE_SERVICE
    ) -> None:
        super().__init__(transport, service)

    @classmethod
    def connect(
        cls, transport: Transport, *, service: str = JOBSERVICE_SERVICE
    ) -> "RemoteJobService":
        """Build a stub (the job service carries no per-node identity)."""
        return cls(transport, service=service)

    # -- submission plane ---------------------------------------------------------
    def submit_job(
        self, job: Any, tenant: str | None = None, priority: int | None = None
    ) -> int:
        return self._call("submit_job", job, tenant, priority)

    def job_status(self, job_id: int) -> str:
        return self._call("job_status", job_id)

    def wait_job(self, job_id: int, timeout: float | None = None) -> dict:
        # Long poll: must never wait in (or hold up) a batch flush on a
        # transport that coalesces small ops (no_batch is consumed by
        # Transport.call, never forwarded to the remote method).
        return self._call("wait_job", job_id, timeout, no_batch=True)

    def cancel_job(self, job_id: int) -> bool:
        return bool(self._call("cancel_job", job_id))

    def job_ids(self) -> list[int]:
        return self._call("job_ids")

    def service_stats(self) -> dict:
        return self._call("service_stats")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RemoteJobService(peer={self._transport.peer!r})"


class RemoteDataNode(_Stub):
    """An HDFS :class:`~repro.hdfs.datanode.DataNode` in another process."""

    def __init__(
        self,
        transport: Transport,
        *,
        node_id: int,
        host: str,
        rack: str,
        service: str = DATANODE_SERVICE,
    ) -> None:
        super().__init__(transport, service)
        self.node_id = node_id
        self.host = host
        self.rack = rack

    @classmethod
    def connect(
        cls, transport: Transport, *, service: str = DATANODE_SERVICE
    ) -> "RemoteDataNode":
        """Build a stub by fetching the node's identity over the wire."""
        return cls(
            transport,
            node_id=transport.call(service, "node_id"),
            host=transport.call(service, "host"),
            rack=transport.call(service, "rack"),
            service=service,
        )

    # -- availability -------------------------------------------------------------
    @property
    def available(self) -> bool:
        return bool(self._probe("available"))

    def fail(self) -> None:
        self._call("fail")

    def recover(self) -> None:
        self._call("recover")

    # -- block I/O ----------------------------------------------------------------
    def write_block(self, block_id: int, data: bytes) -> None:
        self._call("write_block", block_id, data)

    def read_block(
        self, block_id: int, offset: int = 0, length: int | None = None
    ) -> bytes:
        return self._call("read_block", block_id, offset, length)

    def has_block(self, block_id: int) -> bool:
        return bool(self._probe("has_block", block_id))

    def delete_block(self, block_id: int) -> None:
        self._call("delete_block", block_id)

    def block_ids(self) -> list[int]:
        return self._call("block_ids")

    # -- statistics ---------------------------------------------------------------
    def stats(self) -> DataNodeStats:
        return self._call("stats")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RemoteDataNode(id={self.node_id}, host={self.host!r}, "
            f"peer={self._transport.peer!r})"
        )
