"""Metadata DHT: consistent hashing over metadata providers.

BlobSeer stores the versioned metadata tree (the mapping from ``(blob,
version, byte range)`` to page descriptors) in a distributed hash table
managed by several *metadata providers*.  Decentralising metadata is one of
the design points the paper credits for sustained throughput under heavy
concurrency: no single metadata server becomes a bottleneck.

This module provides:

* :class:`MetadataProvider` — one DHT node, a thread-safe key-value map with
  access counters (so experiments can verify that metadata load spreads).
* :class:`ConsistentHashRing` — a classic consistent-hashing ring with
  virtual nodes, used to assign keys to metadata providers with minimal
  reshuffling when providers join or leave.
* :class:`MetadataDHT` — the client-facing facade combining the two.
"""

from __future__ import annotations

import bisect
import hashlib
import threading
from typing import Any, Iterable, Iterator

from .errors import NoProvidersError, ProviderUnavailableError

__all__ = ["MetadataProvider", "ConsistentHashRing", "MetadataDHT"]


def _hash_key(key: str) -> int:
    """Stable 64-bit hash used to position keys and virtual nodes on the ring."""
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class MetadataProvider:
    """A single metadata node: a small thread-safe key-value store."""

    def __init__(self, provider_id: int) -> None:
        self.provider_id = provider_id
        self._data: dict[str, Any] = {}
        self._lock = threading.Lock()
        self._puts = 0
        self._gets = 0
        self._available = True

    @property
    def available(self) -> bool:
        """Whether this metadata provider currently serves requests."""
        return self._available

    def fail(self) -> None:
        """Simulate a crash of this metadata provider."""
        self._available = False

    def recover(self) -> None:
        """Bring the metadata provider back online."""
        self._available = True

    def _check(self) -> None:
        if not self._available:
            raise ProviderUnavailableError(f"metadata-{self.provider_id}")

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` under ``key`` (idempotent overwrite)."""
        with self._lock:
            self._check()
            self._data[key] = value
            self._puts += 1

    def get(self, key: str) -> Any:
        """Return the value stored under ``key``; raises ``KeyError`` if absent."""
        with self._lock:
            self._check()
            self._gets += 1
            return self._data[key]

    def contains(self, key: str) -> bool:
        """Return whether ``key`` is present."""
        with self._lock:
            self._check()
            return key in self._data

    def delete(self, key: str) -> None:
        """Remove ``key`` (raises ``KeyError`` if absent)."""
        with self._lock:
            self._check()
            del self._data[key]

    def keys(self) -> list[str]:
        """Snapshot of the stored keys."""
        with self._lock:
            return list(self._data.keys())

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    @property
    def stats(self) -> dict[str, int]:
        """Access counters: ``{"puts": ..., "gets": ..., "entries": ...}``."""
        with self._lock:
            return {"puts": self._puts, "gets": self._gets, "entries": len(self._data)}


class ConsistentHashRing:
    """Consistent hashing ring with virtual nodes.

    Each member contributes ``virtual_nodes`` points on a 64-bit ring; a key
    is owned by the member whose point follows the key's hash (wrapping
    around).  Adding or removing a member only remaps the keys adjacent to
    its points, which keeps metadata migration minimal.
    """

    def __init__(self, *, virtual_nodes: int = 64) -> None:
        if virtual_nodes < 1:
            raise ValueError("virtual_nodes must be >= 1")
        self._virtual_nodes = virtual_nodes
        self._ring: list[tuple[int, int]] = []  # (point, member id), sorted
        self._members: set[int] = set()

    def add_member(self, member_id: int) -> None:
        """Add a member and its virtual nodes to the ring."""
        if member_id in self._members:
            raise ValueError(f"member {member_id} already on the ring")
        self._members.add(member_id)
        for replica in range(self._virtual_nodes):
            point = _hash_key(f"member:{member_id}:vnode:{replica}")
            bisect.insort(self._ring, (point, member_id))

    def remove_member(self, member_id: int) -> None:
        """Remove a member and all of its virtual nodes."""
        if member_id not in self._members:
            raise ValueError(f"member {member_id} is not on the ring")
        self._members.remove(member_id)
        self._ring = [(p, m) for (p, m) in self._ring if m != member_id]

    @property
    def members(self) -> set[int]:
        """Current ring membership."""
        return set(self._members)

    def owner(self, key: str) -> int:
        """Return the member id owning ``key``."""
        if not self._ring:
            raise NoProvidersError("consistent hash ring is empty")
        point = _hash_key(key)
        index = bisect.bisect_right(self._ring, (point, float("inf")))
        if index == len(self._ring):
            index = 0
        return self._ring[index][1]

    def owners(self, key: str, count: int) -> list[int]:
        """Return up to ``count`` distinct members for ``key`` (replica set).

        Successive distinct members clockwise from the key's position; used
        for metadata replication.
        """
        if not self._ring:
            raise NoProvidersError("consistent hash ring is empty")
        count = min(count, len(self._members))
        point = _hash_key(key)
        index = bisect.bisect_right(self._ring, (point, float("inf")))
        result: list[int] = []
        seen: set[int] = set()
        for step in range(len(self._ring)):
            member = self._ring[(index + step) % len(self._ring)][1]
            if member not in seen:
                seen.add(member)
                result.append(member)
                if len(result) == count:
                    break
        return result


class MetadataDHT:
    """Client facade over the metadata providers and the hash ring."""

    def __init__(
        self,
        providers: Iterable[MetadataProvider],
        *,
        virtual_nodes: int = 64,
        replication: int = 1,
    ) -> None:
        self._providers: dict[int, MetadataProvider] = {}
        self._ring = ConsistentHashRing(virtual_nodes=virtual_nodes)
        self._replication = max(1, replication)
        for provider in providers:
            self.add_provider(provider)
        if not self._providers:
            raise NoProvidersError("a metadata DHT needs at least one provider")

    # -- membership ---------------------------------------------------------------
    def add_provider(self, provider: MetadataProvider) -> None:
        """Register a metadata provider and place it on the ring."""
        if provider.provider_id in self._providers:
            raise ValueError(f"metadata provider {provider.provider_id} already added")
        self._providers[provider.provider_id] = provider
        self._ring.add_member(provider.provider_id)

    def remove_provider(self, provider_id: int) -> MetadataProvider:
        """Remove a metadata provider from the DHT (its keys become unreachable)."""
        provider = self._providers.pop(provider_id)
        self._ring.remove_member(provider_id)
        return provider

    @property
    def providers(self) -> list[MetadataProvider]:
        """The registered metadata providers."""
        return list(self._providers.values())

    # -- key-value API ------------------------------------------------------------
    def _replicas_for(self, key: str) -> list[MetadataProvider]:
        owner_ids = self._ring.owners(key, self._replication)
        return [self._providers[i] for i in owner_ids]

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` on the key's replica set (all replicas, best effort)."""
        replicas = self._replicas_for(key)
        stored = 0
        last_error: Exception | None = None
        for provider in replicas:
            try:
                provider.put(key, value)
                stored += 1
            except ProviderUnavailableError as exc:  # pragma: no cover - failover
                last_error = exc
        if stored == 0:
            raise last_error if last_error else NoProvidersError(
                "no metadata provider accepted the put"
            )

    def get(self, key: str) -> Any:
        """Fetch ``key`` from the first live replica."""
        last_error: Exception | None = None
        for provider in self._replicas_for(key):
            try:
                return provider.get(key)
            except ProviderUnavailableError as exc:
                last_error = exc
            except KeyError as exc:
                last_error = exc
        if isinstance(last_error, KeyError):
            raise last_error
        raise last_error if last_error else KeyError(key)

    def contains(self, key: str) -> bool:
        """Whether any live replica stores ``key``."""
        for provider in self._replicas_for(key):
            try:
                if provider.contains(key):
                    return True
            except ProviderUnavailableError:
                continue
        return False

    def delete(self, key: str) -> None:
        """Delete ``key`` from every live replica that stores it."""
        for provider in self._replicas_for(key):
            try:
                if provider.contains(key):
                    provider.delete(key)
            except ProviderUnavailableError:
                continue

    def owner_of(self, key: str) -> int:
        """Return the primary owner id of ``key`` (for distribution analysis)."""
        return self._ring.owner(key)

    def distribution(self) -> dict[int, int]:
        """Map metadata provider id -> number of entries stored."""
        return {p.provider_id: len(p) for p in self.providers}

    def __iter__(self) -> Iterator[MetadataProvider]:
        return iter(self.providers)
