"""Provider manager: allocation of pages to data providers.

The provider manager is the BlobSeer entity that decides, for every page of
an incoming write, which providers will store its replicas.  The paper
attributes BSFS's sustained throughput under concurrency primarily to this
component's *load-balancing* strategy, in contrast to HDFS's local-first
chunk placement — so the strategies here are deliberately pluggable and the
same classes are reused by the cluster simulator.

Three strategies are provided:

* :class:`LoadBalancedStrategy` — the BlobSeer default: each page replica
  goes to the least-loaded available provider (pages stored, then pages
  written, then a round-robin tiebreak), skipping providers already used
  for the same page.
* :class:`RandomStrategy` — uniform random placement (ablation baseline).
* :class:`LocalFirstStrategy` — always places the first replica on the
  writer's "local" provider, mimicking the HDFS policy the paper contrasts
  against (ablation baseline).
"""

from __future__ import annotations

import heapq
import random
import threading
from abc import ABC, abstractmethod
from typing import Sequence

from .errors import AllocationError, NoProvidersError
from .provider import DataProvider, ProviderStats

__all__ = [
    "AllocationStrategy",
    "LoadBalancedStrategy",
    "RandomStrategy",
    "LocalFirstStrategy",
    "make_strategy",
    "ProviderManager",
]


class AllocationStrategy(ABC):
    """Strategy interface: choose providers for the replicas of one page."""

    @abstractmethod
    def select(
        self,
        stats: Sequence[ProviderStats],
        replication: int,
        *,
        client_hint: int | None = None,
        pending: dict[int, int] | None = None,
    ) -> list[int]:
        """Return ``replication`` distinct provider ids for one page.

        Parameters
        ----------
        stats:
            Current statistics of every *available* provider.
        replication:
            Number of distinct providers to choose.
        client_hint:
            Provider id co-located with the writing client (may be ``None``).
        pending:
            Pages already allocated to each provider within the current
            allocation batch but not yet written; strategies should count
            these as load so a large write spreads evenly.
        """

    def select_range(
        self,
        stats: Sequence[ProviderStats],
        num_pages: int,
        replication: int,
        *,
        client_hint: int | None = None,
        pending: dict[int, int] | None = None,
        max_range: int = 1,
    ) -> list[tuple[int, tuple[int, ...]]]:
        """Allocate ``num_pages`` consecutive pages as ``(run_length, providers)`` runs.

        Each run assigns ``run_length`` consecutive pages to the same
        replica set, so the caller pays one placement decision per run
        instead of one per page; ``max_range`` caps the run length (the
        ``allocation_range_pages`` knob).  ``pending`` is mutated with the
        load this call assigns.  The default implementation preserves
        per-page behaviour exactly: it calls :meth:`select` once per page
        and coalesces adjacent identical choices.
        """
        pending = pending if pending is not None else {}
        runs: list[tuple[int, tuple[int, ...]]] = []
        for _ in range(num_pages):
            chosen = tuple(
                self.select(
                    stats, replication, client_hint=client_hint, pending=pending
                )
            )
            for provider_id in chosen:
                pending[provider_id] = pending.get(provider_id, 0) + 1
            if runs and runs[-1][1] == chosen and runs[-1][0] < max_range:
                runs[-1] = (runs[-1][0] + 1, chosen)
            else:
                runs.append((1, chosen))
        return runs


class LoadBalancedStrategy(AllocationStrategy):
    """BlobSeer's default: replicas go to the least-loaded providers."""

    def __init__(self, *, seed: int = 0) -> None:
        self._rng = random.Random(seed)
        self._round_robin = 0

    def select(
        self,
        stats: Sequence[ProviderStats],
        replication: int,
        *,
        client_hint: int | None = None,
        pending: dict[int, int] | None = None,
    ) -> list[int]:
        pending = pending or {}
        self._round_robin += 1

        def load(s: ProviderStats) -> tuple[int, int, int]:
            return (
                s.pages_stored + pending.get(s.provider_id, 0),
                s.pages_written,
                (s.provider_id + self._round_robin) % max(len(stats), 1),
            )

        if replication == 1:
            # The common unreplicated case: O(n) min instead of a full
            # O(n log n) sort.  Allocation runs under the provider-manager
            # lock and is the *serial* section of the now-parallel write
            # path, so per-page cost here bounds aggregate throughput.
            return [min(stats, key=load).provider_id]
        # Replicated case: O(n log r) partial selection instead of sorting
        # the whole pool per page.
        ranked = heapq.nsmallest(replication, stats, key=load)
        return [s.provider_id for s in ranked]

    def select_range(
        self,
        stats: Sequence[ProviderStats],
        num_pages: int,
        replication: int,
        *,
        client_hint: int | None = None,
        pending: dict[int, int] | None = None,
        max_range: int = 1,
    ) -> list[tuple[int, tuple[int, ...]]]:
        """Waterfill: hand each replica set a contiguous run of pages.

        One heap round-trip covers up to ``max_range`` pages, so a large
        write costs ``O(pages / max_range)`` placement decisions instead of
        one per page.  Load balancing granularity coarsens to ``max_range``
        pages — the knob trades allocator lock time against placement
        smoothness (`allocation_range_pages` in the config).

        Runs are additionally capped so the write still *stripes* across
        the whole pool: a 4-page write over 4 providers lands one page per
        provider exactly as per-page allocation would (the paper's parallel
        I/O depends on that), and ranges only grow once there are more
        pages than providers to keep busy.
        """
        # Never batch so coarsely that providers sit idle while the write's
        # pages could fan out to them.
        spread_cap = max(
            1, (num_pages * replication + max(len(stats), 1) - 1) // max(len(stats), 1)
        )
        max_range = min(max_range, spread_cap)
        if max_range <= 1 or num_pages <= 1:
            return super().select_range(
                stats,
                num_pages,
                replication,
                client_hint=client_hint,
                pending=pending,
                max_range=max_range,
            )
        pending = pending if pending is not None else {}
        self._round_robin += 1
        modulus = max(len(stats), 1)

        def key(s: ProviderStats) -> tuple[int, int, int, int]:
            return (
                s.pages_stored + pending.get(s.provider_id, 0),
                s.pages_written,
                (s.provider_id + self._round_robin) % modulus,
                s.provider_id,
            )

        heap = [(key(s), s) for s in stats]
        heapq.heapify(heap)
        runs: list[tuple[int, tuple[int, ...]]] = []
        remaining = num_pages
        while remaining > 0:
            run = min(max_range, remaining)
            popped = [heapq.heappop(heap) for _ in range(replication)]
            chosen = tuple(item[1].provider_id for item in popped)
            for _key, s in popped:
                pending[s.provider_id] = pending.get(s.provider_id, 0) + run
                heapq.heappush(heap, (key(s), s))
            runs.append((run, chosen))
            remaining -= run
        return runs


class RandomStrategy(AllocationStrategy):
    """Uniform random placement, used as an ablation baseline."""

    def __init__(self, *, seed: int = 0) -> None:
        self._rng = random.Random(seed)

    def select(
        self,
        stats: Sequence[ProviderStats],
        replication: int,
        *,
        client_hint: int | None = None,
        pending: dict[int, int] | None = None,
    ) -> list[int]:
        ids = [s.provider_id for s in stats]
        return self._rng.sample(ids, replication)


class LocalFirstStrategy(AllocationStrategy):
    """HDFS-like placement: first replica on the writer's local provider.

    Remaining replicas are chosen like :class:`RandomStrategy`.  When the
    client has no co-located provider the strategy degrades to random
    placement.  This strategy exists to let the ablation benchmarks isolate
    the effect of placement policy from everything else.
    """

    def __init__(self, *, seed: int = 0) -> None:
        self._rng = random.Random(seed)

    def select(
        self,
        stats: Sequence[ProviderStats],
        replication: int,
        *,
        client_hint: int | None = None,
        pending: dict[int, int] | None = None,
    ) -> list[int]:
        ids = [s.provider_id for s in stats]
        chosen: list[int] = []
        if client_hint is not None and client_hint in ids:
            chosen.append(client_hint)
        remaining = [i for i in ids if i not in chosen]
        extra = self._rng.sample(remaining, replication - len(chosen))
        return chosen + extra


_STRATEGIES = {
    "load_balanced": LoadBalancedStrategy,
    "random": RandomStrategy,
    "local_first": LocalFirstStrategy,
}


def make_strategy(name: str, *, seed: int = 0) -> AllocationStrategy:
    """Instantiate an allocation strategy by configuration name."""
    try:
        factory = _STRATEGIES[name]
    except KeyError:
        raise AllocationError(f"unknown allocation strategy {name!r}") from None
    return factory(seed=seed)


class ProviderManager:
    """Registry of data providers plus the page allocation service."""

    def __init__(
        self,
        providers: Sequence[DataProvider] | None = None,
        *,
        strategy: AllocationStrategy | str = "load_balanced",
        seed: int = 0,
        range_pages: int = 1,
    ) -> None:
        self._providers: dict[int, DataProvider] = {}
        self._lock = threading.Lock()
        if isinstance(strategy, str):
            strategy = make_strategy(strategy, seed=seed)
        self._strategy = strategy
        if range_pages < 1:
            raise AllocationError("range_pages must be at least 1")
        #: Default cap on contiguous pages per replica set handed out by one
        #: placement decision (``allocation_range_pages`` in the config).
        self._range_pages = range_pages
        for provider in providers or []:
            self.register(provider)

    # -- registry -----------------------------------------------------------------
    def register(self, provider: DataProvider, *, replace: bool = False) -> None:
        """Add a provider to the pool; its id must be unique.

        ``replace=True`` allows a restarted node process to re-register
        under its old id: the stale entry is swapped out instead of
        double-counting capacity.  Without it a duplicate id is an error,
        preserving the strict semantics the allocator tests rely on.
        """
        with self._lock:
            if provider.provider_id in self._providers and not replace:
                raise AllocationError(
                    f"provider id {provider.provider_id} already registered"
                )
            self._providers[provider.provider_id] = provider

    def unregister(self, provider_id: int) -> DataProvider:
        """Remove and return a provider from the pool."""
        with self._lock:
            try:
                return self._providers.pop(provider_id)
            except KeyError:
                raise AllocationError(
                    f"provider id {provider_id} is not registered"
                ) from None

    def deregister(self, provider_id: int) -> DataProvider | None:
        """Remove a provider if present (idempotent :meth:`unregister`).

        Failure-detection paths call this when a node is declared dead;
        the node may already be gone (clean shutdown raced the heartbeat
        timeout), so a missing id is not an error.  Returns the removed
        provider, or ``None`` if the id was not registered.
        """
        with self._lock:
            return self._providers.pop(provider_id, None)

    def get(self, provider_id: int) -> DataProvider:
        """Return the provider registered under ``provider_id``."""
        with self._lock:
            try:
                return self._providers[provider_id]
            except KeyError:
                raise AllocationError(
                    f"provider id {provider_id} is not registered"
                ) from None

    @property
    def providers(self) -> list[DataProvider]:
        """All registered providers (including failed ones)."""
        with self._lock:
            return list(self._providers.values())

    @property
    def provider_ids(self) -> list[int]:
        """Ids of all registered providers."""
        with self._lock:
            return list(self._providers.keys())

    def available_stats(self) -> list[ProviderStats]:
        """Statistics snapshots of the providers currently accepting requests."""
        return [p.stats() for p in self.providers if p.available]

    # -- allocation ---------------------------------------------------------------
    def allocate(
        self,
        num_pages: int,
        replication: int,
        *,
        client_hint: int | None = None,
    ) -> list[tuple[int, ...]]:
        """Choose providers for ``num_pages`` pages with ``replication`` replicas each.

        Returns one tuple of distinct provider ids per page.  The allocation
        for the whole batch is computed under a single lock so concurrent
        writers see a consistent view of provider load, and intra-batch
        allocations are themselves counted as load (``pending``) so a single
        large write stripes evenly across the pool.
        """
        if num_pages < 0:
            raise AllocationError("cannot allocate a negative number of pages")
        allocation: list[tuple[int, ...]] = []
        for run, chosen in self.allocate_ranges(
            num_pages, replication, client_hint=client_hint
        ):
            allocation.extend([chosen] * run)
        return allocation

    def allocate_ranges(
        self,
        num_pages: int,
        replication: int,
        *,
        client_hint: int | None = None,
        max_range: int | None = None,
    ) -> list[tuple[int, tuple[int, ...]]]:
        """Choose providers for ``num_pages`` consecutive pages as runs.

        Returns ``(run_length, provider_ids)`` pairs covering the pages in
        order: each run stores its pages' replicas on the same provider
        set, so the strategy makes one placement decision per run instead
        of one per page.  ``max_range`` defaults to the manager's
        ``range_pages``.

        Provider statistics are gathered *outside* the allocator lock
        (``stats()`` may be an RPC for remote providers); only the strategy
        run itself — the true serial section — holds it.
        """
        if num_pages < 0:
            raise AllocationError("cannot allocate a negative number of pages")
        if replication < 1:
            raise AllocationError("replication must be at least 1")
        if max_range is None:
            max_range = self._range_pages
        if max_range < 1:
            raise AllocationError("max_range must be at least 1")
        with self._lock:
            available = [p for p in self._providers.values() if p.available]
        if not available:
            raise NoProvidersError("no data providers are available")
        if replication > len(available):
            raise AllocationError(
                f"replication {replication} exceeds available providers "
                f"({len(available)})"
            )
        stats = [p.stats() for p in available]
        with self._lock:
            runs = self._strategy.select_range(
                stats,
                num_pages,
                replication,
                client_hint=client_hint,
                pending={},
                max_range=max_range,
            )
        covered = 0
        for run, chosen in runs:
            if run < 1 or len(set(chosen)) != replication:
                raise AllocationError(
                    "allocation strategy returned an invalid range"
                )
            covered += run
        if covered != num_pages:
            raise AllocationError(
                f"allocation strategy covered {covered} of {num_pages} pages"
            )
        return runs

    # -- monitoring ---------------------------------------------------------------
    def stats(self) -> dict[int, ProviderStats]:
        """Per-provider statistics snapshot for monitoring.

        The registry lock is held only to snapshot provider *references*;
        the per-provider ``stats()`` calls (RPCs for remote providers) run
        outside it, so a slow or dead node never stalls allocation.
        """
        with self._lock:
            providers = list(self._providers.values())
        return {p.provider_id: p.stats() for p in providers}

    def distribution(self) -> dict[int, int]:
        """Map provider id -> number of pages stored (load-balance metric)."""
        return {p.provider_id: p.stats().pages_stored for p in self.providers}

    def imbalance(self) -> float:
        """Max/mean ratio of pages stored across available providers.

        A perfectly balanced pool has imbalance 1.0; the metric is used by
        ablation benchmarks to compare allocation strategies.
        """
        counts = [
            p.stats().pages_stored for p in self.providers if p.available
        ]
        if not counts or sum(counts) == 0:
            return 1.0
        mean = sum(counts) / len(counts)
        return max(counts) / mean
