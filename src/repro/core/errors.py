"""Exception hierarchy for the BlobSeer core.

Every error raised by :mod:`repro.core` derives from :class:`BlobSeerError` so
callers (the BSFS layer, the MapReduce engine, tests) can catch storage-layer
failures with a single ``except`` clause while still being able to
discriminate the precise failure mode.
"""

from __future__ import annotations

__all__ = [
    "BlobSeerError",
    "BlobNotFoundError",
    "VersionNotFoundError",
    "VersionNotPublishedError",
    "VersionRetiredError",
    "BlobPinnedError",
    "PageNotFoundError",
    "ProviderUnavailableError",
    "NoProvidersError",
    "AllocationError",
    "InvalidRangeError",
    "AlignmentError",
    "MetadataCorruptionError",
    "PersistenceError",
    "TicketError",
]


class BlobSeerError(Exception):
    """Base class for all BlobSeer storage errors."""


class BlobNotFoundError(BlobSeerError):
    """Raised when an operation references a blob id that was never created."""

    def __init__(self, blob_id: int) -> None:
        super().__init__(f"blob {blob_id!r} does not exist")
        self.blob_id = blob_id


class VersionNotFoundError(BlobSeerError):
    """Raised when a requested blob version does not exist."""

    def __init__(self, blob_id: int, version: int) -> None:
        super().__init__(f"blob {blob_id!r} has no version {version!r}")
        self.blob_id = blob_id
        self.version = version


class VersionNotPublishedError(BlobSeerError):
    """Raised when reading a version that was assigned but never published.

    A writer that obtained a ticket but crashed before publishing leaves a
    gap in the version sequence; readers asking for that exact version get
    this error rather than silently observing partial data.
    """

    def __init__(self, blob_id: int, version: int) -> None:
        super().__init__(
            f"version {version!r} of blob {blob_id!r} has not been published"
        )
        self.blob_id = blob_id
        self.version = version


class VersionRetiredError(VersionNotFoundError):
    """Raised when reading a version reclaimed by the version garbage collector.

    Subclasses :class:`VersionNotFoundError` because from a reader's point of
    view the snapshot no longer exists; the distinct type lets tests and
    monitoring tell "never existed" apart from "existed and was collected".
    """

    def __init__(self, blob_id: int, version: int) -> None:
        # Bypass VersionNotFoundError.__init__ to keep a precise message.
        BlobSeerError.__init__(
            self,
            f"version {version!r} of blob {blob_id!r} was retired by the "
            "version garbage collector",
        )
        self.blob_id = blob_id
        self.version = version


class BlobPinnedError(BlobSeerError):
    """Raised when deleting a blob that still has active snapshot pins.

    Pins are leases held by readers and jobs; deleting the blob under them
    would orphan their metadata mid-read.  Callers either release the pins,
    wait for them to drain, or defer the delete.
    """

    def __init__(self, blob_id: int, pin_count: int) -> None:
        super().__init__(
            f"blob {blob_id!r} has {pin_count} active snapshot pin(s); "
            "release them or wait for the pins to drain before deleting"
        )
        self.blob_id = blob_id
        self.pin_count = pin_count


class PageNotFoundError(BlobSeerError):
    """Raised when a page referenced by metadata is missing from providers."""

    def __init__(self, key: object) -> None:
        super().__init__(f"page {key!r} could not be located on any provider")
        self.key = key


class ProviderUnavailableError(BlobSeerError):
    """Raised when a data or metadata provider is offline."""

    def __init__(self, provider_id: object) -> None:
        super().__init__(f"provider {provider_id!r} is unavailable")
        self.provider_id = provider_id


class NoProvidersError(BlobSeerError):
    """Raised when an operation requires providers but none are registered."""


class AllocationError(BlobSeerError):
    """Raised when the provider manager cannot satisfy an allocation request."""


class InvalidRangeError(BlobSeerError):
    """Raised for byte ranges that fall outside the blob or are malformed."""


class AlignmentError(BlobSeerError):
    """Raised for writes whose offset is not aligned to the blob page size."""


class MetadataCorruptionError(BlobSeerError):
    """Raised when the versioned metadata tree is internally inconsistent."""


class PersistenceError(BlobSeerError):
    """Raised by the persistence layer on I/O or recovery failures."""


class TicketError(BlobSeerError):
    """Raised when a write ticket is used incorrectly (reuse, wrong blob...)."""
