"""Versioned, structurally-shared segment-tree metadata.

BlobSeer never overwrites data: every write or append produces a new blob
*version* (snapshot).  The mapping from a version's byte ranges to the pages
holding the bytes is a binary segment tree over page indices.  A new version
builds a fresh path of tree nodes only for the ranges its write touched and
*shares* every untouched subtree with the version it was based on — this is
what makes snapshots cheap and lets an arbitrary number of readers traverse
old versions while writers publish new ones.

Tree nodes are immutable and are stored in the metadata DHT
(:class:`repro.core.dht.MetadataDHT`), keyed by ``(blob, version, lo, hi)``
where ``[lo, hi)`` is the page-index range the node covers and ``version`` is
the version whose write *created* the node (shared nodes keep the key of the
version that created them).

The public entry point is :class:`MetadataManager` with two operations:

* :meth:`MetadataManager.build_version` — given the descriptors of the pages
  a write produced and the root of the version it was based on, create the
  new version's tree and return its root key.
* :meth:`MetadataManager.lookup` — given a version's root key and a page
  range, return the page descriptors covering it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from .dht import MetadataDHT
from .errors import MetadataCorruptionError
from .pages import PageDescriptor

__all__ = ["NodeKey", "TreeNode", "MetadataManager", "next_power_of_two"]


def next_power_of_two(n: int) -> int:
    """Smallest power of two greater than or equal to ``max(n, 1)``."""
    if n <= 1:
        return 1
    return 1 << (n - 1).bit_length()


@dataclass(frozen=True, slots=True)
class NodeKey:
    """Identity of a tree node in the metadata DHT."""

    blob_id: int
    version: int
    lo: int
    hi: int

    def dht_key(self) -> str:
        """String key under which the node is stored in the DHT."""
        return f"meta:{self.blob_id}:{self.version}:{self.lo}:{self.hi}"

    @property
    def span(self) -> int:
        """Number of page indices covered by the node."""
        return self.hi - self.lo

    @property
    def is_leaf_key(self) -> bool:
        """Whether the key covers a single page (a leaf position)."""
        return self.span == 1


@dataclass(frozen=True, slots=True)
class TreeNode:
    """Immutable segment-tree node.

    Interior nodes carry the keys of their two children (either may be
    ``None`` for a hole, i.e. a range never written).  Leaves carry the
    descriptor of the page covering their single index.
    """

    key: NodeKey
    left: NodeKey | None = None
    right: NodeKey | None = None
    page: PageDescriptor | None = None

    @property
    def is_leaf(self) -> bool:
        """Whether this node is a leaf (covers exactly one page index)."""
        return self.key.span == 1


class MetadataManager:
    """Builds and traverses the versioned metadata trees of one deployment.

    The manager is stateless apart from the DHT handle, so a single instance
    can be shared by any number of concurrent writers and readers.
    """

    def __init__(self, dht: MetadataDHT) -> None:
        self._dht = dht

    # -- storage helpers ----------------------------------------------------------
    def _store(self, node: TreeNode) -> NodeKey:
        self._dht.put(node.key.dht_key(), node)
        return node.key

    def fetch(self, key: NodeKey) -> TreeNode:
        """Fetch a node from the DHT, raising on dangling references."""
        try:
            node = self._dht.get(key.dht_key())
        except KeyError:
            raise MetadataCorruptionError(
                f"metadata node {key!r} is referenced but missing from the DHT"
            ) from None
        if not isinstance(node, TreeNode):
            raise MetadataCorruptionError(
                f"DHT entry for {key!r} is not a TreeNode"
            )
        return node

    # -- version construction -----------------------------------------------------
    def build_version(
        self,
        blob_id: int,
        version: int,
        written: Mapping[int, PageDescriptor],
        total_pages: int,
        *,
        base_root: NodeKey | None,
        base_capacity: int,
    ) -> NodeKey | None:
        """Create the tree for ``version`` and return its root key.

        Parameters
        ----------
        blob_id, version:
            Identity of the version being published.
        written:
            Page index -> descriptor for every page the write materialised.
        total_pages:
            Total number of pages of the blob *after* this write (determines
            the capacity of the new tree).
        base_root:
            Root key of the version this write was based on (``None`` for
            the first write to the blob).
        base_capacity:
            Page capacity (power of two) of the base version's tree.

        Returns
        -------
        The root :class:`NodeKey` of the new version, or ``None`` when the
        blob is still empty (zero pages and nothing written).
        """
        if total_pages < 0:
            raise ValueError("total_pages cannot be negative")
        if total_pages == 0 and not written:
            return None
        capacity = next_power_of_two(total_pages)
        if base_root is not None and base_capacity > capacity:
            # A blob never shrinks; keep the larger capacity to preserve sharing.
            capacity = base_capacity
        indices = sorted(written.keys())
        if indices and (indices[0] < 0 or indices[-1] >= capacity):
            raise ValueError(
                f"written page indices {indices[0]}..{indices[-1]} fall outside "
                f"capacity {capacity}"
            )
        node_cache: dict[str, TreeNode] = {}
        root = self._build_range(
            blob_id,
            version,
            0,
            capacity,
            written,
            indices,
            base_root,
            base_capacity,
            node_cache,
        )
        return root

    def _range_touched(self, indices: list[int], lo: int, hi: int) -> bool:
        """Whether any written page index falls inside ``[lo, hi)``."""
        import bisect

        pos = bisect.bisect_left(indices, lo)
        return pos < len(indices) and indices[pos] < hi

    def _find_base_node_key(
        self,
        base_root: NodeKey | None,
        base_capacity: int,
        lo: int,
        hi: int,
        cache: dict[str, TreeNode],
    ) -> NodeKey | None:
        """Key of the base-version node covering exactly ``[lo, hi)``, if any.

        Walks down from the base root; returns ``None`` when the range is a
        hole in the base version (never written) or lies beyond its capacity.
        """
        if base_root is None or lo >= base_capacity:
            return None
        if hi > base_capacity:
            raise MetadataCorruptionError(
                f"range [{lo}, {hi}) straddles the base capacity {base_capacity}"
            )
        current = base_root
        cur_lo, cur_hi = 0, base_capacity
        while (cur_lo, cur_hi) != (lo, hi):
            node = self._fetch_cached(current, cache)
            mid = (cur_lo + cur_hi) // 2
            if hi <= mid:
                child = node.left
                cur_hi = mid
            elif lo >= mid:
                child = node.right
                cur_lo = mid
            else:
                raise MetadataCorruptionError(
                    f"range [{lo}, {hi}) is not aligned with the base tree"
                )
            if child is None:
                return None
            current = child
        return current

    def _fetch_cached(self, key: NodeKey, cache: dict[str, TreeNode]) -> TreeNode:
        dht_key = key.dht_key()
        if dht_key not in cache:
            cache[dht_key] = self.fetch(key)
        return cache[dht_key]

    def _build_range(
        self,
        blob_id: int,
        version: int,
        lo: int,
        hi: int,
        written: Mapping[int, PageDescriptor],
        indices: list[int],
        base_root: NodeKey | None,
        base_capacity: int,
        cache: dict[str, TreeNode],
    ) -> NodeKey | None:
        touched = self._range_touched(indices, lo, hi)
        if not touched:
            if lo >= base_capacity or base_root is None:
                return None  # hole
            if hi <= base_capacity:
                # Untouched range entirely inside the base tree: share it.
                return self._find_base_node_key(
                    base_root, base_capacity, lo, hi, cache
                )
            # Untouched range straddling the base capacity (only possible for
            # prefixes of an expanded tree): recurse so the left part can be
            # shared and the right part becomes a hole.
        if hi - lo == 1:
            descriptor = written.get(lo)
            if descriptor is None:
                # Reached only if a touched ancestor narrowed to an untouched
                # leaf inside the base capacity, which the sharing branch
                # should have handled.
                return self._find_base_node_key(
                    base_root, base_capacity, lo, hi, cache
                )
            node = TreeNode(
                key=NodeKey(blob_id, version, lo, hi), page=descriptor
            )
            return self._store(node)
        mid = (lo + hi) // 2
        left = self._build_range(
            blob_id, version, lo, mid, written, indices, base_root, base_capacity, cache
        )
        right = self._build_range(
            blob_id, version, mid, hi, written, indices, base_root, base_capacity, cache
        )
        node = TreeNode(key=NodeKey(blob_id, version, lo, hi), left=left, right=right)
        return self._store(node)

    # -- lookups ------------------------------------------------------------------
    def lookup(
        self,
        root: NodeKey | None,
        first_page: int,
        last_page: int,
    ) -> dict[int, PageDescriptor]:
        """Return descriptors for the page indices in ``[first_page, last_page)``.

        Indices that were never written (holes) are absent from the result;
        callers decide whether holes are an error (reads) or expected
        (sparse blobs).
        """
        if first_page < 0 or last_page < first_page:
            raise ValueError(
                f"invalid page lookup range [{first_page}, {last_page})"
            )
        result: dict[int, PageDescriptor] = {}
        if root is None or first_page == last_page:
            return result
        self._collect(root, first_page, last_page, result)
        return result

    def _collect(
        self,
        key: NodeKey,
        first: int,
        last: int,
        out: dict[int, PageDescriptor],
    ) -> None:
        if key.hi <= first or key.lo >= last:
            return
        node = self.fetch(key)
        if node.is_leaf:
            if node.page is None:
                raise MetadataCorruptionError(f"leaf {key!r} carries no page")
            out[key.lo] = node.page
            return
        if node.left is not None:
            self._collect(node.left, first, last, out)
        if node.right is not None:
            self._collect(node.right, first, last, out)

    # -- introspection ------------------------------------------------------------
    def count_nodes(self, root: NodeKey | None) -> int:
        """Number of reachable nodes from ``root`` (shared nodes counted once)."""
        if root is None:
            return 0
        seen: set[str] = set()
        stack = [root]
        while stack:
            key = stack.pop()
            dht_key = key.dht_key()
            if dht_key in seen:
                continue
            seen.add(dht_key)
            node = self.fetch(key)
            if node.left is not None:
                stack.append(node.left)
            if node.right is not None:
                stack.append(node.right)
        return len(seen)

    def nodes_created_by(self, blob_id: int, version: int) -> int:
        """Number of DHT-stored tree nodes whose key carries ``version``.

        Because shared nodes keep the key of the version that created them,
        this measures the metadata cost of one write — the quantity the
        metadata ablation benchmark (A3 in DESIGN.md) reports.
        """
        prefix = f"meta:{blob_id}:{version}:"
        count = 0
        for provider in self._dht.providers:
            count += sum(1 for k in provider.keys() if k.startswith(prefix))
        return count
