"""Persistence layer backing data providers.

The original BlobSeer prototype persists pages through BerkeleyDB.  That
dependency is replaced here (see DESIGN.md, substitutions table) by a small
append-only, log-structured key-value store with an in-memory index — the
same role (durable storage of pages behind a provider, survives restarts)
with the same access pattern (point put/get, occasional compaction).

Two store implementations share the :class:`PageStore` interface:

* :class:`MemoryStore` — a plain dictionary, used by default for speed.
* :class:`LogStructuredStore` — file-backed, crash-recoverable; every record
  is length-prefixed and checksummed so a torn final record is detected and
  dropped at recovery time.
"""

from __future__ import annotations

import os
import struct
import threading
import zlib
from typing import Iterator, MutableMapping

from .errors import PersistenceError

__all__ = ["PageStore", "MemoryStore", "LogStructuredStore"]

# Record layout: MAGIC | crc32 | key_len | value_len | tombstone | key | value
_RECORD_HEADER = struct.Struct("<IIIIB")
_MAGIC = 0xB10B5EE7


class PageStore:
    """Abstract key-value store mapping byte keys to byte values."""

    def put(self, key: bytes, value: bytes) -> None:
        """Store ``value`` under ``key``, replacing any previous value."""
        raise NotImplementedError

    def get(self, key: bytes) -> bytes:
        """Return the value stored under ``key``; raise :class:`KeyError` if absent."""
        raise NotImplementedError

    def contains(self, key: bytes) -> bool:
        """Return whether ``key`` currently has a value."""
        raise NotImplementedError

    def delete(self, key: bytes) -> None:
        """Remove ``key``; raise :class:`KeyError` if absent."""
        raise NotImplementedError

    def keys(self) -> Iterator[bytes]:
        """Iterate over the currently stored keys (snapshot, unordered)."""
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def sync(self) -> None:
        """Flush pending writes to stable storage (no-op for volatile stores)."""

    def close(self) -> None:
        """Release any resources held by the store."""

    # Convenience dunder wrappers -------------------------------------------------
    def __contains__(self, key: object) -> bool:
        return isinstance(key, bytes) and self.contains(key)

    def __getitem__(self, key: bytes) -> bytes:
        return self.get(key)

    def __setitem__(self, key: bytes, value: bytes) -> None:
        self.put(key, value)


class MemoryStore(PageStore):
    """Volatile, thread-safe in-memory store (the default provider backend)."""

    def __init__(self) -> None:
        self._data: MutableMapping[bytes, bytes] = {}
        self._lock = threading.Lock()

    def put(self, key: bytes, value: bytes) -> None:
        with self._lock:
            self._data[key] = value

    def get(self, key: bytes) -> bytes:
        with self._lock:
            return self._data[key]

    def contains(self, key: bytes) -> bool:
        with self._lock:
            return key in self._data

    def delete(self, key: bytes) -> None:
        with self._lock:
            del self._data[key]

    def keys(self) -> Iterator[bytes]:
        with self._lock:
            return iter(list(self._data.keys()))

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)


class LogStructuredStore(PageStore):
    """Durable append-only store with an in-memory index.

    Every mutation appends a checksummed record to the log file; the index
    maps each live key to the file offset of its latest value.  Reopening a
    store replays the log, rebuilding the index and ignoring a trailing
    partial record (the result of a crash mid-append).  :meth:`compact`
    rewrites the log keeping only live records.
    """

    def __init__(self, path: str | os.PathLike[str], *, sync_every_put: bool = False) -> None:
        self._path = os.fspath(path)
        self._sync_every_put = sync_every_put
        self._lock = threading.Lock()
        self._index: dict[bytes, tuple[int, int]] = {}
        directory = os.path.dirname(self._path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self._file = open(self._path, "a+b")
        try:
            self._recover()
        except Exception:
            self._file.close()
            raise

    # -- internal helpers ---------------------------------------------------------
    def _recover(self) -> None:
        """Rebuild the in-memory index by replaying the log file."""
        self._file.seek(0)
        offset = 0
        file_size = os.fstat(self._file.fileno()).st_size
        while offset < file_size:
            header = self._file.read(_RECORD_HEADER.size)
            if len(header) < _RECORD_HEADER.size:
                break  # torn record: drop the tail
            magic, crc, key_len, value_len, tombstone = _RECORD_HEADER.unpack(header)
            if magic != _MAGIC:
                raise PersistenceError(
                    f"corrupt log {self._path!r}: bad magic at offset {offset}"
                )
            payload = self._file.read(key_len + value_len)
            if len(payload) < key_len + value_len:
                break  # torn record
            if zlib.crc32(payload) != crc:
                break  # torn/corrupt tail record: stop replay here
            key = payload[:key_len]
            if tombstone:
                self._index.pop(key, None)
            else:
                value_offset = offset + _RECORD_HEADER.size + key_len
                self._index[key] = (value_offset, value_len)
            offset += _RECORD_HEADER.size + key_len + value_len
        # Truncate any torn tail so future appends start on a record boundary.
        self._file.truncate(offset)
        self._file.seek(0, os.SEEK_END)

    def _append_record(self, key: bytes, value: bytes, tombstone: bool) -> int:
        payload = key + value
        header = _RECORD_HEADER.pack(
            _MAGIC, zlib.crc32(payload), len(key), len(value), int(tombstone)
        )
        self._file.seek(0, os.SEEK_END)
        offset = self._file.tell()
        self._file.write(header)
        self._file.write(payload)
        if self._sync_every_put:
            self._file.flush()
            os.fsync(self._file.fileno())
        return offset

    # -- PageStore API ------------------------------------------------------------
    def put(self, key: bytes, value: bytes) -> None:
        with self._lock:
            offset = self._append_record(key, value, tombstone=False)
            self._index[key] = (offset + _RECORD_HEADER.size + len(key), len(value))

    def get(self, key: bytes) -> bytes:
        with self._lock:
            if key not in self._index:
                raise KeyError(key)
            value_offset, value_len = self._index[key]
            self._file.flush()
            self._file.seek(value_offset)
            value = self._file.read(value_len)
            self._file.seek(0, os.SEEK_END)
            if len(value) != value_len:
                raise PersistenceError(
                    f"short read for key {key!r} in {self._path!r}"
                )
            return value

    def contains(self, key: bytes) -> bool:
        with self._lock:
            return key in self._index

    def delete(self, key: bytes) -> None:
        with self._lock:
            if key not in self._index:
                raise KeyError(key)
            self._append_record(key, b"", tombstone=True)
            del self._index[key]

    def keys(self) -> Iterator[bytes]:
        with self._lock:
            return iter(list(self._index.keys()))

    def __len__(self) -> int:
        with self._lock:
            return len(self._index)

    def sync(self) -> None:
        with self._lock:
            self._file.flush()
            os.fsync(self._file.fileno())

    def close(self) -> None:
        with self._lock:
            if not self._file.closed:
                self._file.flush()
                self._file.close()

    def compact(self) -> None:
        """Rewrite the log keeping only the latest value of each live key."""
        with self._lock:
            tmp_path = self._path + ".compact"
            live: list[tuple[bytes, bytes]] = []
            self._file.flush()
            for key, (value_offset, value_len) in self._index.items():
                self._file.seek(value_offset)
                live.append((key, self._file.read(value_len)))
            with open(tmp_path, "wb") as tmp:
                new_index: dict[bytes, tuple[int, int]] = {}
                offset = 0
                for key, value in live:
                    payload = key + value
                    header = _RECORD_HEADER.pack(
                        _MAGIC, zlib.crc32(payload), len(key), len(value), 0
                    )
                    tmp.write(header)
                    tmp.write(payload)
                    new_index[key] = (offset + _RECORD_HEADER.size + len(key), len(value))
                    offset += _RECORD_HEADER.size + len(payload)
                tmp.flush()
                os.fsync(tmp.fileno())
            self._file.close()
            os.replace(tmp_path, self._path)
            self._file = open(self._path, "a+b")
            self._index = new_index

    @property
    def path(self) -> str:
        """Filesystem path of the backing log file."""
        return self._path

    @property
    def log_size(self) -> int:
        """Current size of the backing log file in bytes (including garbage)."""
        with self._lock:
            self._file.flush()
            return os.fstat(self._file.fileno()).st_size
