"""Data providers: the storage nodes of a BlobSeer deployment.

A :class:`DataProvider` stores pages assigned to it by the provider manager.
In the real system each provider is a daemon on a distinct machine; here it
is an in-process object backed by a :class:`~repro.core.persistence.PageStore`
(volatile by default, log-structured on disk when persistence is requested).

Providers keep the statistics the allocation strategies and the locality
primitive rely on (pages stored, bytes stored, read/write counters), and can
be marked as *failed* to exercise the replication and failover code paths.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Iterable

from .errors import ProviderUnavailableError
from .pages import PageKey
from .persistence import MemoryStore, PageStore

__all__ = ["ProviderStats", "DataProvider"]


@dataclass(frozen=True, slots=True)
class ProviderStats:
    """Immutable snapshot of a provider's load counters."""

    provider_id: int
    pages_stored: int
    bytes_stored: int
    pages_written: int
    pages_read: int
    bytes_written: int
    bytes_read: int
    available: bool

    @property
    def load_score(self) -> tuple[int, int]:
        """Ordering key used by the load-balanced allocation strategy.

        Providers are ranked primarily by the number of pages they store and
        secondarily by the total writes they have served, so that a freshly
        joined provider absorbs new pages first.
        """
        return (self.pages_stored, self.pages_written)


class DataProvider:
    """A single storage node holding pages on behalf of the service."""

    def __init__(
        self,
        provider_id: int,
        *,
        store: PageStore | None = None,
        rack: str | None = None,
        host: str | None = None,
    ) -> None:
        self.provider_id = provider_id
        #: Rack label, used by locality-aware experiments and the simulator.
        self.rack = rack if rack is not None else f"rack-{provider_id % 8}"
        #: Host name exposed through the data-layout primitive.
        self.host = host if host is not None else f"provider-{provider_id}"
        self._store = store if store is not None else MemoryStore()
        self._lock = threading.Lock()
        self._available = True
        self._pages_stored = 0
        self._bytes_stored = 0
        self._pages_written = 0
        self._pages_read = 0
        self._bytes_written = 0
        self._bytes_read = 0

    # -- availability -------------------------------------------------------------
    @property
    def available(self) -> bool:
        """Whether the provider currently accepts requests."""
        return self._available

    def fail(self) -> None:
        """Simulate a crash: the provider stops serving requests."""
        with self._lock:
            self._available = False

    def recover(self) -> None:
        """Bring a failed provider back online (its stored pages survive)."""
        with self._lock:
            self._available = True

    def _check_available(self) -> None:
        if not self._available:
            raise ProviderUnavailableError(self.provider_id)

    # -- page operations ----------------------------------------------------------
    def put_page(self, key: PageKey, data: bytes) -> None:
        """Store one page replica."""
        with self._lock:
            self._check_available()
            raw = key.to_bytes()
            existed = self._store.contains(raw)
            if existed:
                old = self._store.get(raw)
                self._bytes_stored -= len(old)
            self._store.put(raw, data)
            if not existed:
                self._pages_stored += 1
            self._bytes_stored += len(data)
            self._pages_written += 1
            self._bytes_written += len(data)

    def get_page(self, key: PageKey) -> bytes:
        """Fetch one page replica; raises :class:`KeyError` when absent."""
        with self._lock:
            self._check_available()
            data = self._store.get(key.to_bytes())
            self._pages_read += 1
            self._bytes_read += len(data)
            return data

    def has_page(self, key: PageKey) -> bool:
        """Return whether this provider holds a replica of ``key``."""
        with self._lock:
            if not self._available:
                return False
            return self._store.contains(key.to_bytes())

    def remove_page(self, key: PageKey) -> None:
        """Drop a page replica (used by garbage collection and tests)."""
        with self._lock:
            self._check_available()
            raw = key.to_bytes()
            data = self._store.get(raw)
            self._store.delete(raw)
            self._pages_stored -= 1
            self._bytes_stored -= len(data)

    def page_keys(self) -> list[PageKey]:
        """Return the keys of every page currently stored (unordered)."""
        with self._lock:
            return [PageKey.from_bytes(raw) for raw in self._store.keys()]

    def pages_for_blob(self, blob_id: int) -> list[PageKey]:
        """Return the keys of the pages of ``blob_id`` stored here."""
        return [key for key in self.page_keys() if key.blob_id == blob_id]

    # -- statistics ---------------------------------------------------------------
    def stats(self) -> ProviderStats:
        """Return a consistent snapshot of the provider's counters."""
        with self._lock:
            return ProviderStats(
                provider_id=self.provider_id,
                pages_stored=self._pages_stored,
                bytes_stored=self._bytes_stored,
                pages_written=self._pages_written,
                pages_read=self._pages_read,
                bytes_written=self._bytes_written,
                bytes_read=self._bytes_read,
                available=self._available,
            )

    def sync(self) -> None:
        """Flush the backing store to stable storage."""
        self._store.sync()

    def close(self) -> None:
        """Close the backing store."""
        self._store.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DataProvider(id={self.provider_id}, host={self.host!r}, "
            f"rack={self.rack!r}, pages={self._pages_stored})"
        )


def total_bytes_stored(providers: Iterable[DataProvider]) -> int:
    """Sum of bytes stored across ``providers`` (helper for tests/benchmarks)."""
    return sum(p.stats().bytes_stored for p in providers)
