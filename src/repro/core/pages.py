"""Page model: the unit of data management in BlobSeer.

A blob is a sequence of bytes logically split into fixed-size *pages*.  A
write at version ``v`` materialises new pages only for the byte range it
touches; untouched pages are shared with older versions through the
versioned metadata tree (:mod:`repro.core.metadata`).

Pages are addressed by :class:`PageKey` — the triple ``(blob_id, version,
index)`` identifying the write that produced the page and its position in
the blob.  A :class:`PageDescriptor` extends the key with the placement
information needed to fetch the bytes (which providers hold a replica and
how many bytes the page actually carries — only the last page of a blob may
be shorter than the configured page size).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

__all__ = [
    "PageKey",
    "PageDescriptor",
    "PageRange",
    "page_range_for_bytes",
    "split_into_pages",
]


@dataclass(frozen=True, slots=True)
class PageKey:
    """Globally unique identifier of a stored page.

    Attributes
    ----------
    blob_id:
        Blob the page belongs to.
    version:
        Version (snapshot) whose write materialised this page.
    index:
        Zero-based page index within the blob.
    """

    blob_id: int
    version: int
    index: int

    def to_bytes(self) -> bytes:
        """Serialise the key for use by persistent page stores."""
        return f"{self.blob_id}:{self.version}:{self.index}".encode("ascii")

    @classmethod
    def from_bytes(cls, raw: bytes) -> "PageKey":
        """Inverse of :meth:`to_bytes`."""
        blob_id, version, index = raw.decode("ascii").split(":")
        return cls(int(blob_id), int(version), int(index))


@dataclass(frozen=True, slots=True)
class PageDescriptor:
    """Placement record for a page: where its replicas live and its size."""

    key: PageKey
    providers: tuple[int, ...]
    size: int

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError("page size cannot be negative")
        if not self.providers:
            raise ValueError("a page descriptor needs at least one provider")

    @property
    def index(self) -> int:
        """Page index within the blob (shortcut for ``key.index``)."""
        return self.key.index

    @property
    def replication(self) -> int:
        """Number of replicas recorded for this page."""
        return len(self.providers)


@dataclass(frozen=True, slots=True)
class PageRange:
    """Half-open range of page indices ``[first, last)`` touched by an I/O."""

    first: int
    last: int

    def __post_init__(self) -> None:
        if self.first < 0 or self.last < self.first:
            raise ValueError(f"invalid page range [{self.first}, {self.last})")

    def __len__(self) -> int:
        return self.last - self.first

    def __iter__(self) -> Iterator[int]:
        return iter(range(self.first, self.last))

    def __contains__(self, index: object) -> bool:
        return isinstance(index, int) and self.first <= index < self.last


def page_range_for_bytes(offset: int, size: int, page_size: int) -> PageRange:
    """Return the range of page indices covering byte range ``[offset, offset+size)``.

    A zero-sized range maps to an empty page range starting at the page
    containing ``offset``.
    """
    if offset < 0 or size < 0:
        raise ValueError("offset and size must be non-negative")
    if page_size <= 0:
        raise ValueError("page_size must be positive")
    first = offset // page_size
    if size == 0:
        return PageRange(first, first)
    last = (offset + size - 1) // page_size + 1
    return PageRange(first, last)


def split_into_pages(data: bytes, page_size: int) -> list[bytes]:
    """Split ``data`` into consecutive chunks of at most ``page_size`` bytes.

    The final chunk may be shorter than ``page_size``; an empty input yields
    an empty list.
    """
    if page_size <= 0:
        raise ValueError("page_size must be positive")
    view = memoryview(data)
    return [bytes(view[i : i + page_size]) for i in range(0, len(view), page_size)]
