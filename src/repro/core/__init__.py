"""BlobSeer core: versioning-oriented distributed storage for huge blobs.

This package is the reproduction of the BlobSeer service the paper builds
on: data providers, the load-balancing provider manager, the metadata DHT
with versioned segment trees, the centralized version manager, page
replication and the persistence layer.  The main entry point is
:class:`repro.core.BlobSeer`.
"""

from .blob import BlobHandle
from .client import BlobSeer, BlobWriteSink, PageLocation
from .config import GB, KB, MB, BlobSeerConfig
from .dht import ConsistentHashRing, MetadataDHT, MetadataProvider
from .errors import (
    AlignmentError,
    AllocationError,
    BlobNotFoundError,
    BlobPinnedError,
    BlobSeerError,
    InvalidRangeError,
    MetadataCorruptionError,
    NoProvidersError,
    PageNotFoundError,
    PersistenceError,
    ProviderUnavailableError,
    TicketError,
    VersionNotFoundError,
    VersionNotPublishedError,
    VersionRetiredError,
)
from .metadata import MetadataManager, NodeKey, TreeNode, next_power_of_two
from .pages import (
    PageDescriptor,
    PageKey,
    PageRange,
    page_range_for_bytes,
    split_into_pages,
)
from .persistence import LogStructuredStore, MemoryStore, PageStore
from .provider import DataProvider, ProviderStats
from .provider_manager import (
    AllocationStrategy,
    LoadBalancedStrategy,
    LocalFirstStrategy,
    ProviderManager,
    RandomStrategy,
    make_strategy,
)
from .replication import ReplicationManager, ScrubReport, read_page, write_replicas
from .transfer import ChunkBuffer, InflightBudget, TransferEngine, pipelined
from .version_manager import BlobInfo, VersionInfo, VersionManager, WriteTicket

__all__ = [
    "BlobSeer",
    "BlobHandle",
    "BlobSeerConfig",
    "BlobWriteSink",
    "PageLocation",
    # transfer engine
    "TransferEngine",
    "InflightBudget",
    "ChunkBuffer",
    "pipelined",
    "KB",
    "MB",
    "GB",
    # pages
    "PageKey",
    "PageDescriptor",
    "PageRange",
    "page_range_for_bytes",
    "split_into_pages",
    # providers
    "DataProvider",
    "ProviderStats",
    "ProviderManager",
    "AllocationStrategy",
    "LoadBalancedStrategy",
    "RandomStrategy",
    "LocalFirstStrategy",
    "make_strategy",
    # metadata
    "MetadataDHT",
    "MetadataProvider",
    "ConsistentHashRing",
    "MetadataManager",
    "NodeKey",
    "TreeNode",
    "next_power_of_two",
    # versions
    "VersionManager",
    "VersionInfo",
    "BlobInfo",
    "WriteTicket",
    # replication & persistence
    "ReplicationManager",
    "ScrubReport",
    "read_page",
    "write_replicas",
    "PageStore",
    "MemoryStore",
    "LogStructuredStore",
    # errors
    "BlobSeerError",
    "BlobNotFoundError",
    "VersionNotFoundError",
    "VersionNotPublishedError",
    "VersionRetiredError",
    "BlobPinnedError",
    "PageNotFoundError",
    "ProviderUnavailableError",
    "NoProvidersError",
    "AllocationError",
    "InvalidRangeError",
    "AlignmentError",
    "MetadataCorruptionError",
    "PersistenceError",
    "TicketError",
]
