"""Shared transfer engine: the concurrent data plane of the reproduction.

The paper's headline numbers are *aggregate throughput under heavy
concurrency*: BlobSeer-backed MapReduce wins because page transfers are
striped across providers in parallel.  Every byte path of this code base —
client page writes and reads, replica fan-out, HDFS block replication,
shuffle segment prefetching — therefore funnels through one small engine
instead of each layer hand-rolling (or, worse, skipping) its own
concurrency:

* :class:`TransferEngine` — a bounded worker pool with *caller
  participation*: :meth:`TransferEngine.map` drains its work queue on the
  calling thread too, so the engine can be used re-entrantly (a page task
  fanning out replica writes, a map task reading its split) without ever
  deadlocking on pool capacity.  Only *leaf* transfer work (one page, one
  replica, one block chunk) is ever submitted, so pool threads never wait
  on each other.
* :class:`InflightBudget` — a pluggable byte budget bounding the data in
  flight (read-ahead pages, prefetched segments); an oversized single
  transfer is admitted when nothing else is in flight so progress is
  always possible.
* :class:`ChunkBuffer` — an amortised O(1) append buffer (chunk list plus
  running length) replacing the quadratic ``buffer += data`` /
  ``del buffer[:n]`` pattern in the block writers.
* :func:`pipelined` — ordered read-ahead over a sequence of fetch
  thunks: up to ``depth`` fetches run ahead of the consumer, which is what
  overlaps storage latency with processing in the streaming read paths.
"""

from __future__ import annotations

import threading
from collections import deque
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, Callable, Iterable, Iterator, Sequence, TypeVar

__all__ = [
    "TransferEngine",
    "InflightBudget",
    "ChunkBuffer",
    "pipelined",
    "default_engine",
]

T = TypeVar("T")
R = TypeVar("R")

#: Default worker count for engines built without explicit configuration.
DEFAULT_TRANSFER_WORKERS = 8


class InflightBudget:
    """Bounds the number of bytes a transfer pipeline keeps in flight.

    ``acquire(n)`` blocks until admitting ``n`` more bytes keeps the total
    within ``limit`` — except when nothing is in flight, where any request
    is admitted so a single transfer larger than the whole budget cannot
    deadlock the pipeline.  Budgets are shared freely between threads.
    """

    def __init__(self, limit: int) -> None:
        if limit < 1:
            raise ValueError("budget limit must be positive")
        self.limit = limit
        self._inflight = 0
        self._cond = threading.Condition()

    @property
    def inflight(self) -> int:
        """Bytes currently admitted and not yet released."""
        with self._cond:
            return self._inflight

    def acquire(self, nbytes: int) -> None:
        """Block until ``nbytes`` more bytes fit in the budget.

        Only safe for holders that are guaranteed to release promptly
        (engine workers finishing leaf transfers).  Anything that may hold
        budget indefinitely — a paused read-ahead stream — must use
        :meth:`try_acquire` instead, or independent holders sharing one
        budget could starve each other.
        """
        if nbytes < 0:
            raise ValueError("cannot acquire a negative byte count")
        with self._cond:
            while self._inflight > 0 and self._inflight + nbytes > self.limit:
                self._cond.wait()
            self._inflight += nbytes

    def try_acquire(self, nbytes: int) -> bool:
        """Non-blocking :meth:`acquire`: charge and return True, or False."""
        if nbytes < 0:
            raise ValueError("cannot acquire a negative byte count")
        with self._cond:
            if self._inflight > 0 and self._inflight + nbytes > self.limit:
                return False
            self._inflight += nbytes
            return True

    def release(self, nbytes: int) -> None:
        """Return ``nbytes`` to the budget, waking blocked acquirers."""
        if nbytes < 0:
            raise ValueError("cannot release a negative byte count")
        with self._cond:
            self._inflight = max(self._inflight - nbytes, 0)
            self._cond.notify_all()


class TransferEngine:
    """Bounded worker pool shared by every transfer path of one deployment.

    The pool is created lazily (a deployment that never transfers a byte
    never starts a thread) and sized by ``workers``.  ``budget`` optionally
    bounds the bytes in flight across every :meth:`map` call that passes
    per-item costs.
    """

    def __init__(
        self,
        workers: int = DEFAULT_TRANSFER_WORKERS,
        *,
        budget: InflightBudget | None = None,
        name: str = "transfer",
    ) -> None:
        if workers < 1:
            raise ValueError("a transfer engine needs at least one worker")
        self.workers = workers
        self.budget = budget
        self._name = name
        self._pool: ThreadPoolExecutor | None = None
        self._lock = threading.Lock()
        self.tasks_executed = 0
        self.bytes_transferred = 0

    # -- lifecycle ---------------------------------------------------------------
    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.workers, thread_name_prefix=self._name
                )
            return self._pool

    def close(self) -> None:
        """Shut the worker pool down (idempotent; the engine restarts lazily)."""
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def _account(self, count: int, nbytes: int) -> None:
        with self._lock:
            self.tasks_executed += count
            self.bytes_transferred += nbytes

    # -- execution ---------------------------------------------------------------
    def submit(self, fn: Callable[..., R], *args: Any, **kwargs: Any) -> Future:
        """Submit one leaf transfer to the pool and return its future.

        Callers that submit must only hand the pool *leaf* work — a task
        that never waits on another pool task — which is what keeps the
        bounded pool deadlock-free.
        """
        return self._ensure_pool().submit(fn, *args, **kwargs)

    def map(
        self,
        fn: Callable[[T], R],
        items: Iterable[T],
        *,
        costs: Sequence[int] | None = None,
    ) -> list[R]:
        """Run ``fn`` over ``items`` concurrently; results in item order.

        The calling thread participates in draining the work queue, so the
        call makes progress even when the pool is saturated (or when it is
        invoked *from* a pool thread) — the property that makes nested use
        safe.  The first exception cancels the not-yet-started items and is
        re-raised once the in-flight ones finish.  ``costs`` (bytes per
        item) is charged against the engine's budget when one is set.
        """
        items = list(items)
        total = len(items)
        if total == 0:
            return []
        budget = self.budget if costs is not None else None
        if total == 1 or self.workers == 1:
            results = []
            for index, item in enumerate(items):
                if budget is not None:
                    budget.acquire(costs[index])
                try:
                    results.append(fn(item))
                finally:
                    if budget is not None:
                        budget.release(costs[index])
            self._account(total, sum(costs) if costs else 0)
            return results

        queue: deque[int] = deque(range(total))
        results: list[Any] = [None] * total
        cond = threading.Condition()
        state = {"pending": total, "error": None}

        def drain() -> None:
            while True:
                with cond:
                    if state["error"] is not None or not queue:
                        return
                    index = queue.popleft()
                try:
                    if budget is not None:
                        budget.acquire(costs[index])
                    try:
                        results[index] = fn(items[index])
                    finally:
                        if budget is not None:
                            budget.release(costs[index])
                except BaseException as exc:  # first error wins, others dropped
                    with cond:
                        if state["error"] is None:
                            state["error"] = exc
                        state["pending"] -= 1 + len(queue)
                        queue.clear()
                        cond.notify_all()
                else:
                    with cond:
                        state["pending"] -= 1
                        cond.notify_all()

        pool = self._ensure_pool()
        for _ in range(min(self.workers, total) - 1):
            try:
                pool.submit(drain)
            except RuntimeError:  # pool shutting down: caller drains alone
                break
        drain()
        with cond:
            while state["pending"] > 0:
                cond.wait()
            error = state["error"]
        if error is not None:
            raise error
        self._account(total, sum(costs) if costs else 0)
        return results


def pipelined(
    fetches: Iterable[Callable[[], R]],
    engine: TransferEngine,
    *,
    depth: int = 2,
    budget: InflightBudget | None = None,
    cost_hint: int = 0,
) -> Iterator[R]:
    """Yield each fetch's result in order with bounded read-ahead.

    Up to ``depth`` fetches run on the engine ahead of the consumer — the
    streaming-read primitive that overlaps storage latency with downstream
    processing.  Fetch thunks must be leaf work.

    With a ``budget``, only the *head* fetch of the window is
    unconditional; every additional read-ahead slot charges ``cost_hint``
    bytes via a non-blocking ``try_acquire`` and simply stays un-extended
    when the budget is exhausted.  A stream therefore always progresses
    with a window of one, so any number of independent streams sharing one
    budget — e.g. a k-way merge pulling many segment streams from a single
    thread — can never deadlock each other, while their *extra* read-ahead
    bytes stay collectively bounded.
    """
    depth = max(depth, 1)
    window: deque[tuple[Future, int]] = deque()
    fetches = iter(fetches)
    exhausted = False
    try:
        while True:
            while not exhausted and len(window) < depth:
                charge = 0
                if window and budget is not None and cost_hint > 0:
                    if not budget.try_acquire(cost_hint):
                        break  # no budget for more read-ahead right now
                    charge = cost_hint
                try:
                    fetch = next(fetches)
                except StopIteration:
                    if charge:
                        budget.release(charge)
                    exhausted = True
                    break
                window.append((engine.submit(fetch), charge))
            if not window:
                return
            future, charge = window.popleft()
            try:
                result = future.result()
            finally:
                if charge:
                    budget.release(charge)
            yield result
    finally:
        for future, charge in window:
            if charge:
                budget.release(charge)
            if not future.cancel():
                try:
                    future.result()
                except BaseException:
                    pass


class ChunkBuffer:
    """Byte buffer with amortised O(1) appends: chunk list + running length.

    Replaces the ``self._buffer += data`` / ``del self._buffer[:n]``
    pattern of the block writers, whose repeated prefix deletion makes many
    small writes quadratic in the buffered size.  Appending stores a
    reference; bytes are copied at most twice in total (once when a split
    remainder is kept, once when :meth:`take` joins a block), tracked by
    :attr:`bytes_joined` so tests can assert linearity by op count rather
    than wall clock.
    """

    __slots__ = ("_chunks", "_length", "bytes_joined")

    def __init__(self) -> None:
        self._chunks: deque[bytes | memoryview] = deque()
        self._length = 0
        #: Total bytes materialised by :meth:`take`/:meth:`take_all` joins —
        #: the copy-work metric the linearity regression test asserts on.
        self.bytes_joined = 0

    def __len__(self) -> int:
        return self._length

    def append(self, data) -> None:
        """Add ``data`` (bytes-like) to the end of the buffer, copy-free.

        Readonly buffers — a ``bytes`` chunk, or a readonly
        ``memoryview`` over a received wire segment — are kept by
        reference and only materialised when they leave through
        :meth:`take`, so a sink fed from the zero-copy receive path
        stays zero-copy until block assembly.  Writable buffers are
        snapshotted immediately (their owner may mutate them after the
        call returns).
        """
        if not data:
            return
        if not isinstance(data, bytes):
            view = data if isinstance(data, memoryview) else memoryview(data)
            if view.readonly and view.ndim == 1 and view.contiguous:
                data = view if view.format == "B" else view.cast("B")
            else:
                data = bytes(view)
        self._chunks.append(data)
        self._length += len(data)

    def take(self, size: int) -> bytes:
        """Remove and return exactly ``size`` bytes from the front."""
        if size < 0:
            raise ValueError("cannot take a negative number of bytes")
        if size > self._length:
            raise ValueError(f"take({size}) exceeds buffered length {self._length}")
        if size == 0:
            return b""
        parts: list[bytes] = []
        remaining = size
        while remaining > 0:
            chunk = self._chunks.popleft()
            if len(chunk) <= remaining:
                parts.append(chunk)
                remaining -= len(chunk)
            else:
                parts.append(chunk[:remaining])
                self._chunks.appendleft(chunk[remaining:])
                self.bytes_joined += len(chunk) - remaining
                remaining = 0
        self._length -= size
        self.bytes_joined += size
        if len(parts) == 1 and isinstance(parts[0], bytes):
            return parts[0]
        # join() accepts memoryview parts, so chunks kept as readonly
        # views are materialised exactly once, here.
        return b"".join(parts)

    def take_all(self) -> bytes:
        """Remove and return everything buffered."""
        return self.take(self._length)

    def clear(self) -> None:
        """Drop everything buffered."""
        self._chunks.clear()
        self._length = 0


_default_engine: TransferEngine | None = None
_default_engine_lock = threading.Lock()


def default_engine() -> TransferEngine:
    """Process-wide fallback engine for components without their own config.

    Deployments with a configuration (BlobSeer, HDFS) own a private engine
    sized by their ``transfer_workers``; pieces that only have a
    :class:`~repro.fs.interface.FileSystem` in hand (LocalFS streaming, the
    shuffle service on any backend) share this one.
    """
    global _default_engine
    with _default_engine_lock:
        if _default_engine is None:
            _default_engine = TransferEngine(name="transfer-shared")
        return _default_engine
