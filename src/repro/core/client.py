"""BlobSeer client facade: the public entry point of the storage core.

:class:`BlobSeer` wires together all the entities of a deployment — data
providers, the provider manager, the metadata DHT, the metadata manager and
the version manager — and exposes the blob access interface the paper
describes:

* ``create_blob`` — register a new blob with a page size and replication
  level;
* ``write(blob, offset, data)`` / ``append(blob, data)`` — publish a new
  version; data is never overwritten in place;
* ``read(blob, offset, size, version=None)`` — read a byte range from any
  published snapshot;
* ``page_locations`` — the data-layout exposure primitive added for the
  Hadoop integration, so the MapReduce scheduler can co-locate computation
  with data.

The facade is thread-safe: any number of threads may read and write
concurrently, which is exactly the scenario the paper's microbenchmarks
exercise.

Write protocol (mirrors the paper's description of BlobSeer):

1. obtain a write ticket (version number + resolved offset) from the
   version manager — the only serialized step;
2. push the interior, page-aligned data to the data providers chosen by the
   provider manager's load-balancing strategy — fully concurrent across
   writers;
3. wait for the base version to be published, merge boundary pages if the
   write was not page-aligned, and build the new metadata tree (sharing
   every untouched subtree with the base version);
4. report the new root to the version manager, which publishes versions in
   ticket order.
"""

from __future__ import annotations

import os
import random
import threading
from dataclasses import dataclass
from typing import Iterator, Sequence

from .config import BlobSeerConfig
from .dht import MetadataDHT, MetadataProvider
from .errors import (
    AlignmentError,
    InvalidRangeError,
    PageNotFoundError,
)
from .metadata import MetadataManager, NodeKey, next_power_of_two
from .pages import PageDescriptor, PageKey, page_range_for_bytes
from .persistence import LogStructuredStore, MemoryStore
from .provider import DataProvider
from .provider_manager import ProviderManager
from .replication import ReplicationManager, read_page, write_replicas
from .transfer import InflightBudget, TransferEngine, pipelined
from .version_manager import BlobInfo, VersionManager, WriteTicket

# The snapshot lifecycle subsystem only depends back on repro.core through
# TYPE_CHECKING imports, so this import is acyclic.
from ..versions.gc import VersionGC
from ..versions.pins import PinRegistry, SnapshotHandle
from ..versions.retention import RetentionPolicy

__all__ = ["PageLocation", "BlobWriteSink", "BlobSeer"]


@dataclass(frozen=True, slots=True)
class PageLocation:
    """Location record returned by the data-layout exposure primitive."""

    page_index: int
    offset: int
    size: int
    providers: tuple[int, ...]
    hosts: tuple[str, ...]


class BlobSeer:
    """An in-process BlobSeer deployment and its client interface."""

    def __init__(
        self,
        config: BlobSeerConfig | None = None,
        *,
        providers: Sequence[DataProvider] | None = None,
        metadata_providers: Sequence[MetadataProvider] | None = None,
        storage_dir: str | os.PathLike[str] | None = None,
    ) -> None:
        """Create a deployment.

        Parameters
        ----------
        config:
            Deployment configuration; defaults to :class:`BlobSeerConfig()`.
        providers:
            Pre-built data providers.  When omitted, ``config.num_providers``
            providers are created, volatile by default or backed by
            log-structured stores under ``storage_dir`` when given.
        metadata_providers:
            Pre-built metadata providers (defaults to
            ``config.num_metadata_providers`` fresh ones).
        storage_dir:
            Directory for persistent page stores.  Ignored when explicit
            ``providers`` are passed.
        """
        self.config = config or BlobSeerConfig()
        if providers is None:
            providers = []
            for i in range(self.config.num_providers):
                if storage_dir is not None:
                    store = LogStructuredStore(
                        os.path.join(os.fspath(storage_dir), f"provider-{i}.log")
                    )
                else:
                    store = MemoryStore()
                providers.append(DataProvider(i, store=store))
        if metadata_providers is None:
            metadata_providers = [
                MetadataProvider(i)
                for i in range(self.config.num_metadata_providers)
            ]
        self.provider_manager = ProviderManager(
            providers,
            strategy=self.config.allocation_strategy,
            seed=self.config.rng_seed,
            range_pages=self.config.allocation_range_pages,
        )
        self.dht = MetadataDHT(
            metadata_providers,
            virtual_nodes=self.config.virtual_nodes_per_metadata_provider,
        )
        self.metadata_manager = MetadataManager(self.dht)
        self.version_manager = VersionManager(self.config)
        self.replication_manager = ReplicationManager(
            self.provider_manager, seed=self.config.rng_seed
        )
        budget = (
            InflightBudget(self.config.max_inflight_bytes)
            if self.config.max_inflight_bytes is not None
            else None
        )
        #: Shared transfer engine: every page/replica transfer of this
        #: deployment (writes, reads, streaming) runs through its bounded
        #: worker pool.
        self.transfer = TransferEngine(
            self.config.transfer_workers, budget=budget, name="blobseer-io"
        )
        self._rng = random.Random(self.config.rng_seed)
        self._rng_lock = threading.Lock()
        #: Snapshot lifecycle: pins protect published versions from the
        #: collector (and the blob from deletion); the retention policy and
        #: collector turn `max_versions_kept` / `version_ttl_seconds` into
        #: reclaimed space.
        self.pins = PinRegistry(default_ttl=self.config.pin_default_ttl_seconds)
        self.retention = RetentionPolicy(
            keep_last=self.config.max_versions_kept,
            ttl_seconds=self.config.version_ttl_seconds,
        )
        self.gc = VersionGC(self, policy=self.retention, pins=self.pins)
        self.version_manager.add_delete_guard(self.pins.guard_delete)
        if self.config.gc_interval_seconds is not None:
            self.gc.start(self.config.gc_interval_seconds)

    def _op_rng(self) -> random.Random:
        """Derive one deterministic RNG for a whole client operation.

        The shared seed stream is locked exactly once per operation; the
        returned generator is then threaded through every ``read_page``
        call of the operation instead of re-entering the lock per page.
        """
        with self._rng_lock:
            return random.Random(self._rng.random())

    # ------------------------------------------------------------------ lifecycle
    def create_blob(
        self,
        *,
        page_size: int | None = None,
        replication: int | None = None,
    ) -> int:
        """Create a new empty blob and return its id."""
        info = self.version_manager.create_blob(
            page_size=page_size, replication=replication
        )
        return info.blob_id

    def blob_info(self, blob_id: int) -> BlobInfo:
        """Static properties (page size, replication) of a blob."""
        return self.version_manager.blob_info(blob_id)

    def pin_version(
        self,
        blob_id: int,
        version: int | None = None,
        *,
        owner: str = "reader",
        ttl: float | None = None,
    ) -> SnapshotHandle:
        """Pin a published version against GC and deletion; returns the lease.

        ``version=None`` pins the latest published snapshot.  The handle is
        a context manager; release it (or let its TTL lapse) when done.
        """
        info = self.version_manager.version_info(blob_id, version)
        handle = self.pins.pin(blob_id, info.version, owner=owner, ttl=ttl)
        # A GC cycle may have planned before our pin landed: its atomic
        # retire step either saw the pin (version spared) or retired the
        # version before the pin — re-validate so the caller never holds a
        # pin on a collected snapshot.
        try:
            self.version_manager.version_info(blob_id, info.version)
        except Exception:
            handle.release()
            raise
        return handle

    def delete_blob(self, blob_id: int) -> None:
        """Drop a blob from the version manager and release its pages.

        Raises :class:`~repro.core.errors.BlobPinnedError` while snapshot
        pins are active — callers either wait for
        ``pins.wait_for_drain(blob_id)`` or defer through
        ``pins.on_drain``.
        """
        # Collect pages of every published version before forgetting the blob.
        roots = self.version_manager.snapshot_roots(blob_id)
        page_size = self.blob_info(blob_id).page_size
        keys: set[PageKey] = set()
        for version, root in roots.items():
            size = self.version_manager.size(blob_id, version)
            total_pages = (size + page_size - 1) // page_size
            for descriptor in self.metadata_manager.lookup(
                root, 0, total_pages
            ).values():
                keys.add(descriptor.key)
        self.version_manager.delete_blob(blob_id)
        for key in keys:
            for provider in self.provider_manager.providers:
                try:
                    if provider.has_page(key):
                        provider.remove_page(key)
                except Exception:
                    continue

    def close(self) -> None:
        """Stop the GC daemon and transfer engine, close provider stores."""
        self.gc.stop()
        self.transfer.close()
        for provider in self.provider_manager.providers:
            provider.close()

    def __enter__(self) -> "BlobSeer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------- queries
    def latest_version(self, blob_id: int) -> int:
        """Highest published version of ``blob_id`` (0 when empty)."""
        return self.version_manager.latest_version(blob_id)

    def versions(self, blob_id: int) -> list[int]:
        """All published versions of ``blob_id`` (including the empty 0)."""
        return self.version_manager.published_versions(blob_id)

    def get_size(self, blob_id: int, version: int | None = None) -> int:
        """Size in bytes of a published version (default: latest)."""
        return self.version_manager.size(blob_id, version)

    # -------------------------------------------------------------------- writes
    def write(
        self,
        blob_id: int,
        offset: int,
        data: bytes,
        *,
        client_hint: int | None = None,
    ) -> int:
        """Write ``data`` at ``offset``, producing and returning a new version.

        ``offset`` must be aligned to the blob's page size (the BSFS cache
        guarantees this for file workloads); the data length is arbitrary.
        """
        if not data:
            raise InvalidRangeError("writes must carry at least one byte")
        if offset < 0:
            raise InvalidRangeError("offset cannot be negative")
        page_size = self.blob_info(blob_id).page_size
        if offset % page_size != 0:
            raise AlignmentError(
                f"write offset {offset} is not aligned to the page size {page_size}"
            )
        ticket = self.version_manager.assign_ticket(
            blob_id, offset=offset, size=len(data), append=False
        )
        return self._complete_write(ticket, data, client_hint)

    def append(
        self,
        blob_id: int,
        data: bytes,
        *,
        client_hint: int | None = None,
    ) -> int:
        """Append ``data`` to the blob, producing and returning a new version.

        The offset is assigned by the version manager from the blob's
        assigned size, so concurrent appenders obtain disjoint contiguous
        ranges without coordinating with each other.
        """
        if not data:
            raise InvalidRangeError("appends must carry at least one byte")
        ticket = self.version_manager.assign_ticket(
            blob_id, offset=None, size=len(data), append=True
        )
        return self._complete_write(ticket, data, client_hint)

    def append_batch(
        self,
        blob_id: int,
        chunks: Sequence[bytes],
        *,
        client_hint: int | None = None,
    ) -> list[int]:
        """Append several chunks as consecutive versions with group-commit.

        Semantically identical to calling :meth:`append` once per chunk, but
        the control-plane cost is batched three ways:

        * one ticket-assignment lock hold reserves contiguous tickets for
          the whole batch (:meth:`VersionManager.assign_append_tickets`);
        * each chunk's metadata tree derives from the *locally built* root
          of its predecessor instead of waiting for that version's
          publication, and any page shared between consecutive chunks is
          merged from an in-memory carry of its bytes — no read-back;
        * all versions publish in one critical section
          (:meth:`VersionManager.publish_batch`).

        Returns the version numbers, in order.  If a chunk fails, the
        completed prefix is still published, the remaining tickets are
        aborted, and the error propagates.
        """
        chunks = list(chunks)
        if not chunks:
            return []
        if any(not chunk for chunk in chunks):
            raise InvalidRangeError("appends must carry at least one byte")
        info = self.blob_info(blob_id)
        page_size = info.page_size
        tickets = self.version_manager.assign_append_tickets(
            blob_id, [len(chunk) for chunk in chunks]
        )
        publications: list[tuple[WriteTicket, NodeKey | None]] = []
        prev_root: NodeKey | None = None
        carry: tuple[int, bytes] | None = None  # (page index, bytes so far)
        try:
            for position, (ticket, data) in enumerate(zip(tickets, chunks)):
                written, carry = self._transfer_batch_chunk(
                    ticket, data, page_size, info, client_hint, carry
                )
                if position == 0:
                    # The batch's base is an *external* version: wait for
                    # its publication as a lone append would.
                    root = self._build_metadata(ticket, written, page_size)
                else:
                    # Intra-batch base: chain through the root built in the
                    # previous iteration; it is unpublished but complete.
                    base_pages = (
                        ticket.base_size + page_size - 1
                    ) // page_size
                    total_pages = (ticket.new_size + page_size - 1) // page_size
                    root = self.metadata_manager.build_version(
                        blob_id,
                        ticket.version,
                        written,
                        total_pages,
                        base_root=prev_root,
                        base_capacity=next_power_of_two(base_pages)
                        if base_pages
                        else 1,
                    )
                publications.append((ticket, root))
                prev_root = root
        except Exception:
            self.version_manager.publish_batch(publications)
            for ticket in tickets[len(publications) :]:
                self.version_manager.abort(ticket)
            raise
        self.version_manager.publish_batch(publications)
        return [ticket.version for ticket in tickets]

    def _transfer_batch_chunk(
        self,
        ticket: WriteTicket,
        data: bytes,
        page_size: int,
        info: BlobInfo,
        client_hint: int | None,
        carry: tuple[int, bytes] | None,
    ) -> tuple[dict[int, PageDescriptor], tuple[int, bytes] | None]:
        """Push one batched chunk's pages; returns (descriptors, new carry).

        The carry holds the bytes of the previous chunk's partial tail
        page.  When this chunk starts mid-page, its head page is rebuilt as
        ``carry + head bytes`` in memory — the page the predecessor wrote
        stays referenced by *its* version only (structural sharing keeps
        versions immutable), and this version maps the merged page.
        """
        offset = ticket.offset
        end = offset + len(data)
        page_range = page_range_for_bytes(offset, len(data), page_size)
        first_page, last_page = page_range.first, page_range.last
        head_unaligned = offset % page_size != 0
        merged_head: bytes | None = None

        if not head_unaligned:
            # Aligned chunk: the generic path is all interior pages (an
            # append's tail never waits on anything).
            written = self._transfer_pages(ticket, data, page_size, info, client_hint)
        else:
            if carry is not None and carry[0] == first_page:
                prefix = carry[1]
            else:
                # First chunk of the batch starting mid-page: the prefix
                # bytes live in the (external) base version.
                self._wait_for_base(ticket)
                base_info = self.version_manager.version_info(
                    ticket.blob_id, ticket.base_version
                )
                page_bytes = self._merge_boundary_page(
                    ticket,
                    data,
                    first_page,
                    page_size,
                    base_info.root,
                    base_info.size,
                    rng=self._op_rng(),
                )
                prefix = page_bytes[: offset - first_page * page_size]
            head_take = min(page_size - len(prefix), len(data))
            merged_head = bytes(prefix) + bytes(data[:head_take])
            allocation = self.provider_manager.allocate(
                len(page_range), info.replication, client_hint=client_hint
            )
            data_view = memoryview(data)

            def push_page(page_index: int, chunk: bytes) -> tuple[int, PageDescriptor]:
                key = PageKey(
                    blob_id=ticket.blob_id,
                    version=ticket.version,
                    index=page_index,
                )
                stored = write_replicas(
                    self.provider_manager,
                    key,
                    chunk,
                    allocation[page_index - first_page],
                    engine=self.transfer,
                )
                return page_index, PageDescriptor(
                    key=key, providers=stored, size=len(chunk)
                )

            def push_interior(page_index: int) -> tuple[int, PageDescriptor]:
                page_start = page_index * page_size
                page_end = min(page_start + page_size, ticket.new_size)
                chunk = bytes(data_view[page_start - offset : page_end - offset])
                return push_page(page_index, chunk)

            interior = [p for p in page_range if p != first_page]
            written = dict(self.transfer.map(push_interior, interior))
            index, descriptor = push_page(first_page, merged_head)
            written[index] = descriptor

        new_carry: tuple[int, bytes] | None = None
        if end % page_size != 0:
            tail_page = last_page - 1
            if merged_head is not None and tail_page == first_page:
                tail_bytes = merged_head
            else:
                tail_bytes = bytes(data[tail_page * page_size - offset :])
            new_carry = (tail_page, tail_bytes)
        return written, new_carry

    def _complete_write(
        self,
        ticket: WriteTicket,
        data: bytes,
        client_hint: int | None,
    ) -> int:
        blob_id = ticket.blob_id
        info = self.blob_info(blob_id)
        page_size = info.page_size
        try:
            written = self._transfer_pages(ticket, data, page_size, info, client_hint)
            root = self._build_metadata(ticket, written, page_size)
        except Exception:
            self.version_manager.abort(ticket)
            raise
        self.version_manager.publish(ticket, root)
        return ticket.version

    def _transfer_pages(
        self,
        ticket: WriteTicket,
        data: bytes,
        page_size: int,
        info: BlobInfo,
        client_hint: int | None,
    ) -> dict[int, PageDescriptor]:
        """Push the write's pages to providers; returns index -> descriptor.

        Interior pages — and the replicas of each page — are fanned out in
        parallel through the deployment's transfer engine, so one large
        write stripes across the provider pool concurrently instead of
        trickling one page (and one replica) at a time.
        """
        offset = ticket.offset
        end = offset + len(data)
        page_range = page_range_for_bytes(offset, len(data), page_size)
        first_page, last_page = page_range.first, page_range.last
        head_unaligned = offset % page_size != 0
        tail_unaligned = end % page_size != 0 and end < ticket.new_size

        allocation = self.provider_manager.allocate(
            len(page_range), info.replication, client_hint=client_hint
        )
        boundary_indices: list[int] = []
        if head_unaligned:
            boundary_indices.append(first_page)
        if tail_unaligned and (last_page - 1) not in boundary_indices:
            boundary_indices.append(last_page - 1)

        data_view = memoryview(data)

        def push_page(page_index: int, chunk: bytes) -> tuple[int, PageDescriptor]:
            key = PageKey(
                blob_id=ticket.blob_id, version=ticket.version, index=page_index
            )
            stored = write_replicas(
                self.provider_manager,
                key,
                chunk,
                allocation[page_index - first_page],
                engine=self.transfer,
            )
            return page_index, PageDescriptor(
                key=key, providers=stored, size=len(chunk)
            )

        def push_interior(page_index: int) -> tuple[int, PageDescriptor]:
            page_start = page_index * page_size
            page_end = min(page_start + page_size, ticket.new_size)
            chunk = bytes(data_view[page_start - offset : page_end - offset])
            return push_page(page_index, chunk)

        # Interior (fully covered) pages can be transferred immediately,
        # concurrently with other writers — and with each other.
        interior = [p for p in page_range if p not in boundary_indices]
        written: dict[int, PageDescriptor] = dict(
            self.transfer.map(push_interior, interior)
        )

        if boundary_indices:
            # Boundary pages need the base version's bytes: wait for it.
            self._wait_for_base(ticket)
            base_info = self.version_manager.version_info(
                ticket.blob_id, ticket.base_version
            )
            rng = self._op_rng()
            for page_index in boundary_indices:
                chunk = self._merge_boundary_page(
                    ticket,
                    data,
                    page_index,
                    page_size,
                    base_info.root,
                    base_info.size,
                    rng=rng,
                )
                index, descriptor = push_page(page_index, chunk)
                written[index] = descriptor
        return written

    def _wait_for_base(self, ticket: WriteTicket) -> None:
        if ticket.base_version > 0:
            self.version_manager.wait_for_publication(
                ticket.blob_id, ticket.base_version
            )

    def _merge_boundary_page(
        self,
        ticket: WriteTicket,
        data: bytes,
        page_index: int,
        page_size: int,
        base_root: NodeKey | None,
        base_size: int,
        *,
        rng: random.Random,
    ) -> bytes:
        """Combine the new bytes of a partially covered page with the base bytes."""
        offset, end = ticket.offset, ticket.offset + len(data)
        page_start = page_index * page_size
        page_end = min(page_start + page_size, max(ticket.new_size, base_size))
        page_len = page_end - page_start
        # Existing content of this page in the base version (zero-filled holes).
        existing = bytearray(page_len)
        if base_root is not None and page_start < base_size:
            base_descriptors = self.metadata_manager.lookup(
                base_root, page_index, page_index + 1
            )
            descriptor = base_descriptors.get(page_index)
            if descriptor is not None:
                old = read_page(
                    self.provider_manager,
                    descriptor,
                    policy=self.config.read_replica_policy,
                    rng=rng,
                )
                existing[: len(old)] = old
        # Overlay the new bytes.
        new_lo = max(offset, page_start)
        new_hi = min(end, page_end)
        existing[new_lo - page_start : new_hi - page_start] = data[
            new_lo - offset : new_hi - offset
        ]
        # Trim to the page's actual length within the new blob size.
        actual_len = min(page_size, ticket.new_size - page_start)
        return bytes(existing[:actual_len])

    def _build_metadata(
        self,
        ticket: WriteTicket,
        written: dict[int, PageDescriptor],
        page_size: int,
    ) -> NodeKey | None:
        """Wait for the base version and derive the new metadata tree from it."""
        self._wait_for_base(ticket)
        base_info = self.version_manager.version_info(
            ticket.blob_id, ticket.base_version
        )
        base_pages = (base_info.size + page_size - 1) // page_size
        base_capacity = next_power_of_two(base_pages) if base_pages else 1
        total_pages = (ticket.new_size + page_size - 1) // page_size
        return self.metadata_manager.build_version(
            ticket.blob_id,
            ticket.version,
            written,
            total_pages,
            base_root=base_info.root,
            base_capacity=base_capacity,
        )

    # --------------------------------------------------------------------- reads
    def read(
        self,
        blob_id: int,
        offset: int,
        size: int,
        *,
        version: int | None = None,
    ) -> bytes:
        """Read ``size`` bytes at ``offset`` from a published version.

        ``version=None`` reads the latest published snapshot.  Byte ranges
        must lie within the version's size.  Ranges that were reserved by an
        aborted writer (holes) read as zero bytes.
        """
        info = self.version_manager.version_info(blob_id, version)
        if offset < 0 or size < 0:
            raise InvalidRangeError("offset and size must be non-negative")
        if offset + size > info.size:
            raise InvalidRangeError(
                f"range [{offset}, {offset + size}) exceeds version "
                f"{info.version} size {info.size}"
            )
        if size == 0:
            return b""
        page_size = self.blob_info(blob_id).page_size
        page_range = page_range_for_bytes(offset, size, page_size)
        descriptors = self.metadata_manager.lookup(
            info.root, page_range.first, page_range.last
        )
        buffer = bytearray((len(page_range)) * page_size)
        rng = self._op_rng()

        def fetch(page_index: int) -> None:
            descriptor = descriptors.get(page_index)
            if descriptor is None:
                return  # hole: keep zero bytes
            data = read_page(
                self.provider_manager,
                descriptor,
                policy=self.config.read_replica_policy,
                rng=rng,
            )
            start = (page_index - page_range.first) * page_size
            buffer[start : start + len(data)] = data

        # Pages of one read are fetched concurrently: each worker fills a
        # disjoint slice of the shared buffer, so no further coordination
        # is needed beyond the engine's bounded pool.
        self.transfer.map(fetch, page_range)
        skip = offset - page_range.first * page_size
        return bytes(buffer[skip : skip + size])

    def read_all(self, blob_id: int, *, version: int | None = None) -> bytes:
        """Read the entire content of a published version."""
        size = self.get_size(blob_id, version)
        return self.read(blob_id, 0, size, version=version)

    # ---------------------------------------------------------------- streaming
    def open_read(
        self,
        blob_id: int,
        offset: int = 0,
        size: int | None = None,
        *,
        version: int | None = None,
        read_ahead: int | None = None,
    ) -> Iterator[memoryview]:
        """Stream a byte range as an iterator of ``memoryview`` chunks.

        Yields one chunk per page (trimmed at the range boundaries) without
        ever materialising the whole range: up to ``read_ahead`` pages
        (default ``config.read_ahead_pages``) are fetched through the
        transfer engine ahead of the consumer, overlapping provider latency
        with downstream processing.  Holes left by aborted writers read as
        zero bytes, exactly like :meth:`read`.
        """
        info = self.version_manager.version_info(blob_id, version)
        if size is None:
            size = max(info.size - offset, 0)
        if offset < 0 or size < 0:
            raise InvalidRangeError("offset and size must be non-negative")
        if offset + size > info.size:
            raise InvalidRangeError(
                f"range [{offset}, {offset + size}) exceeds version "
                f"{info.version} size {info.size}"
            )
        if size == 0:
            return iter(())
        page_size = self.blob_info(blob_id).page_size
        page_range = page_range_for_bytes(offset, size, page_size)
        descriptors = self.metadata_manager.lookup(
            info.root, page_range.first, page_range.last
        )
        rng = self._op_rng()
        end = offset + size

        def make_fetch(page_index: int):
            def fetch() -> memoryview:
                descriptor = descriptors.get(page_index)
                page_start = page_index * page_size
                page_len = min(page_size, info.size - page_start)
                if descriptor is None:
                    data = bytes(page_len)  # hole: zero bytes
                else:
                    data = read_page(
                        self.provider_manager,
                        descriptor,
                        policy=self.config.read_replica_policy,
                        rng=rng,
                    )
                    if len(data) < page_len:
                        data = data + bytes(page_len - len(data))
                lo = max(offset - page_start, 0)
                hi = min(end - page_start, page_len)
                return memoryview(data)[lo:hi]

            return fetch

        depth = read_ahead if read_ahead is not None else self.config.read_ahead_pages
        return pipelined(
            (make_fetch(p) for p in page_range),
            self.transfer,
            depth=depth,
            budget=self.transfer.budget,
            cost_hint=page_size,
        )

    def open_write(
        self,
        blob_id: int,
        *,
        flush_pages: int | None = None,
        client_hint: int | None = None,
    ) -> "BlobWriteSink":
        """Open a streaming append sink for ``blob_id``.

        The sink buffers incoming chunks (a chunk list, never a growing
        byte string) and commits them as page-aligned appends every
        ``flush_pages`` pages, so arbitrarily large content flows through
        bounded memory.  Each flush publishes one new version — the same
        contract as calling :meth:`append` per block, which is exactly what
        the BSFS block writer does.
        """
        info = self.blob_info(blob_id)
        if flush_pages is None:
            flush_pages = max(self.config.transfer_workers, 1) * 4
        return BlobWriteSink(
            self,
            blob_id,
            page_size=info.page_size,
            flush_pages=flush_pages,
            client_hint=client_hint,
        )

    # ------------------------------------------------------------------ locality
    def page_locations(
        self,
        blob_id: int,
        offset: int,
        size: int,
        *,
        version: int | None = None,
    ) -> list[PageLocation]:
        """Expose the page-to-provider distribution of a byte range.

        This is the primitive the paper adds to BlobSeer so the Hadoop
        jobtracker can schedule map tasks close to their input data.
        """
        info = self.version_manager.version_info(blob_id, version)
        if offset < 0 or size < 0:
            raise InvalidRangeError("offset and size must be non-negative")
        size = min(size, max(info.size - offset, 0))
        page_size = self.blob_info(blob_id).page_size
        page_range = page_range_for_bytes(offset, size, page_size)
        descriptors = self.metadata_manager.lookup(
            info.root, page_range.first, page_range.last
        )
        locations: list[PageLocation] = []
        for page_index in page_range:
            descriptor = descriptors.get(page_index)
            if descriptor is None:
                continue
            hosts = []
            for provider_id in descriptor.providers:
                try:
                    hosts.append(self.provider_manager.get(provider_id).host)
                except Exception:
                    hosts.append(f"provider-{provider_id}")
            locations.append(
                PageLocation(
                    page_index=page_index,
                    offset=page_index * page_size,
                    size=descriptor.size,
                    providers=descriptor.providers,
                    hosts=tuple(hosts),
                )
            )
        return locations

    # ------------------------------------------------------------ fault tolerance
    def scrub(self, blob_id: int, *, version: int | None = None):
        """Scrub a version's pages; see :class:`ReplicationManager.scrub`."""
        info = self.version_manager.version_info(blob_id, version)
        page_size = self.blob_info(blob_id).page_size
        total_pages = (info.size + page_size - 1) // page_size
        descriptors = self.metadata_manager.lookup(info.root, 0, total_pages)
        return self.replication_manager.scrub(
            descriptors.values(),
            target_replication=self.blob_info(blob_id).replication,
        )

    def repair(self, blob_id: int, *, version: int | None = None) -> int:
        """Re-replicate under-replicated pages and publish a repaired version.

        The repaired version has identical content but updated page
        placement; it becomes the new latest version.  Returns the new
        version number (or the current one when nothing needed healing).
        """
        info = self.version_manager.version_info(blob_id, version)
        blob = self.blob_info(blob_id)
        page_size = blob.page_size
        total_pages = (info.size + page_size - 1) // page_size
        descriptors = self.metadata_manager.lookup(info.root, 0, total_pages)
        report = self.replication_manager.scrub(
            descriptors.values(), target_replication=blob.replication
        )
        if report.is_healthy:
            return info.version
        healed = self.replication_manager.heal_all(
            list(report.under_replicated) + list(report.lost),
            target_replication=blob.replication,
        )
        if not healed:
            raise PageNotFoundError(
                f"blob {blob_id}: some pages lost all replicas and cannot be healed"
            )
        # Publish a metadata-only version carrying the new placement.
        ticket = self.version_manager.assign_ticket(
            blob_id, offset=0, size=0, append=False
        )
        try:
            root = self._build_metadata(ticket, healed, page_size)
        except Exception:
            self.version_manager.abort(ticket)
            raise
        self.version_manager.publish(ticket, root)
        return ticket.version

    # ----------------------------------------------------------------- monitoring
    def stats(self) -> dict:
        """Aggregate statistics of the deployment (for reports and tests)."""
        provider_stats = [p.stats() for p in self.provider_manager.providers]
        return {
            "providers": len(provider_stats),
            "pages_stored": sum(s.pages_stored for s in provider_stats),
            "bytes_stored": sum(s.bytes_stored for s in provider_stats),
            "bytes_read": sum(s.bytes_read for s in provider_stats),
            "bytes_written": sum(s.bytes_written for s in provider_stats),
            "imbalance": self.provider_manager.imbalance(),
            "metadata_distribution": self.dht.distribution(),
            "blobs": self.version_manager.describe(),
            "pins": self.pins.describe(),
        }


class BlobWriteSink:
    """Streaming append sink returned by :meth:`BlobSeer.open_write`.

    Chunks handed to :meth:`write` are kept in a chunk list (amortised
    O(1) appends, no quadratic re-concatenation) and committed as
    page-aligned appends once ``flush_pages`` pages have accumulated; the
    transfer engine then pushes the pages of each flush concurrently.  The
    final partial page is committed by :meth:`close`.
    """

    def __init__(
        self,
        client: BlobSeer,
        blob_id: int,
        *,
        page_size: int,
        flush_pages: int,
        client_hint: int | None = None,
    ) -> None:
        if flush_pages < 1:
            raise ValueError("flush_pages must be at least 1")
        # Imported here to keep the module import graph acyclic-looking in
        # reading order; transfer has no dependency back on the client.
        from .transfer import ChunkBuffer

        self._client = client
        self._blob_id = blob_id
        self._page_size = page_size
        self._flush_bytes = flush_pages * page_size
        self._client_hint = client_hint
        self._buffer = ChunkBuffer()
        self._closed = False
        #: Versions published by this sink's flushes, in commit order.
        self.versions: list[int] = []
        #: Total bytes accepted by :meth:`write` so far.
        self.bytes_written = 0

    def _flush(self, nbytes: int) -> None:
        if nbytes <= 0:
            return
        version = self._client.append(
            self._blob_id, self._buffer.take(nbytes), client_hint=self._client_hint
        )
        self.versions.append(version)

    def write(self, data: bytes) -> int:
        """Buffer ``data``; page-aligned multiples flush once full."""
        if self._closed:
            raise InvalidRangeError("write on a closed blob sink")
        if not isinstance(data, (bytes, bytearray, memoryview)):
            raise TypeError("blob sinks accept bytes-like objects only")
        self._buffer.append(bytes(data))
        self.bytes_written += len(data)
        full_units = len(self._buffer) // self._flush_bytes
        if full_units == 1:
            # _flush_bytes is a whole number of pages, so every flush is
            # page-aligned and consecutive appends of this sink hit the
            # interior fast path as long as no other appender interleaves.
            self._flush(self._flush_bytes)
        elif full_units > 1:
            # A large write() delivers several flush units at once: commit
            # them as one group (one ticket-assignment lock hold, one
            # publish critical section) instead of one publish per unit.
            chunks = [
                self._buffer.take(self._flush_bytes) for _ in range(full_units)
            ]
            self.versions.extend(
                self._client.append_batch(
                    self._blob_id, chunks, client_hint=self._client_hint
                )
            )
        return len(data)

    def flush(self) -> None:
        """Commit everything buffered immediately (may end a page early)."""
        self._flush(len(self._buffer))

    def close(self) -> None:
        """Flush the remainder and refuse further writes (idempotent)."""
        if self._closed:
            return
        self.flush()
        self._closed = True

    def __enter__(self) -> "BlobWriteSink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
