"""Configuration objects for a BlobSeer deployment.

The defaults mirror the deployment the paper evaluates on Grid'5000: 64 KiB
pages inside 64 MiB Hadoop-sized blocks, a handful of metadata providers, and
a provider per node.  Everything is overridable; the configuration object is
shared by the functional (in-process) deployment and by the cluster
simulator so that both layers take identical policy decisions.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Mapping

__all__ = ["KB", "MB", "GB", "BlobSeerConfig"]

#: Binary kilobyte (kibibyte), used throughout the code base for sizes.
KB = 1024
#: Binary megabyte (mebibyte).
MB = 1024 * KB
#: Binary gigabyte (gibibyte).
GB = 1024 * MB


@dataclass(frozen=True)
class BlobSeerConfig:
    """Static configuration of a BlobSeer service instance.

    Parameters
    ----------
    page_size:
        Default size in bytes of a page (BlobSeer's unit of data
        management).  Individual blobs may override it at creation time.
    replication:
        Default number of replicas kept for every page.
    num_providers:
        Number of data providers started by the in-process deployment
        helper (:class:`repro.core.client.BlobSeer`).
    num_metadata_providers:
        Number of metadata providers forming the DHT.
    allocation_strategy:
        Name of the page-to-provider allocation strategy
        (``"load_balanced"``, ``"random"`` or ``"local_first"``).
    virtual_nodes_per_metadata_provider:
        Number of virtual nodes each metadata provider contributes to the
        consistent-hashing ring; more virtual nodes means a smoother key
        distribution.
    max_versions_kept:
        If not ``None``, only the newest ``max_versions_kept`` published
        versions are retained by the version garbage collector
        (:mod:`repro.versions`); older ones become reclaimable unless
        pinned.  ``None`` retains every version forever (the seed
        behaviour).
    version_ttl_seconds:
        If not ``None``, published versions younger than this many seconds
        are always retained regardless of ``max_versions_kept`` (and older
        unpinned ones become reclaimable when ``max_versions_kept`` is
        also unset).
    gc_interval_seconds:
        If not ``None``, the deployment starts a background
        :class:`~repro.versions.VersionGC` daemon sweeping every blob at
        this period.  ``None`` leaves GC to explicit ``run_once`` calls
        (in-process or via the control plane).
    pin_default_ttl_seconds:
        Default lease duration of snapshot pins taken without an explicit
        ``ttl``; ``None`` means pins never expire and must be released.
    read_replica_policy:
        How a reader chooses among page replicas: ``"least_loaded"``,
        ``"random"`` or ``"first"``.
    transfer_workers:
        Worker threads of the deployment's shared transfer engine
        (:mod:`repro.core.transfer`): the number of page/replica transfers
        the client keeps in flight concurrently.  ``1`` degrades every
        byte path to the old sequential behaviour (useful as an ablation
        baseline).
    read_ahead_pages:
        Streaming-read depth: how many pages ``open_read`` fetches ahead
        of the consumer.
    max_inflight_bytes:
        Optional cap on the *extra* read-ahead bytes streaming reads keep
        in flight beyond the one page each stream needs to make progress
        (``None`` = unbounded).  The charge is non-blocking by design:
        when the budget is exhausted, streams degrade to a read-ahead of
        one instead of waiting on each other, so any number of concurrent
        streams sharing the budget stay deadlock-free.
    rng_seed:
        Seed for the deterministic pseudo-random choices made by the
        service (random allocation strategy, replica selection).  Keeping
        this fixed makes experiments reproducible.
    namespace_shards:
        Number of hash partitions of the BSFS namespace
        (:mod:`repro.fs.sharded`); each shard has its own lock.  ``1``
        keeps the single-lock :class:`~repro.fs.namespace.NamespaceTree`
        (the ablation baseline of BENCH_metadata).
    version_lock_stripes:
        Lock stripes of the version manager's blob registry; blob
        registration/lookup contend per stripe instead of on one global
        lock.
    allocation_range_pages:
        Largest contiguous page range the load-balanced allocation
        strategy hands a single provider per allocation call; longer
        writes split into ranges of at most this many pages.  ``1``
        degrades to page-at-a-time allocation.
    """

    page_size: int = 64 * KB
    replication: int = 1
    num_providers: int = 16
    num_metadata_providers: int = 4
    allocation_strategy: str = "load_balanced"
    virtual_nodes_per_metadata_provider: int = 64
    max_versions_kept: int | None = None
    version_ttl_seconds: float | None = None
    gc_interval_seconds: float | None = None
    pin_default_ttl_seconds: float | None = None
    read_replica_policy: str = "least_loaded"
    transfer_workers: int = 8
    read_ahead_pages: int = 4
    max_inflight_bytes: int | None = None
    rng_seed: int = 0xB10B5EE
    namespace_shards: int = 8
    version_lock_stripes: int = 16
    allocation_range_pages: int = 8

    def __post_init__(self) -> None:
        if self.page_size <= 0:
            raise ValueError("page_size must be positive")
        if self.replication <= 0:
            raise ValueError("replication must be at least 1")
        if self.num_providers <= 0:
            raise ValueError("num_providers must be at least 1")
        if self.num_metadata_providers <= 0:
            raise ValueError("num_metadata_providers must be at least 1")
        if self.replication > self.num_providers:
            raise ValueError(
                "replication cannot exceed the number of data providers "
                f"({self.replication} > {self.num_providers})"
            )
        if self.allocation_strategy not in (
            "load_balanced",
            "random",
            "local_first",
        ):
            raise ValueError(
                f"unknown allocation strategy {self.allocation_strategy!r}"
            )
        if self.read_replica_policy not in ("least_loaded", "random", "first"):
            raise ValueError(
                f"unknown read replica policy {self.read_replica_policy!r}"
            )
        if self.virtual_nodes_per_metadata_provider <= 0:
            raise ValueError("virtual_nodes_per_metadata_provider must be >= 1")
        if self.transfer_workers < 1:
            raise ValueError("transfer_workers must be at least 1")
        if self.read_ahead_pages < 1:
            raise ValueError("read_ahead_pages must be at least 1")
        if self.max_inflight_bytes is not None and self.max_inflight_bytes < 1:
            raise ValueError("max_inflight_bytes must be None or positive")
        if self.max_versions_kept is not None and self.max_versions_kept < 1:
            raise ValueError("max_versions_kept must be None or >= 1")
        if self.version_ttl_seconds is not None and self.version_ttl_seconds < 0:
            raise ValueError("version_ttl_seconds must be None or >= 0")
        if self.gc_interval_seconds is not None and self.gc_interval_seconds <= 0:
            raise ValueError("gc_interval_seconds must be None or positive")
        if (
            self.pin_default_ttl_seconds is not None
            and self.pin_default_ttl_seconds <= 0
        ):
            raise ValueError("pin_default_ttl_seconds must be None or positive")
        if self.namespace_shards < 1:
            raise ValueError("namespace_shards must be at least 1")
        if self.version_lock_stripes < 1:
            raise ValueError("version_lock_stripes must be at least 1")
        if self.allocation_range_pages < 1:
            raise ValueError("allocation_range_pages must be at least 1")

    def with_overrides(self, **overrides: Any) -> "BlobSeerConfig":
        """Return a copy of the configuration with the given fields replaced."""
        return replace(self, **overrides)

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Any]) -> "BlobSeerConfig":
        """Build a configuration from a plain mapping, ignoring unknown keys."""
        known = {f for f in cls.__dataclass_fields__}  # noqa: C416
        return cls(**{k: v for k, v in mapping.items() if k in known})

    def describe(self) -> dict[str, Any]:
        """Return a JSON-friendly description of this configuration."""
        return {
            "page_size": self.page_size,
            "replication": self.replication,
            "num_providers": self.num_providers,
            "num_metadata_providers": self.num_metadata_providers,
            "allocation_strategy": self.allocation_strategy,
            "virtual_nodes_per_metadata_provider": (
                self.virtual_nodes_per_metadata_provider
            ),
            "max_versions_kept": self.max_versions_kept,
            "version_ttl_seconds": self.version_ttl_seconds,
            "gc_interval_seconds": self.gc_interval_seconds,
            "pin_default_ttl_seconds": self.pin_default_ttl_seconds,
            "read_replica_policy": self.read_replica_policy,
            "transfer_workers": self.transfer_workers,
            "read_ahead_pages": self.read_ahead_pages,
            "max_inflight_bytes": self.max_inflight_bytes,
            "rng_seed": self.rng_seed,
            "namespace_shards": self.namespace_shards,
            "version_lock_stripes": self.version_lock_stripes,
            "allocation_range_pages": self.allocation_range_pages,
        }
