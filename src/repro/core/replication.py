"""Page replication: writing replicas, replica selection, scrubbing and repair.

BlobSeer tolerates data-provider failures through page-level replication.
This module concentrates the replica-handling logic used by the client:

* :func:`write_replicas` — push one page to each provider of its replica
  set, tolerating individual provider failures as long as at least one
  replica lands.
* :func:`read_page` — fetch a page from one of its replicas, choosing the
  replica according to the configured policy and failing over to the next
  one on provider failure.
* :class:`ReplicationManager` — scrubbing (detecting under-replicated
  pages) and healing (copying surviving replicas onto additional providers)
  so that a blob can be brought back to its target replication level after
  provider crashes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Sequence

from .errors import PageNotFoundError, ProviderUnavailableError
from .pages import PageDescriptor, PageKey
from .provider_manager import ProviderManager
from .transfer import TransferEngine

__all__ = [
    "write_replicas",
    "read_page",
    "ScrubReport",
    "ReplicationManager",
]


def write_replicas(
    provider_manager: ProviderManager,
    key: PageKey,
    data: bytes,
    provider_ids: Sequence[int],
    *,
    engine: TransferEngine | None = None,
) -> tuple[int, ...]:
    """Write ``data`` under ``key`` on every provider in ``provider_ids``.

    With an ``engine``, the replicas of one page are pushed to their
    providers *concurrently* (the striped transfer the paper's throughput
    figures rely on) instead of one after the other; without one, the
    sequential order is preserved.  Returns the ids of the providers that
    actually stored a replica, in ``provider_ids`` order.  At least one
    replica must succeed, otherwise the page would be lost and a
    :class:`~repro.core.errors.ProviderUnavailableError` is raised.
    """

    def put_one(provider_id: int) -> tuple[int, Exception | None]:
        provider = provider_manager.get(provider_id)
        try:
            provider.put_page(key, data)
        except ProviderUnavailableError as exc:
            return provider_id, exc
        return provider_id, None

    if engine is not None and len(provider_ids) > 1:
        outcomes = engine.map(put_one, provider_ids)
    else:
        outcomes = [put_one(provider_id) for provider_id in provider_ids]
    stored = tuple(pid for pid, error in outcomes if error is None)
    if not stored:
        errors = [error for _pid, error in outcomes if error is not None]
        raise errors[-1] if errors else ProviderUnavailableError(provider_ids)
    return stored


def _order_replicas(
    provider_manager: ProviderManager,
    descriptor: PageDescriptor,
    policy: str,
    rng: random.Random,
) -> list[int]:
    """Return the descriptor's providers ordered by the replica-selection policy."""
    providers = list(descriptor.providers)
    if policy == "first" or len(providers) == 1:
        return providers
    if policy == "random":
        rng.shuffle(providers)
        return providers
    if policy == "least_loaded":
        def load(provider_id: int) -> tuple[int, int]:
            try:
                stats = provider_manager.get(provider_id).stats()
            except Exception:  # unregistered provider: try it last
                return (1 << 62, 1 << 62)
            return (stats.pages_read, stats.bytes_read)

        return sorted(providers, key=load)
    raise ValueError(f"unknown read replica policy {policy!r}")


def read_page(
    provider_manager: ProviderManager,
    descriptor: PageDescriptor,
    *,
    policy: str = "least_loaded",
    rng: random.Random | None = None,
) -> bytes:
    """Fetch the page described by ``descriptor`` from one of its replicas.

    Replicas are tried in policy order; provider failures and missing
    replicas trigger failover to the next replica.  If every replica is
    unreachable a :class:`~repro.core.errors.PageNotFoundError` is raised.
    """
    rng = rng or random.Random(descriptor.key.index)
    for provider_id in _order_replicas(provider_manager, descriptor, policy, rng):
        try:
            provider = provider_manager.get(provider_id)
            return provider.get_page(descriptor.key)
        except (ProviderUnavailableError, KeyError):
            continue
        except Exception:
            continue
    raise PageNotFoundError(descriptor.key)


@dataclass(frozen=True, slots=True)
class ScrubReport:
    """Result of scrubbing a set of page descriptors."""

    total_pages: int
    healthy_pages: int
    under_replicated: tuple[PageDescriptor, ...]
    lost: tuple[PageDescriptor, ...]

    @property
    def is_healthy(self) -> bool:
        """True when every page has its full replica set available."""
        return not self.under_replicated and not self.lost


class ReplicationManager:
    """Scrub and heal the replicas of a set of pages."""

    def __init__(self, provider_manager: ProviderManager, *, seed: int = 0) -> None:
        self._pm = provider_manager
        self._rng = random.Random(seed)

    def live_replicas(self, descriptor: PageDescriptor) -> list[int]:
        """Provider ids of the descriptor's replicas that are currently readable."""
        live: list[int] = []
        for provider_id in descriptor.providers:
            try:
                provider = self._pm.get(provider_id)
            except Exception:
                continue
            if provider.available and provider.has_page(descriptor.key):
                live.append(provider_id)
        return live

    def scrub(
        self, descriptors: Iterable[PageDescriptor], *, target_replication: int
    ) -> ScrubReport:
        """Classify pages as healthy, under-replicated or lost."""
        total = 0
        healthy = 0
        under: list[PageDescriptor] = []
        lost: list[PageDescriptor] = []
        for descriptor in descriptors:
            total += 1
            live = self.live_replicas(descriptor)
            if not live:
                lost.append(descriptor)
            elif len(live) < target_replication:
                under.append(descriptor)
            else:
                healthy += 1
        return ScrubReport(
            total_pages=total,
            healthy_pages=healthy,
            under_replicated=tuple(under),
            lost=tuple(lost),
        )

    def heal(
        self,
        descriptor: PageDescriptor,
        *,
        target_replication: int,
    ) -> PageDescriptor:
        """Copy a surviving replica onto fresh providers until the target is met.

        Returns a new descriptor whose provider list reflects the healed
        placement (the original descriptor is immutable).  Raises
        :class:`~repro.core.errors.PageNotFoundError` when no replica
        survives.
        """
        live = self.live_replicas(descriptor)
        if not live:
            raise PageNotFoundError(descriptor.key)
        if len(live) >= target_replication:
            return PageDescriptor(
                key=descriptor.key, providers=tuple(live), size=descriptor.size
            )
        data = read_page(
            self._pm,
            PageDescriptor(descriptor.key, tuple(live), descriptor.size),
            policy="first",
        )
        candidates = [
            p.provider_id
            for p in self._pm.providers
            if p.available and p.provider_id not in live
        ]
        self._rng.shuffle(candidates)
        needed = target_replication - len(live)
        new_homes = candidates[:needed]
        stored = list(live)
        for provider_id in new_homes:
            try:
                self._pm.get(provider_id).put_page(descriptor.key, data)
                stored.append(provider_id)
            except ProviderUnavailableError:
                continue
        return PageDescriptor(
            key=descriptor.key, providers=tuple(stored), size=descriptor.size
        )

    def heal_all(
        self,
        descriptors: Iterable[PageDescriptor],
        *,
        target_replication: int,
    ) -> dict[int, PageDescriptor]:
        """Heal every under-replicated page; returns ``{page index: new descriptor}``.

        Pages whose replicas all vanished are skipped (they cannot be
        healed); callers can detect them through :meth:`scrub`.
        """
        healed: dict[int, PageDescriptor] = {}
        for descriptor in descriptors:
            try:
                healed[descriptor.index] = self.heal(
                    descriptor, target_replication=target_replication
                )
            except PageNotFoundError:
                continue
        return healed
