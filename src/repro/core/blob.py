"""File-like convenience wrapper around a single blob.

:class:`BlobHandle` offers a cursor-based ``read``/``write``/``append``/
``seek`` interface on top of the :class:`~repro.core.client.BlobSeer`
facade.  It is a convenience for examples and applications that want to
treat one blob like a local file while retaining access to versioning
(every mutation still produces a new published snapshot and old snapshots
remain readable through ``read(version=...)``).
"""

from __future__ import annotations

import io
from typing import Iterator

from .client import BlobSeer
from .errors import InvalidRangeError

__all__ = ["BlobHandle"]


class BlobHandle:
    """Cursor-based accessor for one blob of a :class:`BlobSeer` deployment."""

    def __init__(self, service: BlobSeer, blob_id: int) -> None:
        self._service = service
        self._blob_id = blob_id
        self._position = 0

    # ------------------------------------------------------------------ metadata
    @property
    def blob_id(self) -> int:
        """Identifier of the wrapped blob."""
        return self._blob_id

    @property
    def page_size(self) -> int:
        """Page size the blob was created with."""
        return self._service.blob_info(self._blob_id).page_size

    @property
    def size(self) -> int:
        """Size in bytes of the latest published version."""
        return self._service.get_size(self._blob_id)

    @property
    def latest_version(self) -> int:
        """Latest published version number."""
        return self._service.latest_version(self._blob_id)

    def versions(self) -> list[int]:
        """All published versions (including the empty version 0)."""
        return self._service.versions(self._blob_id)

    # -------------------------------------------------------------------- cursor
    def tell(self) -> int:
        """Current cursor position."""
        return self._position

    def seek(self, offset: int, whence: int = io.SEEK_SET) -> int:
        """Move the cursor; supports the standard ``io`` whence values."""
        if whence == io.SEEK_SET:
            target = offset
        elif whence == io.SEEK_CUR:
            target = self._position + offset
        elif whence == io.SEEK_END:
            target = self.size + offset
        else:
            raise ValueError(f"unsupported whence value {whence!r}")
        if target < 0:
            raise InvalidRangeError("cannot seek before the start of the blob")
        self._position = target
        return self._position

    # ----------------------------------------------------------------------- I/O
    def read(self, size: int = -1, *, version: int | None = None) -> bytes:
        """Read ``size`` bytes at the cursor (all remaining bytes when negative)."""
        total = self._service.get_size(self._blob_id, version)
        if self._position >= total:
            return b""
        if size < 0:
            size = total - self._position
        size = min(size, total - self._position)
        data = self._service.read(
            self._blob_id, self._position, size, version=version
        )
        self._position += len(data)
        return data

    def pread(self, offset: int, size: int, *, version: int | None = None) -> bytes:
        """Positional read that does not move the cursor."""
        return self._service.read(self._blob_id, offset, size, version=version)

    def write(self, data: bytes) -> int:
        """Write at the cursor (must be page aligned); returns the new version."""
        version = self._service.write(self._blob_id, self._position, data)
        self._position += len(data)
        return version

    def append(self, data: bytes) -> int:
        """Append to the blob and move the cursor to the new end."""
        version = self._service.append(self._blob_id, data)
        self._position = self._service.get_size(self._blob_id)
        return version

    def readall(self, *, version: int | None = None) -> bytes:
        """Read the whole blob content of a version (cursor unchanged)."""
        return self._service.read_all(self._blob_id, version=version)

    def iter_pages(self, *, version: int | None = None) -> Iterator[bytes]:
        """Yield the blob's content page by page (useful for streaming)."""
        total = self._service.get_size(self._blob_id, version)
        page_size = self.page_size
        offset = 0
        while offset < total:
            chunk = min(page_size, total - offset)
            yield self._service.read(self._blob_id, offset, chunk, version=version)
            offset += chunk

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BlobHandle(blob_id={self._blob_id}, size={self.size}, "
            f"version={self.latest_version})"
        )
