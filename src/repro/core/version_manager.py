"""Version manager: version assignment and serialized publication.

The version manager is the only centralized entity of BlobSeer.  It hands
out *write tickets* — the version number and the byte range a write will
cover — and later *publishes* versions in the exact order the tickets were
assigned, which is how concurrent writers to the same blob are serialized
without ever blocking each other's data transfers:

1. A writer sends its pages to data providers (no coordination needed).
2. It asks the version manager for a ticket; tickets are assigned under a
   lock, so each writer gets a distinct version number, and appends get a
   distinct, contiguous offset computed from the *assigned* (not yet
   published) size of the blob.
3. It builds the metadata tree for its version and reports completion.
4. The version manager publishes versions strictly in ticket order, so a
   reader asking for "the latest version" always observes a prefix of the
   serialized history — never a half-published snapshot.

This module is purely control-plane: it never touches page data.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable

from .config import BlobSeerConfig
from .errors import (
    BlobNotFoundError,
    TicketError,
    VersionNotFoundError,
    VersionNotPublishedError,
    VersionRetiredError,
)
from .metadata import NodeKey, next_power_of_two

__all__ = ["WriteTicket", "VersionInfo", "BlobInfo", "VersionManager"]


@dataclass(frozen=True, slots=True)
class WriteTicket:
    """Permission to publish one write as version ``version`` of ``blob_id``.

    Attributes
    ----------
    blob_id, version:
        Identity of the snapshot that the write will become.
    offset, size:
        Byte range the write covers.  For appends the offset was computed
        by the version manager from the assigned size of the blob.
    base_version:
        Version whose metadata tree the new tree will be derived from (the
        most recently *assigned* version at ticket time).
    base_size:
        Size in bytes of the blob at ``base_version`` (assigned size).
    new_size:
        Size the blob will have once this version is published.
    is_append:
        Whether the ticket was issued for an append.
    """

    blob_id: int
    version: int
    offset: int
    size: int
    base_version: int
    base_size: int
    new_size: int
    is_append: bool


@dataclass(frozen=True, slots=True)
class VersionInfo:
    """Metadata of a published version."""

    blob_id: int
    version: int
    size: int
    root: NodeKey | None
    write_offset: int
    write_size: int
    is_append: bool


@dataclass(frozen=True, slots=True)
class BlobInfo:
    """Static properties of a blob, fixed at creation time."""

    blob_id: int
    page_size: int
    replication: int


@dataclass
class _VersionSlot:
    """Internal mutable record tracking one assigned version."""

    ticket: WriteTicket
    root: NodeKey | None = None
    ready: bool = False
    aborted: bool = False


@dataclass
class _BlobState:
    """Internal per-blob bookkeeping."""

    info: BlobInfo
    lock: threading.Condition = field(default_factory=threading.Condition)
    versions: dict[int, _VersionSlot] = field(default_factory=dict)
    next_version: int = 1
    assigned_size: int = 0
    assigned_version: int = 0
    published_version: int = 0
    published_sizes: dict[int, int] = field(default_factory=dict)
    published_roots: dict[int, NodeKey | None] = field(default_factory=dict)
    published_times: dict[int, float] = field(default_factory=dict)
    retired: set[int] = field(default_factory=set)


class VersionManager:
    """Centralized version assignment and ordered publication service."""

    def __init__(
        self,
        config: BlobSeerConfig | None = None,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._config = config or BlobSeerConfig()
        # The blob registry is striped: registration/removal of blob id B
        # contends only on stripe B % version_lock_stripes, and lookups are
        # lock-free (a GIL-atomic dict read), so the registry never
        # serialises writers of unrelated blobs the way the old global
        # lock did.  Per-blob ordering still lives in _BlobState.lock.
        stripes = max(1, self._config.version_lock_stripes)
        self._stripes: list[dict[int, _BlobState]] = [{} for _ in range(stripes)]
        self._stripe_locks = [threading.Lock() for _ in range(stripes)]
        self._blob_ids = itertools.count(1)
        #: Clock used to stamp publication times (injectable so retention
        #: TTL tests can run on a virtual clock).
        self._clock = clock
        self._delete_guards: list[Callable[[int], None]] = []

    # -- blob lifecycle -----------------------------------------------------------
    def create_blob(
        self,
        *,
        page_size: int | None = None,
        replication: int | None = None,
    ) -> BlobInfo:
        """Register a new empty blob and return its static description."""
        page_size = page_size if page_size is not None else self._config.page_size
        replication = (
            replication if replication is not None else self._config.replication
        )
        if page_size <= 0:
            raise ValueError("page_size must be positive")
        if replication < 1:
            raise ValueError("replication must be at least 1")
        # itertools.count is GIL-atomic: id allocation needs no lock.
        blob_id = next(self._blob_ids)
        info = BlobInfo(blob_id=blob_id, page_size=page_size, replication=replication)
        state = _BlobState(info=info)
        # Version 0 is the implicit empty snapshot.
        state.published_sizes[0] = 0
        state.published_roots[0] = None
        state.published_times[0] = self._clock()
        stripe = blob_id % len(self._stripes)
        with self._stripe_locks[stripe]:
            self._stripes[stripe][blob_id] = state
        return info

    def _state(self, blob_id: int) -> _BlobState:
        # Lock-free lookup: stripe dicts only ever gain/lose whole entries
        # under their stripe lock, and a single dict read is atomic.
        try:
            return self._stripes[blob_id % len(self._stripes)][blob_id]
        except (KeyError, TypeError):
            raise BlobNotFoundError(blob_id) from None

    def blob_info(self, blob_id: int) -> BlobInfo:
        """Return the static description of ``blob_id``."""
        return self._state(blob_id).info

    def blob_ids(self) -> list[int]:
        """Ids of every blob ever created (sorted)."""
        ids: list[int] = []
        for stripe, stripe_lock in zip(self._stripes, self._stripe_locks):
            with stripe_lock:
                ids.extend(stripe.keys())
        return sorted(ids)

    def add_delete_guard(self, guard: Callable[[int], None]) -> None:
        """Register a veto hook consulted before every :meth:`delete_blob`.

        Guards receive the blob id and raise to block the deletion — the
        pin registry installs one so a blob with active snapshot pins
        cannot be deleted out from under its readers.
        """
        self._delete_guards.append(guard)

    def delete_blob(self, blob_id: int) -> None:
        """Forget a blob entirely (its pages are left to garbage collection).

        Raises whatever a registered delete guard raises (for example
        :class:`~repro.core.errors.BlobPinnedError` when snapshot pins are
        still active) and leaves the blob intact in that case.
        """
        # Guards run outside the registry lock: they may consult other
        # subsystems (the pin registry) that take their own locks.
        self._state(blob_id)  # surface BlobNotFoundError first
        for guard in self._delete_guards:
            guard(blob_id)
        stripe = blob_id % len(self._stripes)
        with self._stripe_locks[stripe]:
            if blob_id not in self._stripes[stripe]:
                raise BlobNotFoundError(blob_id)
            del self._stripes[stripe][blob_id]

    # -- ticket assignment --------------------------------------------------------
    def assign_ticket(
        self,
        blob_id: int,
        *,
        offset: int | None,
        size: int,
        append: bool = False,
    ) -> WriteTicket:
        """Assign the next version number for a write or append.

        For appends, ``offset`` must be ``None``; the offset is the assigned
        size of the blob, so concurrent appenders receive disjoint,
        contiguous ranges.  For writes, ``offset`` is the caller-provided
        position (page alignment is enforced by the client, not here).
        """
        if size < 0:
            raise ValueError("write size cannot be negative")
        state = self._state(blob_id)
        with state.lock:
            if append:
                if offset is not None:
                    raise TicketError("append tickets do not accept an offset")
                offset = state.assigned_size
            else:
                if offset is None:
                    raise TicketError("write tickets require an offset")
                if offset < 0:
                    raise ValueError("offset cannot be negative")
            version = state.next_version
            state.next_version += 1
            base_version = state.assigned_version
            base_size = state.assigned_size
            new_size = max(base_size, offset + size)
            ticket = WriteTicket(
                blob_id=blob_id,
                version=version,
                offset=offset,
                size=size,
                base_version=base_version,
                base_size=base_size,
                new_size=new_size,
                is_append=append,
            )
            state.versions[version] = _VersionSlot(ticket=ticket)
            state.assigned_version = version
            state.assigned_size = new_size
            return ticket

    def assign_append_tickets(self, blob_id: int, sizes: Iterable[int]) -> list[WriteTicket]:
        """Assign one append ticket per entry of ``sizes`` under one lock hold.

        The tickets are contiguous in version *and* offset — exactly what a
        batched writer needs: the whole batch reserves one contiguous byte
        range, and group-commit can later publish it in one critical
        section (:meth:`publish_batch`).
        """
        sizes = list(sizes)
        if any(size < 0 for size in sizes):
            raise ValueError("write size cannot be negative")
        state = self._state(blob_id)
        tickets: list[WriteTicket] = []
        with state.lock:
            for size in sizes:
                offset = state.assigned_size
                version = state.next_version
                state.next_version += 1
                ticket = WriteTicket(
                    blob_id=blob_id,
                    version=version,
                    offset=offset,
                    size=size,
                    base_version=state.assigned_version,
                    base_size=state.assigned_size,
                    new_size=offset + size,
                    is_append=True,
                )
                state.versions[version] = _VersionSlot(ticket=ticket)
                state.assigned_version = version
                state.assigned_size = ticket.new_size
                tickets.append(ticket)
        return tickets

    # -- publication --------------------------------------------------------------
    def publish(self, ticket: WriteTicket, root: NodeKey | None) -> int:
        """Mark ``ticket``'s version as complete and publish it when its turn comes.

        Returns the highest published version after this call (which may be
        lower than the ticket's version if earlier writers have not yet
        published).
        """
        state = self._state(ticket.blob_id)
        with state.lock:
            slot = state.versions.get(ticket.version)
            if slot is None or slot.ticket != ticket:
                raise TicketError(
                    f"ticket for version {ticket.version} of blob "
                    f"{ticket.blob_id} was never assigned"
                )
            if slot.ready:
                raise TicketError(
                    f"version {ticket.version} of blob {ticket.blob_id} "
                    "was already published"
                )
            slot.root = root
            slot.ready = True
            self._advance(state)
            state.lock.notify_all()
            return state.published_version

    def publish_batch(
        self, publications: Iterable[tuple[WriteTicket, NodeKey | None]]
    ) -> dict[int, int]:
        """Group-commit: publish many completed writes in one critical section per blob.

        Tickets are grouped by blob; each blob's group is validated, marked
        ready, advanced and its waiters notified under a *single* lock
        acquisition — N publishes cost one lock round-trip and one
        ``notify_all`` instead of N.  Validation runs before any slot in
        the group is touched, so a bad ticket (never assigned, already
        published, duplicated in the batch) raises :class:`TicketError`
        and leaves that blob's whole group unpublished.

        Returns a map of blob id to its highest published version after
        the flush.
        """
        by_blob: dict[int, list[tuple[WriteTicket, NodeKey | None]]] = {}
        for ticket, root in publications:
            by_blob.setdefault(ticket.blob_id, []).append((ticket, root))
        heads: dict[int, int] = {}
        for blob_id, group in by_blob.items():
            state = self._state(blob_id)
            with state.lock:
                seen: set[int] = set()
                for ticket, _root in group:
                    slot = state.versions.get(ticket.version)
                    if slot is None or slot.ticket != ticket:
                        raise TicketError(
                            f"ticket for version {ticket.version} of blob "
                            f"{blob_id} was never assigned"
                        )
                    if slot.ready or ticket.version in seen:
                        raise TicketError(
                            f"version {ticket.version} of blob {blob_id} "
                            "was already published"
                        )
                    seen.add(ticket.version)
                for ticket, root in group:
                    slot = state.versions[ticket.version]
                    slot.root = root
                    slot.ready = True
                self._advance(state)
                state.lock.notify_all()
                heads[blob_id] = state.published_version
        return heads

    def abort(self, ticket: WriteTicket) -> None:
        """Abandon a ticket so later versions are not blocked forever.

        The aborted version becomes an empty snapshot identical to the one
        before it (same root, same size *as assigned at ticket time for its
        base*), except that its nominal size still accounts for the range
        the ticket reserved — holes a future read of that range will surface
        as missing pages.
        """
        state = self._state(ticket.blob_id)
        with state.lock:
            slot = state.versions.get(ticket.version)
            if slot is None or slot.ticket != ticket:
                raise TicketError(
                    f"ticket for version {ticket.version} of blob "
                    f"{ticket.blob_id} was never assigned"
                )
            if slot.ready:
                raise TicketError("cannot abort a published version")
            slot.aborted = True
            slot.ready = True
            self._advance(state)
            state.lock.notify_all()

    def _advance(self, state: _BlobState) -> None:
        """Publish every consecutive ready version following the current head."""
        while True:
            nxt = state.published_version + 1
            slot = state.versions.get(nxt)
            if slot is None or not slot.ready:
                break
            if slot.aborted:
                # An aborted version exposes the same content as its
                # predecessor: reuse the previous published root and size.
                prev = state.published_version
                state.published_roots[nxt] = state.published_roots.get(prev)
                state.published_sizes[nxt] = state.published_sizes.get(prev, 0)
            else:
                state.published_roots[nxt] = slot.root
                state.published_sizes[nxt] = slot.ticket.new_size
            state.published_times[nxt] = self._clock()
            state.published_version = nxt

    def wait_for_publication(
        self, blob_id: int, version: int, *, timeout: float | None = None
    ) -> bool:
        """Block until ``version`` is published (or the timeout expires)."""
        state = self._state(blob_id)
        with state.lock:
            return state.lock.wait_for(
                lambda: state.published_version >= version, timeout=timeout
            )

    # -- queries ------------------------------------------------------------------
    def latest_version(self, blob_id: int) -> int:
        """Highest published version number (0 for an empty blob)."""
        state = self._state(blob_id)
        with state.lock:
            return state.published_version

    def latest_assigned_version(self, blob_id: int) -> int:
        """Highest version number ever assigned (published or not)."""
        state = self._state(blob_id)
        with state.lock:
            return state.assigned_version

    def version_info(self, blob_id: int, version: int | None = None) -> VersionInfo:
        """Return the metadata of a published version (default: the latest)."""
        state = self._state(blob_id)
        with state.lock:
            if version is None:
                version = state.published_version
            if version < 0 or version > state.assigned_version:
                raise VersionNotFoundError(blob_id, version)
            if version > state.published_version:
                raise VersionNotPublishedError(blob_id, version)
            if version in state.retired:
                raise VersionRetiredError(blob_id, version)
            if version == 0:
                return VersionInfo(
                    blob_id=blob_id,
                    version=0,
                    size=0,
                    root=None,
                    write_offset=0,
                    write_size=0,
                    is_append=False,
                )
            slot = state.versions[version]
            return VersionInfo(
                blob_id=blob_id,
                version=version,
                size=state.published_sizes[version],
                root=state.published_roots[version],
                write_offset=slot.ticket.offset,
                write_size=slot.ticket.size,
                is_append=slot.ticket.is_append,
            )

    def published_versions(self, blob_id: int) -> list[int]:
        """Live published version numbers (version 0 included, retired excluded)."""
        state = self._state(blob_id)
        with state.lock:
            return [
                v
                for v in range(0, state.published_version + 1)
                if v not in state.retired
            ]

    def publication_times(self, blob_id: int) -> dict[int, float]:
        """Map live published version -> publication timestamp (manager clock)."""
        state = self._state(blob_id)
        with state.lock:
            return {
                v: t
                for v, t in state.published_times.items()
                if v not in state.retired
            }

    def inflight_floor(self, blob_id: int) -> int | None:
        """Lowest base version any in-flight (unpublished) writer depends on.

        Writers merge boundary pages by reading their ticket's base version,
        so the garbage collector must not reclaim any version at or above
        this floor.  ``None`` means no writer is in flight.
        """
        state = self._state(blob_id)
        with state.lock:
            bases = [
                slot.ticket.base_version
                for slot in state.versions.values()
                if not slot.ready
            ]
            return min(bases) if bases else None

    def retire_versions(self, blob_id: int, versions: Iterable[int]) -> list[int]:
        """Drop published versions from the catalogue (GC's final step).

        Only strictly-old snapshots may retire: never version 0 (the empty
        snapshot every blob shares), never the latest published version, and
        never a version that was not published.  Returns the versions
        actually retired (already-retired ones are skipped silently so GC
        runs are idempotent).
        """
        return self.retire_batch([(blob_id, versions)]).get(blob_id, [])

    def retire_batch(
        self, requests: Iterable[tuple[int, Iterable[int]]]
    ) -> dict[int, list[int]]:
        """Retire versions of many blobs, one critical section per blob.

        The group-commit counterpart of :meth:`retire_versions` for the GC
        sweep phase: all of a blob's retirements (requests for the same
        blob are merged) apply under a single lock hold.  Returns a map of
        blob id to the versions actually retired there.
        """
        by_blob: dict[int, set[int]] = {}
        for blob_id, versions in requests:
            by_blob.setdefault(blob_id, set()).update(versions)
        result: dict[int, list[int]] = {}
        for blob_id, wanted in by_blob.items():
            state = self._state(blob_id)
            retired: list[int] = []
            with state.lock:
                for version in sorted(wanted):
                    if version in state.retired:
                        continue
                    if version <= 0:
                        raise ValueError(
                            "version 0 (the empty snapshot) cannot retire"
                        )
                    if version > state.published_version:
                        raise VersionNotPublishedError(blob_id, version)
                    if version == state.published_version:
                        raise ValueError(
                            f"cannot retire the latest published version {version} "
                            f"of blob {blob_id}"
                        )
                    state.retired.add(version)
                    state.published_roots.pop(version, None)
                    state.published_sizes.pop(version, None)
                    state.published_times.pop(version, None)
                    # The write ticket's slot is no longer needed: the version
                    # published long ago and _advance never revisits it.
                    state.versions.pop(version, None)
                    retired.append(version)
            result[blob_id] = retired
        return result

    def size(self, blob_id: int, version: int | None = None) -> int:
        """Size in bytes of a published version (default: the latest)."""
        return self.version_info(blob_id, version).size

    def capacity_pages(self, blob_id: int, version: int | None = None) -> int:
        """Page capacity (power of two) of a published version's tree."""
        info = self.version_info(blob_id, version)
        page_size = self.blob_info(blob_id).page_size
        total_pages = (info.size + page_size - 1) // page_size
        return next_power_of_two(total_pages) if total_pages else 1

    def pending_versions(self, blob_id: int) -> list[int]:
        """Versions assigned but not yet published (writers in flight)."""
        state = self._state(blob_id)
        with state.lock:
            return [
                v
                for v in range(state.published_version + 1, state.assigned_version + 1)
                if v in state.versions and not state.versions[v].ready
            ]

    # -- bulk helpers -------------------------------------------------------------
    def snapshot_roots(self, blob_id: int) -> dict[int, NodeKey | None]:
        """Map published version -> metadata root (for GC and debugging)."""
        state = self._state(blob_id)
        with state.lock:
            return dict(state.published_roots)

    def describe(self, blob_ids: Iterable[int] | None = None) -> dict[int, dict]:
        """JSON-friendly description of blob states (monitoring helper)."""
        ids = list(blob_ids) if blob_ids is not None else self.blob_ids()
        result: dict[int, dict] = {}
        for blob_id in ids:
            state = self._state(blob_id)
            with state.lock:
                result[blob_id] = {
                    "page_size": state.info.page_size,
                    "replication": state.info.replication,
                    "published_version": state.published_version,
                    "assigned_version": state.assigned_version,
                    "size": state.published_sizes.get(state.published_version, 0),
                    "live_versions": len(state.published_roots),
                    "retired_versions": len(state.retired),
                }
        return result
