"""HDFS-like baseline file system (the paper's comparison system)."""

from .block_placement import (
    BlockPlacementPolicy,
    DefaultPlacementPolicy,
    RandomPlacementPolicy,
    make_placement_policy,
)
from .datanode import DataNode, DataNodeStats
from .filesystem import DEFAULT_BLOCK_SIZE, HDFS, HDFSInputStream, HDFSOutputStream
from .namenode import BlockMeta, HDFSFilePayload, NameNode

__all__ = [
    "HDFS",
    "DEFAULT_BLOCK_SIZE",
    "NameNode",
    "DataNode",
    "DataNodeStats",
    "BlockMeta",
    "HDFSFilePayload",
    "HDFSInputStream",
    "HDFSOutputStream",
    "BlockPlacementPolicy",
    "DefaultPlacementPolicy",
    "RandomPlacementPolicy",
    "make_placement_policy",
]
