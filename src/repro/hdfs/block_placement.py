"""HDFS block placement policy, exactly as the paper describes it.

    "HDFS employs a different policy when allocating chunks to datanodes;
    the first replica of a chunk is always written locally; for fault
    tolerance, the second replica is stored on a datanode in the same rack
    as the first replica, and the third copy is sent to a datanode
    belonging to a different rack (randomly chosen)."

This policy is the crux of the paper's explanation for why HDFS throughput
degrades under heavy concurrency relative to BSFS: a single writer's blocks
concentrate on its local datanode (making that node a hotspot for later
concurrent readers of the same file), and concurrent writers each hammer
their own local disk instead of striping across the cluster.  The policy is
reused verbatim by the cluster simulator so the simulated curves reflect
the real algorithm.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Sequence

from ..core.errors import AllocationError
from .datanode import DataNode

__all__ = [
    "BlockPlacementPolicy",
    "DefaultPlacementPolicy",
    "RandomPlacementPolicy",
    "make_placement_policy",
]


class BlockPlacementPolicy(ABC):
    """Strategy choosing the datanodes that will store one block's replicas."""

    @abstractmethod
    def choose_targets(
        self,
        datanodes: Sequence[DataNode],
        replication: int,
        *,
        writer_host: str | None = None,
    ) -> list[DataNode]:
        """Return ``replication`` distinct datanodes for one new block."""


class DefaultPlacementPolicy(BlockPlacementPolicy):
    """The rack-aware policy quoted above (local, same rack, remote rack)."""

    def __init__(self, *, seed: int = 0) -> None:
        self._rng = random.Random(seed)

    def choose_targets(
        self,
        datanodes: Sequence[DataNode],
        replication: int,
        *,
        writer_host: str | None = None,
    ) -> list[DataNode]:
        live = [d for d in datanodes if d.available]
        if replication < 1:
            raise AllocationError("replication must be at least 1")
        if replication > len(live):
            raise AllocationError(
                f"replication {replication} exceeds live datanodes ({len(live)})"
            )
        chosen: list[DataNode] = []

        def remaining() -> list[DataNode]:
            return [d for d in live if d not in chosen]

        # Replica 1: the writer's local datanode when it runs on one.
        local = [d for d in live if writer_host is not None and d.host == writer_host]
        first = local[0] if local else self._rng.choice(live)
        chosen.append(first)

        # Replica 2: a different datanode in the same rack as the first.
        if len(chosen) < replication:
            same_rack = [d for d in remaining() if d.rack == first.rack]
            pool = same_rack if same_rack else remaining()
            chosen.append(self._rng.choice(pool))

        # Replica 3: a datanode in a different rack, randomly chosen.
        if len(chosen) < replication:
            other_rack = [d for d in remaining() if d.rack != first.rack]
            pool = other_rack if other_rack else remaining()
            chosen.append(self._rng.choice(pool))

        # Additional replicas (replication > 3): random remaining nodes.
        while len(chosen) < replication:
            chosen.append(self._rng.choice(remaining()))
        return chosen


class RandomPlacementPolicy(BlockPlacementPolicy):
    """Uniformly random placement (ablation baseline, ignores racks and locality)."""

    def __init__(self, *, seed: int = 0) -> None:
        self._rng = random.Random(seed)

    def choose_targets(
        self,
        datanodes: Sequence[DataNode],
        replication: int,
        *,
        writer_host: str | None = None,
    ) -> list[DataNode]:
        live = [d for d in datanodes if d.available]
        if replication > len(live):
            raise AllocationError(
                f"replication {replication} exceeds live datanodes ({len(live)})"
            )
        return self._rng.sample(live, replication)


_POLICIES = {
    "default": DefaultPlacementPolicy,
    "random": RandomPlacementPolicy,
}


def make_placement_policy(name: str, *, seed: int = 0) -> BlockPlacementPolicy:
    """Instantiate a placement policy by name (``"default"`` or ``"random"``)."""
    try:
        factory = _POLICIES[name]
    except KeyError:
        raise AllocationError(f"unknown placement policy {name!r}") from None
    return factory(seed=seed)
