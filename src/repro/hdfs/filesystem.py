"""HDFS baseline file system: write-once blocks, pipeline replication.

The comparison system of the paper.  Semantics reproduced from the paper's
description of HDFS:

* files are split into large blocks (64 MB by default) stored on datanodes;
* block replicas are placed by the rack-aware policy of
  :mod:`repro.hdfs.block_placement` (first replica written *locally*);
* a file has a single writer and, once written and closed, "the data cannot
  be overwritten or appended to" — :meth:`HDFS.append` therefore raises
  :class:`~repro.fs.errors.UnsupportedOperationError`, which is precisely
  the capability gap BSFS fills;
* readers fetch each block from the closest replica (same host, then same
  rack, then any), mirroring Hadoop's topology-aware replica selection.
"""

from __future__ import annotations

import itertools
import random
import sys
import threading
from functools import partial

from ..core.errors import ProviderUnavailableError
from ..core.transfer import ChunkBuffer, TransferEngine, pipelined
from ..fs import path as fspath
from ..fs.errors import NoSuchPathError, UnsupportedOperationError
from ..fs.interface import BlockLocation, FileStatus, FileSystem, InputStream, OutputStream
from ..fs.quota import QuotaManager
from .block_placement import BlockPlacementPolicy
from .datanode import DataNode
from .namenode import NameNode

__all__ = ["HDFS", "HDFSOutputStream", "HDFSInputStream"]

#: Default HDFS block size (the paper: "Hadoop often makes use of data in 64 MB chunks").
DEFAULT_BLOCK_SIZE = 64 * 1024 * 1024


class HDFSOutputStream(OutputStream):
    """Single-writer output stream writing full blocks through a replication pipeline."""

    def __init__(
        self,
        fs: "HDFS",
        path: str,
        *,
        block_size: int,
        lease_holder: str,
        client_host: str | None,
    ) -> None:
        super().__init__()
        self._fs = fs
        self._path = path
        self._block_size = block_size
        self._lease_holder = lease_holder
        self._client_host = client_host
        # Chunk list + running length: the old ``bytearray += data`` /
        # ``del buffer[:block_size]`` made many small writes into a 64 MB
        # block quadratic in the buffered size.
        self._buffer = ChunkBuffer()

    def _write(self, data: bytes) -> None:
        self._buffer.append(data)
        while len(self._buffer) >= self._block_size:
            block = self._buffer.take(self._block_size)
            self._fs._write_block(self._path, block, self._client_host)

    def flush(self) -> None:
        """HDFS only makes data visible per completed block; flush is a no-op."""

    def _close(self) -> None:
        if len(self._buffer):
            self._fs._write_block(
                self._path, self._buffer.take_all(), self._client_host
            )
        self._fs.namenode.complete_file(self._path, self._lease_holder)


class HDFSInputStream(InputStream):
    """Reader choosing, per block, the closest live replica."""

    def __init__(
        self,
        fs: "HDFS",
        path: str,
        *,
        client_host: str | None,
        size: int | None = None,
    ) -> None:
        status = fs.namenode.status(path)
        super().__init__(status.size if size is None else min(size, status.size))
        self._fs = fs
        self._path = path
        self._client_host = client_host
        # Snapshot the block list at open time (files are immutable once sealed).
        self._blocks = fs.namenode.file_blocks(path)

    def _pread(self, offset: int, size: int) -> bytes:
        result = bytearray()
        position = 0
        remaining_start = offset
        end = offset + size
        for meta in self._blocks:
            block_start = position
            block_end = position + meta.length
            position = block_end
            if block_end <= remaining_start or block_start >= end:
                continue
            read_start = max(remaining_start, block_start) - block_start
            read_end = min(end, block_end) - block_start
            chunk = self._fs._read_block(
                meta, read_start, read_end - read_start, self._client_host
            )
            result += chunk
        return bytes(result)


class HDFS(FileSystem):
    """The HDFS-like baseline implementing the shared FileSystem API."""

    scheme = "hdfs"

    def __init__(
        self,
        *,
        num_datanodes: int = 16,
        datanodes: list[DataNode] | None = None,
        racks: int = 4,
        default_block_size: int = DEFAULT_BLOCK_SIZE,
        default_replication: int = 1,
        placement_policy: BlockPlacementPolicy | None = None,
        seed: int = 0,
        transfer_workers: int = 8,
        quotas: QuotaManager | None = None,
    ) -> None:
        """Create an in-process HDFS deployment.

        ``datanodes`` may be supplied explicitly (e.g. to control hosts and
        racks); otherwise ``num_datanodes`` nodes are created and spread
        round-robin over ``racks`` racks.  ``transfer_workers`` sizes the
        transfer engine that pipelines block replication and read-ahead.
        """
        if datanodes is None:
            datanodes = [
                DataNode(i, host=f"node-{i}", rack=f"rack-{i % max(racks, 1)}")
                for i in range(num_datanodes)
            ]
        self.namenode = NameNode(
            datanodes,
            placement_policy=placement_policy,
            default_block_size=default_block_size,
            default_replication=default_replication,
            quotas=quotas,
        )
        self.quotas = quotas
        #: Shared transfer engine: replica pushes of one block run
        #: concurrently (the write pipeline) and streaming reads prefetch
        #: ahead of the consumer.
        self.transfer = TransferEngine(transfer_workers, name="hdfs-io")
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._client_ids = itertools.count(1)

    # -- helpers --------------------------------------------------------------------
    @property
    def datanodes(self) -> list[DataNode]:
        """The deployment's datanodes."""
        return self.namenode.datanodes

    @property
    def default_block_size(self) -> int:
        """Block size applied to files created without an explicit one."""
        return self.namenode.default_block_size

    def _next_client(self, client_host: str | None) -> str:
        with self._lock:
            return f"{client_host or 'client'}-{next(self._client_ids)}"

    # -- write path -----------------------------------------------------------------
    def create(
        self,
        path: str,
        *,
        overwrite: bool = False,
        block_size: int | None = None,
        replication: int | None = None,
        client_host: str | None = None,
    ) -> HDFSOutputStream:
        """Create a file for writing (single writer, sealed at close)."""
        norm = fspath.normalize(path)
        holder = self._next_client(client_host)

        def _release_overwritten(entry) -> None:
            for block_id in entry.payload.block_ids:
                try:
                    meta = self.namenode.block_meta(block_id)
                except KeyError:
                    continue
                for node_id in meta.locations:
                    node = self.namenode.datanode(node_id)
                    if node.available:
                        node.delete_block(block_id)

        entry = self.namenode.create_file(
            norm,
            block_size=block_size,
            replication=replication,
            overwrite=overwrite,
            lease_holder=holder,
            on_overwrite=_release_overwritten,
        )
        return HDFSOutputStream(
            self,
            norm,
            block_size=entry.block_size,
            lease_holder=holder,
            client_host=client_host,
        )

    def _write_block(self, path: str, data: bytes, client_host: str | None) -> None:
        """Allocate a block and push it through the replication pipeline.

        The real HDFS pipeline forwards packets from replica to replica so
        all datanodes receive the block at (almost) the same time; the
        functional equivalent here is pushing the block to every chosen
        datanode *concurrently* through the transfer engine, instead of
        one full block transfer after the other.
        """
        meta, targets = self.namenode.add_block(path, writer_host=client_host)

        def push(datanode: DataNode) -> int | None:
            try:
                datanode.write_block(meta.block_id, data)
            except ProviderUnavailableError:
                return None
            return datanode.node_id

        if len(targets) > 1:
            outcomes = self.transfer.map(push, targets)
        else:
            outcomes = [push(datanode) for datanode in targets]
        written = [node_id for node_id in outcomes if node_id is not None]
        if not written:
            raise ProviderUnavailableError(
                f"no datanode accepted block {meta.block_id} of {path!r}"
            )
        self.namenode.commit_block(
            path, meta.block_id, length=len(data), locations=written
        )

    # -- read path -------------------------------------------------------------------
    def open(
        self,
        path: str,
        *,
        version: int | None = None,
        client_host: str | None = None,
    ) -> HDFSInputStream:
        """Open a file for reading.

        HDFS files are written once and sealed — there is nothing a later
        writer could change, so snapshot versioning is the documented
        no-op passthrough: ``version`` is the file-size token of the base
        :meth:`~repro.fs.interface.FileSystem.snapshot` and merely bounds
        the readable range (a sealed file's bytes are already immutable).
        """
        bare, version = self._resolve_read_target(path, version)
        norm = fspath.normalize(bare)
        if not self.namenode.tree.exists(norm):
            raise NoSuchPathError(norm)
        size = None if version is None else self.snapshot_size(norm, version)
        return HDFSInputStream(self, norm, client_host=client_host, size=size)

    def open_read(
        self,
        path: str,
        *,
        offset: int = 0,
        length: int | None = None,
        chunk_size: int = 1024 * 1024,
        version: int | None = None,
        client_host: str | None = None,
        read_ahead: int = 4,
    ):
        """Stream a byte range as block chunks with concurrent read-ahead.

        Chunks are fetched through the transfer engine up to ``read_ahead``
        ahead of the consumer, so datanode latency overlaps with
        processing; every chunk keeps the per-chunk replica failover of
        :meth:`_read_block`.  ``version`` bounds the stream at the
        snapshot's size token (see :meth:`open`).
        """
        self._validate_stream_range(offset, length, chunk_size)
        bare, version = self._resolve_read_target(path, version)
        norm = fspath.normalize(bare)
        if not self.namenode.tree.exists(norm):
            raise NoSuchPathError(norm)
        status = self.namenode.status(norm)
        blocks = self.namenode.file_blocks(norm)
        size = self.snapshot_size(norm, version)
        end = size if length is None else min(offset + length, size)
        if offset >= end:
            return iter(())

        def fetch_chunk(meta, chunk_offset: int, size: int) -> memoryview:
            return memoryview(
                self._read_block(meta, chunk_offset, size, client_host)
            )

        def thunks():
            position = 0
            for meta in blocks:
                block_start, block_end = position, position + meta.length
                position = block_end
                if block_end <= offset or block_start >= end:
                    continue
                lo = max(offset, block_start) - block_start
                hi = min(end, block_end) - block_start
                chunk_offset = lo
                while chunk_offset < hi:
                    size = min(chunk_size, hi - chunk_offset)
                    yield partial(fetch_chunk, meta, chunk_offset, size)
                    chunk_offset += size

        return pipelined(thunks(), self.transfer, depth=read_ahead)

    def _read_block(
        self, meta, offset: int, length: int, client_host: str | None
    ) -> bytes:
        """Read part of a block, failing over across replicas.

        Replicas are tried in topology order (same host, same rack, any);
        a replica that fails *between* the liveness check and the read —
        e.g. a datanode killed mid-job by failure injection — no longer
        fails the whole read: the next replica is re-read instead, exactly
        like the Hadoop client's block-read retry.
        """
        replicas = [self.namenode.datanode(node_id) for node_id in meta.locations]
        client_rack = None
        for node in self.datanodes:
            if client_host is not None and node.host == client_host:
                client_rack = node.rack
                break

        def load(node: DataNode) -> int:
            # Over a remote stub the stats call itself can fail when the
            # node process is gone; sort such replicas last instead of
            # failing the read before the failover loop gets a chance.
            try:
                return node.stats().blocks_read
            except ProviderUnavailableError:
                return sys.maxsize

        def distance(node: DataNode) -> tuple[int, int]:
            if client_host is not None and node.host == client_host:
                return (0, load(node))
            if client_rack is not None and node.rack == client_rack:
                return (1, load(node))
            return (2, load(node))

        for node in sorted(replicas, key=distance):
            if not node.available:
                continue
            try:
                return node.read_block(meta.block_id, offset, length)
            except (ProviderUnavailableError, KeyError):
                continue
        raise ProviderUnavailableError(
            f"all replicas of block {meta.block_id} are unavailable"
        )

    # -- unsupported operations --------------------------------------------------------
    def append(self, path: str, *, client_host: str | None = None) -> OutputStream:
        """HDFS (as described in the paper) does not support append."""
        raise UnsupportedOperationError(
            "HDFS does not support appending to an existing file"
        )

    # -- namespace ----------------------------------------------------------------------
    def mkdirs(self, path: str) -> None:
        self.namenode.tree.mkdirs(path)

    def delete(self, path: str, *, recursive: bool = False) -> None:
        self.namenode.delete(path, recursive=recursive)

    def rename(self, src: str, dst: str) -> None:
        self.namenode.tree.rename(src, dst)

    def exists(self, path: str) -> bool:
        return self.namenode.tree.exists(path)

    def status(self, path: str) -> FileStatus:
        if not self.exists(path):
            raise NoSuchPathError(fspath.normalize(path))
        return self.namenode.status(path)

    def list_dir(self, path: str) -> list[FileStatus]:
        return self.namenode.list_status(path)

    def block_locations(
        self, path: str, offset: int = 0, length: int | None = None
    ) -> list[BlockLocation]:
        return self.namenode.block_locations(path, offset, length)

    # -- lifecycle ---------------------------------------------------------------------
    def close(self) -> None:
        """Shut the transfer engine's worker pool down (idempotent).

        Long-lived processes that build many deployments (test suites,
        benchmark sweeps) should close retired instances so their pool
        threads are joined instead of lingering until interpreter exit.
        """
        self.transfer.close()

    def __enter__(self) -> "HDFS":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- monitoring ------------------------------------------------------------------------
    def stats(self) -> dict:
        """Aggregate statistics (namenode report plus scheme tag)."""
        report = self.namenode.report()
        report["scheme"] = self.scheme
        return report
