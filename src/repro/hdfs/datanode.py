"""HDFS datanodes: block storage servers of the baseline file system.

The paper's comparison system is HDFS, whose "servers called datanodes are
responsible for storing data".  A :class:`DataNode` stores whole blocks
(64 MB by default in the paper's setup) and keeps the counters the
benchmarks and the placement policy rely on.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from ..core.errors import ProviderUnavailableError

__all__ = ["DataNodeStats", "DataNode"]


@dataclass(frozen=True, slots=True)
class DataNodeStats:
    """Immutable snapshot of a datanode's counters."""

    node_id: int
    host: str
    rack: str
    blocks_stored: int
    bytes_stored: int
    blocks_written: int
    blocks_read: int
    bytes_written: int
    bytes_read: int
    available: bool


class DataNode:
    """One HDFS storage server, holding whole blocks."""

    def __init__(self, node_id: int, *, host: str | None = None, rack: str | None = None) -> None:
        self.node_id = node_id
        self.host = host if host is not None else f"datanode-{node_id}"
        self.rack = rack if rack is not None else f"rack-{node_id % 8}"
        self._blocks: dict[int, bytes] = {}
        self._lock = threading.Lock()
        self._available = True
        self._blocks_written = 0
        self._blocks_read = 0
        self._bytes_written = 0
        self._bytes_read = 0

    # -- availability -------------------------------------------------------------
    @property
    def available(self) -> bool:
        """Whether the datanode currently serves requests."""
        return self._available

    def fail(self) -> None:
        """Simulate a datanode crash."""
        with self._lock:
            self._available = False

    def recover(self) -> None:
        """Bring a failed datanode back (its blocks survive)."""
        with self._lock:
            self._available = True

    def _check(self) -> None:
        if not self._available:
            raise ProviderUnavailableError(f"datanode-{self.node_id}")

    # -- block I/O ----------------------------------------------------------------
    def write_block(self, block_id: int, data: bytes) -> None:
        """Store one block replica."""
        with self._lock:
            self._check()
            self._blocks[block_id] = data
            self._blocks_written += 1
            self._bytes_written += len(data)

    def read_block(self, block_id: int, offset: int = 0, length: int | None = None) -> bytes:
        """Read (part of) a block replica.

        The byte copy happens *outside* the node lock (blocks are immutable
        once stored, so the reference grabbed under the lock stays valid):
        with the transfer engine issuing many concurrent chunk reads
        against one node, serialising every multi-megabyte slice on the
        lock would defeat the parallel read path.
        """
        with self._lock:
            self._check()
            data = self._blocks[block_id]
        if length is None:
            length = len(data) - offset
        chunk = data[offset : offset + length]
        with self._lock:
            self._blocks_read += 1
            self._bytes_read += len(chunk)
        return chunk

    def has_block(self, block_id: int) -> bool:
        """Whether the datanode stores a replica of ``block_id``."""
        with self._lock:
            return self._available and block_id in self._blocks

    def delete_block(self, block_id: int) -> None:
        """Drop a block replica (no error if absent, mirroring HDFS)."""
        with self._lock:
            self._check()
            self._blocks.pop(block_id, None)

    def block_ids(self) -> list[int]:
        """Ids of the blocks stored on this datanode."""
        with self._lock:
            return list(self._blocks.keys())

    # -- statistics ---------------------------------------------------------------
    def stats(self) -> DataNodeStats:
        """Consistent snapshot of the datanode's counters."""
        with self._lock:
            return DataNodeStats(
                node_id=self.node_id,
                host=self.host,
                rack=self.rack,
                blocks_stored=len(self._blocks),
                bytes_stored=sum(len(b) for b in self._blocks.values()),
                blocks_written=self._blocks_written,
                blocks_read=self._blocks_read,
                bytes_written=self._bytes_written,
                bytes_read=self._bytes_read,
                available=self._available,
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DataNode(id={self.node_id}, host={self.host!r}, rack={self.rack!r}, "
            f"blocks={len(self._blocks)})"
        )
