"""HDFS namenode: namespace, block map and block allocation.

"The namenode takes care of the file system namespace and the data
location."  This module reproduces that role for the baseline: it owns the
directory tree (built on the shared :class:`~repro.fs.namespace.NamespaceTree`),
maps every file to an ordered list of blocks, maps every block to the
datanodes holding its replicas, and enforces HDFS's write-once,
single-writer semantics (no appends, no overwrites of closed files).
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field

from ..fs import path as fspath
from ..fs.errors import InvalidRangeError, NoSuchPathError, UnsupportedOperationError
from ..fs.interface import BlockLocation, FileStatus
from ..fs.namespace import DirectoryEntry, FileEntry, NamespaceTree
from ..fs.quota import QuotaManager
from ..fs.sharded import ShardedNamespaceTree, make_namespace_tree
from .block_placement import BlockPlacementPolicy, DefaultPlacementPolicy
from .datanode import DataNode

__all__ = ["BlockMeta", "HDFSFilePayload", "NameNode"]


@dataclass
class BlockMeta:
    """Metadata of one HDFS block: replica locations and length."""

    block_id: int
    length: int = 0
    locations: tuple[int, ...] = ()


@dataclass
class HDFSFilePayload:
    """Per-file payload stored in the namespace: the ordered block list."""

    block_ids: list[int] = field(default_factory=list)
    sealed: bool = False


class NameNode:
    """Centralized metadata server of the HDFS baseline."""

    def __init__(
        self,
        datanodes: list[DataNode],
        *,
        placement_policy: BlockPlacementPolicy | None = None,
        default_block_size: int = 64 * 1024 * 1024,
        default_replication: int = 1,
        namespace_shards: int = 4,
        quotas: QuotaManager | None = None,
    ) -> None:
        self._tree: NamespaceTree[HDFSFilePayload] | ShardedNamespaceTree[
            HDFSFilePayload
        ] = make_namespace_tree(namespace_shards)
        self._tree.set_quota_manager(quotas)
        self.quotas = quotas
        self._datanodes: dict[int, DataNode] = {d.node_id: d for d in datanodes}
        self._blocks: dict[int, BlockMeta] = {}
        self._block_ids = itertools.count(1)
        self._policy = placement_policy or DefaultPlacementPolicy()
        self._lock = threading.Lock()
        self.default_block_size = default_block_size
        self.default_replication = default_replication

    # -- cluster membership ----------------------------------------------------------
    @property
    def datanodes(self) -> list[DataNode]:
        """The datanodes registered with this namenode."""
        return list(self._datanodes.values())

    def datanode(self, node_id: int) -> DataNode:
        """Look up a datanode by id."""
        return self._datanodes[node_id]

    def register_datanode(self, datanode: DataNode) -> None:
        """Add a datanode to the cluster (re-registration replaces the
        stale entry, so a restarted node process never double-counts)."""
        with self._lock:
            self._datanodes[datanode.node_id] = datanode

    def deregister_datanode(self, node_id: int) -> DataNode | None:
        """Drop a datanode from the cluster (idempotent).

        Called on clean shutdown and by failure detection; a node that is
        already gone is not an error.  Block metadata keeps the node id in
        ``locations`` until :meth:`handle_dead_datanode` re-replicates —
        readers skip unknown ids (see :meth:`block_locations`).
        """
        with self._lock:
            return self._datanodes.pop(node_id, None)

    def apply_block_report(self, node_id: int, block_ids: list[int]) -> dict:
        """Reconcile the block map with a datanode's full report.

        Mirrors HDFS block reports: the datanode's word is authoritative
        for what *it* stores.  Blocks the namenode thought the node held
        but the report omits are removed from their locations; reported
        blocks the namenode tracks but did not map to the node are added.
        Unknown block ids (e.g. of deleted files) are ignored.  Returns
        ``{"added": n, "removed": m}`` for monitoring.
        """
        reported = set(block_ids)
        added = removed = 0
        with self._lock:
            for block_id, meta in self._blocks.items():
                holds = block_id in reported
                listed = node_id in meta.locations
                if holds and not listed:
                    meta.locations = meta.locations + (node_id,)
                    added += 1
                elif listed and not holds:
                    meta.locations = tuple(
                        n for n in meta.locations if n != node_id
                    )
                    removed += 1
        return {"added": added, "removed": removed}

    def handle_dead_datanode(self, node_id: int) -> int:
        """Re-replicate every block that lost a replica on ``node_id``.

        Called when failure detection declares a datanode dead.  For each
        affected block a surviving replica is copied to a live datanode
        not already holding it, restoring the block's previous replica
        count (a single-replica block whose only copy died stays lost —
        there is nothing to copy from).  Returns the number of new
        replicas created.
        """
        with self._lock:
            self._datanodes.pop(node_id, None)
            work: list[tuple[BlockMeta, int]] = []
            for meta in self._blocks.values():
                if node_id in meta.locations:
                    target = len(meta.locations)
                    meta.locations = tuple(
                        n for n in meta.locations if n != node_id
                    )
                    work.append((meta, target))
        copied = 0
        for meta, target in work:
            copied += self._replicate_block(meta, target)
        return copied

    def _replicate_block(self, meta: BlockMeta, target: int) -> int:
        """Copy ``meta``'s block to live nodes until ``target`` replicas exist."""
        created = 0
        while True:
            with self._lock:
                if len(meta.locations) >= target:
                    return created
                sources = [
                    self._datanodes[n]
                    for n in meta.locations
                    if n in self._datanodes and self._datanodes[n].available
                ]
                candidates = [
                    d
                    for d in self._datanodes.values()
                    if d.available and d.node_id not in meta.locations
                ]
            if not sources or not candidates:
                return created
            destination = min(
                candidates, key=lambda d: d.stats().blocks_stored
            )
            try:
                data = sources[0].read_block(meta.block_id)
                destination.write_block(meta.block_id, data)
            except Exception:
                return created  # source raced a failure; give up on this block
            with self._lock:
                if destination.node_id not in meta.locations:
                    meta.locations = meta.locations + (destination.node_id,)
                    created += 1

    # -- namespace --------------------------------------------------------------------
    @property
    def tree(self) -> NamespaceTree[HDFSFilePayload] | ShardedNamespaceTree[HDFSFilePayload]:
        """The namespace tree (shared semantics with BSFS)."""
        return self._tree

    def create_file(
        self,
        path: str,
        *,
        block_size: int | None,
        replication: int | None,
        overwrite: bool,
        lease_holder: str,
        on_overwrite=None,
    ) -> FileEntry[HDFSFilePayload]:
        """Create a file entry under a write lease."""
        return self._tree.create_file(
            path,
            payload_factory=HDFSFilePayload,
            block_size=block_size or self.default_block_size,
            replication=replication or self.default_replication,
            overwrite=overwrite,
            lease_holder=lease_holder,
            on_overwrite=on_overwrite,
        )

    def status(self, path: str) -> FileStatus:
        """Return the :class:`FileStatus` of ``path``."""
        norm = fspath.normalize(path)
        entry = self._tree.get_entry(norm)
        if isinstance(entry, DirectoryEntry):
            return FileStatus(
                path=norm,
                is_dir=True,
                size=0,
                block_size=0,
                replication=0,
                modification_time=entry.modification_time,
            )
        return FileStatus(
            path=norm,
            is_dir=False,
            size=entry.size,
            block_size=entry.block_size,
            replication=entry.replication,
            modification_time=entry.modification_time,
        )

    def list_status(self, path: str) -> list[FileStatus]:
        """Statuses of a directory's children."""
        result = []
        for child_path, _entry in self._tree.list_dir(path):
            result.append(self.status(child_path))
        return result

    # -- block allocation ---------------------------------------------------------------
    def add_block(
        self, path: str, *, writer_host: str | None = None
    ) -> tuple[BlockMeta, list[DataNode]]:
        """Allocate the next block of ``path`` and choose its target datanodes.

        Mirrors ``ClientProtocol.addBlock``: called by the output stream each
        time its buffer reaches the block size.
        """
        with self._lock:
            entry = self._tree.get_file(path)
            if entry.payload.sealed:
                raise UnsupportedOperationError(
                    f"file {path!r} is closed; HDFS files cannot be reopened for writing"
                )
            block_id = next(self._block_ids)
            meta = BlockMeta(block_id=block_id)
            self._blocks[block_id] = meta
            entry.payload.block_ids.append(block_id)
            targets = self._policy.choose_targets(
                list(self._datanodes.values()),
                entry.replication,
                writer_host=writer_host,
            )
            return meta, targets

    def commit_block(
        self, path: str, block_id: int, *, length: int, locations: list[int]
    ) -> None:
        """Record a block's final length and replica locations after the pipeline."""
        with self._lock:
            meta = self._blocks[block_id]
            meta.length = length
            meta.locations = tuple(locations)
            entry = self._tree.get_file(path)
            new_size = sum(
                self._blocks[b].length for b in entry.payload.block_ids
            )
            # This sets entry.size directly (bypassing tree.update_file), so
            # the quota charge happens here; blocks only grow a file.
            if self.quotas is not None and new_size > entry.size:
                self.quotas.charge_bytes(entry.owner_tenant, new_size - entry.size)
            entry.size = new_size

    def complete_file(self, path: str, lease_holder: str) -> None:
        """Seal a file: release the lease; the file becomes immutable."""
        with self._lock:
            entry = self._tree.get_file(path)
            entry.payload.sealed = True
        self._tree.release_lease(path, lease_holder)

    def abandon_file(self, path: str, lease_holder: str) -> None:
        """Drop a half-written file (writer failure)."""
        self._tree.release_lease(path, lease_holder)
        self.delete(path, recursive=False)

    # -- block queries -----------------------------------------------------------------
    def file_blocks(self, path: str) -> list[BlockMeta]:
        """Ordered block list of a file."""
        with self._lock:
            entry = self._tree.get_file(path)
            return [self._blocks[b] for b in entry.payload.block_ids]

    def block_meta(self, block_id: int) -> BlockMeta:
        """Metadata of one block."""
        with self._lock:
            return self._blocks[block_id]

    def block_locations(
        self, path: str, offset: int = 0, length: int | None = None
    ) -> list[BlockLocation]:
        """Block locations of a byte range of ``path`` (hosts holding replicas)."""
        norm = fspath.normalize(path)
        if not self._tree.exists(norm):
            raise NoSuchPathError(norm)
        entry = self._tree.get_file(norm)
        if offset < 0 or offset > entry.size:
            raise InvalidRangeError(norm, offset, entry.size)
        if length is not None and length < 0:
            raise InvalidRangeError(norm, offset, entry.size, length=length)
        if length is None:
            length = entry.size - offset
        end = min(offset + length, entry.size)
        locations: list[BlockLocation] = []
        position = 0
        for meta in self.file_blocks(norm):
            block_start = position
            block_end = position + meta.length
            position = block_end
            if block_end <= offset or block_start >= end:
                continue
            hosts = tuple(
                self._datanodes[node_id].host
                for node_id in meta.locations
                if node_id in self._datanodes
            )
            locations.append(
                BlockLocation(offset=block_start, length=meta.length, hosts=hosts)
            )
        return locations

    # -- deletion ---------------------------------------------------------------------
    def delete(self, path: str, *, recursive: bool = False) -> None:
        """Delete a path, releasing the blocks of every removed file."""

        def _release(file_path: str, entry: FileEntry[HDFSFilePayload]) -> None:
            with self._lock:
                block_ids = list(entry.payload.block_ids)
            for block_id in block_ids:
                meta = self._blocks.pop(block_id, None)
                if meta is None:
                    continue
                for node_id in meta.locations:
                    node = self._datanodes.get(node_id)
                    if node is not None and node.available:
                        node.delete_block(block_id)

        self._tree.delete(path, recursive=recursive, on_delete_file=_release)

    # -- reports ----------------------------------------------------------------------
    def report(self) -> dict:
        """Cluster-wide report (files, blocks, per-datanode usage)."""
        with self._lock:
            blocks = len(self._blocks)
        return {
            "files": self._tree.count_files(),
            "blocks": blocks,
            "datanodes": {
                d.node_id: {
                    "host": d.host,
                    "rack": d.rack,
                    "blocks": d.stats().blocks_stored,
                    "bytes": d.stats().bytes_stored,
                }
                for d in self.datanodes
            },
        }
