"""Result aggregation, statistics and report formatting for the experiments."""

from .report import ExperimentReport, compare_systems, format_table, speedup
from .stats import coefficient_of_variation, mean, percentile, stddev, summarize

__all__ = [
    "ExperimentReport",
    "format_table",
    "compare_systems",
    "speedup",
    "mean",
    "stddev",
    "percentile",
    "coefficient_of_variation",
    "summarize",
]
