"""Small statistics helpers shared by benchmarks, reports and tests."""

from __future__ import annotations

import math
from typing import Sequence

__all__ = ["mean", "stddev", "percentile", "coefficient_of_variation", "summarize"]


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (0.0 for an empty sequence)."""
    return sum(values) / len(values) if values else 0.0


def stddev(values: Sequence[float]) -> float:
    """Population standard deviation (0.0 for fewer than two samples)."""
    if len(values) < 2:
        return 0.0
    mu = mean(values)
    return math.sqrt(sum((v - mu) ** 2 for v in values) / len(values))


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile ``q`` in [0, 100]."""
    if not values:
        return 0.0
    if not 0 <= q <= 100:
        raise ValueError("percentile must be between 0 and 100")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100) * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return ordered[low]
    fraction = rank - low
    return ordered[low] * (1 - fraction) + ordered[high] * fraction


def coefficient_of_variation(values: Sequence[float]) -> float:
    """Standard deviation divided by the mean (0.0 when the mean is zero)."""
    mu = mean(values)
    if mu == 0:
        return 0.0
    return stddev(values) / mu


def summarize(values: Sequence[float]) -> dict[str, float]:
    """Common summary statistics of a sample."""
    if not values:
        return {"count": 0, "mean": 0.0, "std": 0.0, "min": 0.0, "p50": 0.0, "p95": 0.0, "max": 0.0}
    return {
        "count": len(values),
        "mean": mean(values),
        "std": stddev(values),
        "min": min(values),
        "p50": percentile(values, 50),
        "p95": percentile(values, 95),
        "max": max(values),
    }
