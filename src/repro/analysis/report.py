"""Result aggregation and report formatting for experiments.

Every benchmark in ``benchmarks/`` produces rows (dictionaries) describing
one measurement — one point of a paper figure or one line of a paper table.
This module turns those rows into aligned text tables and simple series
summaries so the benchmark output printed to the terminal has the same
structure as the paper's evaluation section, and EXPERIMENTS.md can be
filled by copy-pasting the harness output.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

__all__ = ["format_table", "ExperimentReport", "compare_systems", "speedup"]


def format_table(
    rows: Sequence[Mapping[str, Any]],
    *,
    columns: Sequence[str] | None = None,
    title: str | None = None,
) -> str:
    """Render rows as an aligned, pipe-separated text table.

    Column order follows ``columns`` when given, otherwise the key order of
    the first row.  Floats are rendered with two decimals.
    """
    if not rows:
        return f"{title}\n(no data)" if title else "(no data)"
    if columns is None:
        columns = list(rows[0].keys())

    def render(value: Any) -> str:
        if isinstance(value, float):
            return f"{value:.2f}"
        return str(value)

    table = [[render(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(str(col)), *(len(line[i]) for line in table))
        for i, col in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(str(col).ljust(widths[i]) for i, col in enumerate(columns))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for line in table:
        lines.append(" | ".join(line[i].ljust(widths[i]) for i in range(len(columns))))
    return "\n".join(lines)


def speedup(baseline: float, improved: float) -> float:
    """Return how many times faster/higher ``improved`` is versus ``baseline``.

    For throughput-style metrics pass them as-is; for completion times pass
    ``speedup(time_improved, time_baseline)`` is *not* what you want — use
    ``speedup(baseline=improved_time, improved=baseline_time)`` or simply
    divide — this helper guards against division by zero only.
    """
    if baseline <= 0:
        return float("inf") if improved > 0 else 1.0
    return improved / baseline


def compare_systems(
    rows: Sequence[Mapping[str, Any]],
    *,
    key_column: str,
    system_column: str = "system",
    value_column: str,
    baseline: str = "hdfs",
    challenger: str = "bsfs",
) -> list[dict[str, Any]]:
    """Join per-system rows on ``key_column`` and compute the challenger/baseline ratio.

    Returns one row per key with the two systems' values and their ratio —
    the "who wins, by what factor" summary DESIGN.md asks every experiment
    to report.
    """
    by_key: dict[Any, dict[str, float]] = {}
    for row in rows:
        key = row[key_column]
        by_key.setdefault(key, {})[str(row[system_column])] = float(row[value_column])
    comparison: list[dict[str, Any]] = []
    for key in sorted(by_key):
        values = by_key[key]
        base = values.get(baseline)
        chal = values.get(challenger)
        entry: dict[str, Any] = {key_column: key}
        if base is not None:
            entry[f"{baseline}_{value_column}"] = round(base, 2)
        if chal is not None:
            entry[f"{challenger}_{value_column}"] = round(chal, 2)
        if base and chal is not None:
            entry["ratio"] = round(chal / base, 2) if base else float("inf")
        comparison.append(entry)
    return comparison


@dataclass
class ExperimentReport:
    """Accumulates the rows of one experiment and renders/prints/saves them."""

    experiment_id: str
    title: str
    rows: list[dict[str, Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, row: Mapping[str, Any]) -> None:
        """Record one measurement row."""
        self.rows.append(dict(row))

    def add_rows(self, rows: Iterable[Mapping[str, Any]]) -> None:
        """Record several measurement rows."""
        for row in rows:
            self.add_row(row)

    def note(self, text: str) -> None:
        """Attach a free-form note (e.g. the observed speedup)."""
        self.notes.append(text)

    def to_text(self, *, columns: Sequence[str] | None = None) -> str:
        """Render the report as the text block printed by the benchmarks."""
        parts = [
            format_table(
                self.rows,
                columns=columns,
                title=f"[{self.experiment_id}] {self.title}",
            )
        ]
        for note in self.notes:
            parts.append(f"  note: {note}")
        return "\n".join(parts)

    def to_json(self) -> str:
        """Serialise the report (rows and notes) as JSON."""
        return json.dumps(
            {
                "experiment": self.experiment_id,
                "title": self.title,
                "rows": self.rows,
                "notes": self.notes,
            },
            indent=2,
            default=str,
        )

    def print(self, *, columns: Sequence[str] | None = None) -> None:
        """Print the text rendering (used by the benchmark harness)."""
        print()  # noqa: T201 - benchmark harness output
        print(self.to_text(columns=columns))  # noqa: T201
