"""The session facade: connect() → Session wiring storage, jobs and tenancy."""

from __future__ import annotations

import pytest

from repro.api import Session, connect
from repro.bsfs import BSFS
from repro.core import KB, BlobSeerConfig
from repro.fs import LocalFS, QuotaExceededError, clear_instance_cache
from repro.mapreduce import JobService
from repro.mapreduce.applications import make_wordcount_job
from repro.workloads import write_text_file

TEST_BLOCK_SIZE = 16 * KB


def make_local(tmp_path, tag: str = "x") -> LocalFS:
    return LocalFS(
        root=str(tmp_path / f"localfs-{tag}"), default_block_size=TEST_BLOCK_SIZE
    )


def make_bsfs() -> BSFS:
    return BSFS(
        config=BlobSeerConfig(
            page_size=4 * KB,
            num_providers=4,
            num_metadata_providers=2,
            replication=1,
            rng_seed=7,
        ),
        default_block_size=TEST_BLOCK_SIZE,
    )


class TestConnect:
    def test_connect_accepts_filesystem_instance(self, tmp_path):
        fs = make_local(tmp_path)
        session = connect(fs, tenant="alice")
        assert isinstance(session, Session)
        assert session.fs is fs
        assert session.tenant == "alice"

    def test_sessions_share_one_service_per_deployment(self, tmp_path):
        fs = make_local(tmp_path)
        alice = connect(fs, tenant="alice")
        bob = connect(fs, tenant="bob")
        assert alice.service is bob.service
        assert alice.tenant != bob.tenant

    def test_connect_uri_builds_backend_through_registry(self, tmp_path):
        try:
            session = connect(
                "file://session-uri-test",
                tenant="alice",
                root=str(tmp_path / "uri-root"),
            )
            session.write("/hello.txt", b"hi via uri")
            assert session.read("/hello.txt") == b"hi via uri"
        finally:
            clear_instance_cache("file")

    def test_explicit_service_is_not_replaced(self, tmp_path):
        fs = make_local(tmp_path)
        service = JobService.local(fs, num_trackers=1, slots_per_tracker=1)
        session = connect(fs, tenant="alice", service=service)
        assert session.service is service
        # The explicit service is not cached onto the deployment.
        other = connect(fs, tenant="bob")
        assert other.service is not None


class TestStoragePlane:
    def test_write_read_roundtrip_and_helpers(self, tmp_path):
        session = connect(make_local(tmp_path), tenant="alice")
        session.mkdirs("/data")
        session.write("/data/a.txt", b"alpha")
        assert session.exists("/data/a.txt")
        assert session.read("/data/a.txt") == b"alpha"
        assert [s.path for s in session.list_dir("/data")] == ["/data/a.txt"]
        session.delete("/data/a.txt")
        assert not session.exists("/data/a.txt")

    def test_as_of_read_over_snapshot(self, tmp_path):
        session = connect(make_bsfs(), tenant="alice")
        session.write("/log", b"first")
        v1 = session.snapshot("/log")
        with session.append("/log") as out:
            out.write(b"-second")
        assert session.read("/log") == b"first-second"
        assert session.read("/log", version=v1) == b"first"
        # The @vN path suffix addresses the same snapshot.
        assert session.read(f"/log@v{v1}") == b"first"

    def test_pin_owner_defaults_to_tenant(self, tmp_path):
        session = connect(make_bsfs(), tenant="alice")
        session.write("/keep", b"k" * 100)
        pin = session.pin("/keep")
        assert pin.owner == "alice"
        pin.release()

    def test_writes_are_attributed_to_the_tenant(self, tmp_path):
        fs = make_local(tmp_path)
        session = connect(fs, tenant="alice")
        session.service.register_tenant("alice", max_files=1)
        session.write("/one", b"1")
        with pytest.raises(QuotaExceededError):
            session.write("/two", b"2")
        assert session.usage().files == 1

    def test_scope_covers_raw_fs_writes(self, tmp_path):
        fs = make_local(tmp_path)
        session = connect(fs, tenant="alice")
        session.service.register_tenant("alice", max_bytes=1000)
        with session.scope():
            with fs.create("/raw") as out:  # not via a session helper
                out.write(b"r" * 64)
        assert session.usage().bytes == 64

    def test_anonymous_session_has_no_usage(self, tmp_path):
        session = connect(make_local(tmp_path))
        session.write("/f", b"x")
        assert session.usage() is None


class TestJobPlane:
    def test_submit_defaults_to_session_tenant(self, tmp_path):
        fs = make_local(tmp_path)
        session = connect(fs, tenant="alice")
        session.service.register_tenant("alice")
        write_text_file(fs, "/in/words.txt", 30, seed=3)
        job = make_wordcount_job(["/in/words.txt"], output_dir="/out/wc")
        handle = session.submit(job)
        assert handle.tenant == "alice"
        result = handle.wait()
        assert result.succeeded
        assert session.exists("/out/wc/part-r-00000")

    def test_run_is_submit_and_wait(self, tmp_path):
        fs = make_local(tmp_path)
        session = connect(fs, tenant="alice")
        write_text_file(fs, "/in/words.txt", 30, seed=3)
        result = session.run(make_wordcount_job(["/in/words.txt"], output_dir="/out"))
        assert result.succeeded

    def test_session_write_then_job_fits_the_quota_story(self, tmp_path):
        """The quickstart narrative: a tenant writes input through the
        session (charged to them), runs a job, and sees its usage."""
        fs = make_local(tmp_path)
        session = connect(fs, tenant="alice")
        session.service.register_tenant("alice", max_bytes=512 * KB)
        write_text_file(fs, "/in/words.txt", 20, seed=5)
        before = session.usage().bytes
        session.write("/in/extra.txt", b"more words here\n" * 4)
        assert session.usage().bytes == before + 64
        result = session.run(make_wordcount_job(["/in/words.txt"], output_dir="/o"))
        assert result.succeeded

    def test_context_manager_form(self, tmp_path):
        with connect(make_local(tmp_path), tenant="alice") as session:
            session.write("/f", b"x")
            assert session.read("/f") == b"x"
