"""Tests for the simulated MapReduce completion-time model (E4/E5)."""

from __future__ import annotations

import pytest

from repro.core import GB, MB
from repro.simulation import (
    SimulatedBSFS,
    SimulatedHDFS,
    SimJobSpec,
    SimMapTask,
    SimReduceTask,
    distributed_grep_spec,
    random_text_writer_spec,
    simulate_job,
    small_cluster,
)


@pytest.fixture
def topology():
    return small_cluster(num_nodes=16, num_racks=4)


def bsfs(topology):
    return SimulatedBSFS(topology, block_size=32 * MB, replication=1)


def hdfs(topology):
    return SimulatedHDFS(topology, block_size=32 * MB, replication=1)


class TestSpecFactories:
    def test_random_text_writer_spec(self):
        spec = random_text_writer_spec(num_map_tasks=5, bytes_per_map=10 * MB)
        assert len(spec.map_tasks) == 5
        assert spec.reduce_tasks == []
        assert all(t.output_bytes == 10 * MB for t in spec.map_tasks)
        assert all(t.input_file is None for t in spec.map_tasks)

    def test_distributed_grep_spec_splits_input(self, topology):
        storage = bsfs(topology)
        spec = distributed_grep_spec(
            storage, input_file="huge", input_bytes=160 * MB, writer_node=0
        )
        assert len(spec.map_tasks) == 5  # 160 MB / 32 MB blocks
        assert sum(t.input_length for t in spec.map_tasks) == 160 * MB
        assert len(spec.reduce_tasks) == 1
        assert storage.file_blocks("huge") == 5


class TestSimulateJob:
    def test_map_only_job_completes(self, topology):
        storage = bsfs(topology)
        spec = random_text_writer_spec(
            num_map_tasks=8, bytes_per_map=32 * MB, compute_seconds_per_map=0.5
        )
        result = simulate_job(topology, storage, spec)
        assert result.completion_time > 0.5
        assert result.map_tasks == 8
        assert result.reduce_tasks == 0
        assert result.reduce_phase_time == 0.0
        row = result.as_row()
        assert row["system"] == "bsfs"

    def test_job_with_reducers_has_reduce_phase(self, topology):
        storage = bsfs(topology)
        spec = distributed_grep_spec(
            storage, input_file="in", input_bytes=128 * MB, writer_node=0
        )
        result = simulate_job(topology, storage, spec)
        assert result.reduce_tasks == 1
        assert result.completion_time >= result.map_phase_time

    def test_waves_make_jobs_longer_than_single_task(self, topology):
        storage = bsfs(topology)
        single = simulate_job(
            topology,
            storage,
            SimJobSpec(
                name="one",
                map_tasks=[SimMapTask(0, None, 0, 0, 32 * MB, 1.0)],
                slots_per_node=1,
            ),
        )
        many_tasks = [SimMapTask(i, None, 0, 0, 32 * MB, 1.0) for i in range(64)]
        many = simulate_job(
            topology,
            storage,
            SimJobSpec(name="many", map_tasks=many_tasks, slots_per_node=1),
            tasktracker_nodes=list(range(16)),
        )
        # 64 tasks over 16 single-slot nodes -> at least 4 waves.
        assert many.completion_time > 2 * single.completion_time

    def test_locality_high_for_bsfs_grep(self, topology):
        storage = bsfs(topology)
        spec = distributed_grep_spec(
            storage, input_file="in", input_bytes=256 * MB, writer_node=0
        )
        result = simulate_job(topology, storage, spec)
        assert 0.0 <= result.locality_ratio <= 1.0

    def test_reduce_only_job(self, topology):
        storage = bsfs(topology)
        spec = SimJobSpec(
            name="reduce-only",
            map_tasks=[SimMapTask(0, None, 0, 0, 0, 0.0)],
            reduce_tasks=[SimReduceTask(0, shuffle_bytes=8 * MB, output_bytes=8 * MB)],
        )
        result = simulate_job(topology, storage, spec)
        assert result.completion_time > 0


class TestPaperApplicationShapes:
    def test_random_text_writer_faster_on_bsfs(self, topology):
        spec_args = dict(num_map_tasks=24, bytes_per_map=64 * MB, compute_seconds_per_map=1.0)
        bsfs_result = simulate_job(topology, bsfs(topology), random_text_writer_spec(**spec_args))
        hdfs_result = simulate_job(topology, hdfs(topology), random_text_writer_spec(**spec_args))
        assert bsfs_result.completion_time < hdfs_result.completion_time

    def test_distributed_grep_faster_on_bsfs(self, topology):
        input_bytes = 1 * GB
        bsfs_storage = bsfs(topology)
        hdfs_storage = hdfs(topology)
        bsfs_spec = distributed_grep_spec(
            bsfs_storage, input_file="huge", input_bytes=input_bytes, writer_node=0
        )
        hdfs_spec = distributed_grep_spec(
            hdfs_storage, input_file="huge", input_bytes=input_bytes, writer_node=0
        )
        bsfs_result = simulate_job(topology, bsfs_storage, bsfs_spec)
        hdfs_result = simulate_job(topology, hdfs_storage, hdfs_spec)
        assert bsfs_result.completion_time < hdfs_result.completion_time
