"""Unit tests for the simulated BSFS/HDFS storage models."""

from __future__ import annotations

import pytest

from repro.core import MB
from repro.simulation.storage_models import SimulatedBSFS, SimulatedHDFS
from repro.simulation.topology import small_cluster


@pytest.fixture
def topology():
    return small_cluster(num_nodes=12, num_racks=3)


class TestSimulatedBSFS:
    def test_write_block_stripes_across_providers(self, topology):
        storage = SimulatedBSFS(topology, block_size=64 * MB, fragments_per_block=8)
        transfers = storage.write_block(0, "f", 64 * MB)
        assert len(transfers) == 8
        assert sum(t.nbytes for t in transfers) == pytest.approx(64 * MB)
        destinations = {t.dst for t in transfers}
        assert len(destinations) >= 6  # spread wide, not piled on one node
        assert all(t.src == 0 and t.dst_disk and not t.src_disk for t in transfers)

    def test_successive_writes_stay_balanced(self, topology):
        storage = SimulatedBSFS(topology, block_size=8 * MB, fragments_per_block=4)
        for client in range(6):
            for _ in range(4):
                storage.write_block(client, f"file-{client}", 8 * MB)
        distribution = storage.storage_distribution()
        loads = [v for v in distribution.values()]
        assert max(loads) <= 2.5 * (sum(loads) / len(loads))

    def test_read_block_pulls_from_stored_fragments(self, topology):
        storage = SimulatedBSFS(topology, block_size=16 * MB, fragments_per_block=4)
        storage.write_block(1, "f", 16 * MB)
        transfers = storage.read_block(5, "f", 0)
        assert sum(t.nbytes for t in transfers) == pytest.approx(16 * MB)
        assert all(t.dst == 5 and t.src_disk and not t.dst_disk for t in transfers)

    def test_replicated_fragments_use_distinct_nodes(self, topology):
        storage = SimulatedBSFS(
            topology, block_size=8 * MB, fragments_per_block=4, replication=2
        )
        transfers = storage.write_block(0, "f", 8 * MB)
        assert len(transfers) == 8  # 4 fragments x 2 replicas
        # Each fragment's replicas are distinct nodes.
        placement = storage._files["f"][0][1]
        for _bytes, replicas in placement:
            assert len(set(replicas)) == 2

    def test_populate_file_and_block_hosts(self, topology):
        storage = SimulatedBSFS(topology, block_size=16 * MB, fragments_per_block=4)
        storage.populate_file("input", 48 * MB, writer=0)
        assert storage.file_blocks("input") == 3
        assert storage.file_size("input") == 48 * MB
        hosts = storage.block_hosts("input", 0)
        assert 1 <= len(hosts) <= 3
        assert all(h in storage.storage_nodes for h in hosts)

    def test_read_range_covers_partial_blocks(self, topology):
        storage = SimulatedBSFS(topology, block_size=16 * MB, fragments_per_block=4)
        storage.populate_file("input", 64 * MB, writer=0)
        steps = storage.read_range(2, "input", 8 * MB, 32 * MB)
        assert len(steps) == 3  # half of block 0, block 1, half of block 2
        total = sum(t.nbytes for step in steps for t in step)
        assert total == pytest.approx(32 * MB)

    def test_unknown_file_raises(self, topology):
        storage = SimulatedBSFS(topology)
        with pytest.raises(KeyError):
            storage.read_block(0, "ghost", 0)
        with pytest.raises(KeyError):
            storage.read_range(0, "ghost", 0, 10)

    def test_validation(self, topology):
        with pytest.raises(ValueError):
            SimulatedBSFS(topology, fragments_per_block=0)
        with pytest.raises(ValueError):
            SimulatedBSFS(topology, replication=0)
        with pytest.raises(ValueError):
            SimulatedBSFS(topology, replication=99)
        with pytest.raises(ValueError):
            SimulatedBSFS(topology, storage_nodes=[])


class TestSimulatedHDFS:
    def test_first_replica_local(self, topology):
        storage = SimulatedHDFS(topology, block_size=64 * MB, replication=3)
        transfers = storage.write_block(4, "f", 64 * MB)
        assert len(transfers) == 3  # pipeline hops
        assert transfers[0].src == 4
        assert transfers[0].dst == 4  # local first replica
        # Pipeline forwards from replica to replica.
        assert transfers[1].src == transfers[0].dst
        assert transfers[2].src == transfers[1].dst

    def test_rack_aware_placement(self, topology):
        storage = SimulatedHDFS(topology, replication=3)
        storage.write_block(0, "f", 1 * MB)
        placement = storage._files["f"][0][1]
        racks = [topology.node(n).rack for n in placement]
        assert racks[1] == racks[0]
        assert racks[2] != racks[0]

    def test_single_writer_concentrates_blocks(self, topology):
        storage = SimulatedHDFS(topology, replication=1)
        storage.populate_file("huge", 10 * 64 * MB, writer=7)
        for index in range(10):
            assert storage.block_hosts("huge", index) == [7]

    def test_read_block_single_source(self, topology):
        storage = SimulatedHDFS(topology, replication=2)
        storage.populate_file("data", 64 * MB, writer=0)
        transfers = storage.read_block(5, "data", 0)
        assert len(transfers) == 1
        assert transfers[0].nbytes == pytest.approx(64 * MB)
        assert transfers[0].src in storage.block_hosts("data", 0)

    def test_reader_prefers_local_then_same_rack(self, topology):
        storage = SimulatedHDFS(topology, replication=2)
        storage.populate_file("data", 64 * MB, writer=3)
        # Reading from the writer node itself: local replica chosen.
        transfers = storage.read_block(3, "data", 0)
        assert transfers[0].src == 3

    def test_write_load_tracked(self, topology):
        storage = SimulatedHDFS(topology, replication=1)
        storage.write_block(2, "f", 5 * MB)
        assert storage.storage_distribution()[2] == 5 * MB
