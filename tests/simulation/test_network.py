"""Unit and property tests for the flow-level network model (max-min fairness)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulation.engine import SimulationEngine
from repro.simulation.network import FlowNetwork
from repro.simulation.topology import MBps, small_cluster


def make_network(num_nodes: int = 8, num_racks: int = 2):
    engine = SimulationEngine()
    topology = small_cluster(num_nodes=num_nodes, num_racks=num_racks)
    return engine, topology, FlowNetwork(topology, engine)


class TestSingleFlows:
    def test_remote_transfer_bounded_by_disk_write(self):
        engine, topo, network = make_network()
        done = []
        network.start_transfer(0, 2, 60 * MBps, on_complete=done.append)
        engine.run()
        assert len(done) == 1
        flow = done[0]
        # Bottleneck: destination disk write at 60 MB/s -> 1 second.
        assert flow.finished_at == pytest.approx(1.0, rel=1e-3)
        assert flow.throughput == pytest.approx(60 * MBps, rel=1e-3)

    def test_memory_only_transfer_bounded_by_nic(self):
        engine, topo, network = make_network()
        done = []
        network.start_transfer(
            0, 1, 117 * MBps, src_disk=False, dst_disk=False, on_complete=done.append
        )
        engine.run()
        assert done[0].finished_at == pytest.approx(1.0, rel=1e-3)

    def test_local_disk_copy(self):
        engine, topo, network = make_network()
        done = []
        network.start_transfer(3, 3, 60 * MBps, on_complete=done.append)
        engine.run()
        # Bottleneck is the local disk write (60 MB/s), slower than disk read.
        assert done[0].finished_at == pytest.approx(1.0, rel=1e-3)

    def test_zero_byte_transfer_completes_immediately(self):
        engine, topo, network = make_network()
        done = []
        network.start_transfer(0, 1, 0, on_complete=done.append)
        engine.run()
        assert done[0].finished_at == 0.0

    def test_negative_size_rejected(self):
        engine, topo, network = make_network()
        with pytest.raises(ValueError):
            network.start_transfer(0, 1, -5)

    def test_stats_accumulate(self):
        engine, topo, network = make_network()
        network.start_transfer(0, 1, 10 * MBps)
        network.start_transfer(2, 3, 10 * MBps)
        engine.run()
        stats = network.stats()
        assert stats.flows_completed == 2
        assert stats.bytes_transferred == pytest.approx(20 * MBps)
        assert stats.aggregate_throughput > 0


class TestFairSharing:
    def test_two_flows_share_a_disk_equally(self):
        engine, topo, network = make_network()
        finished = {}
        # Two different sources write to the same destination disk (60 MB/s).
        network.start_transfer(
            0, 2, 60 * MBps, src_disk=False, on_complete=lambda f: finished.setdefault("a", f)
        )
        network.start_transfer(
            4, 2, 60 * MBps, src_disk=False, on_complete=lambda f: finished.setdefault("b", f)
        )
        engine.run()
        # Each gets ~30 MB/s -> both finish around t=2.
        assert finished["a"].finished_at == pytest.approx(2.0, rel=0.05)
        assert finished["b"].finished_at == pytest.approx(2.0, rel=0.05)

    def test_short_flow_finishes_first_and_frees_bandwidth(self):
        engine, topo, network = make_network()
        order = []
        network.start_transfer(
            0, 2, 10 * MBps, src_disk=False, on_complete=lambda f: order.append("short")
        )
        network.start_transfer(
            4, 2, 100 * MBps, src_disk=False, on_complete=lambda f: order.append("long")
        )
        engine.run()
        assert order == ["short", "long"]
        # Total work is 110 MB through a 60 MB/s disk: finishes near t=110/60.
        assert engine.now == pytest.approx(110 / 60, rel=0.05)

    def test_independent_flows_do_not_interfere(self):
        engine, topo, network = make_network()
        finished = []
        network.start_transfer(0, 2, 60 * MBps, src_disk=False, on_complete=finished.append)
        network.start_transfer(1, 3, 60 * MBps, src_disk=False, on_complete=finished.append)
        engine.run()
        for flow in finished:
            assert flow.finished_at == pytest.approx(1.0, rel=0.05)

    def test_hotspot_degrades_per_flow_throughput(self):
        engine, topo, network = make_network()
        readers = 6
        finished = []
        for i in range(readers):
            # Six clients read from node 0's disk (70 MB/s) concurrently.
            network.start_transfer(
                0, i + 1, 70 * MBps, dst_disk=False, on_complete=finished.append
            )
        engine.run()
        assert len(finished) == readers
        # Fair share is ~70/6 MB/s, so each 70 MB transfer takes ~6 s.
        for flow in finished:
            assert flow.finished_at == pytest.approx(6.0, rel=0.1)

    def test_conservation_of_work(self):
        engine, topo, network = make_network()
        sizes = [10 * MBps, 25 * MBps, 40 * MBps]
        for i, size in enumerate(sizes):
            network.start_transfer(i, 5, size, src_disk=False)
        engine.run()
        # All bytes must go through node 5's disk at 60 MB/s: the makespan is
        # at least total/60 and close to it (single shared bottleneck).
        total = sum(sizes)
        assert engine.now >= total / (60 * MBps) * 0.999
        assert engine.now == pytest.approx(total / (60 * MBps), rel=0.1)


class TestPropertyBased:
    @settings(max_examples=20, deadline=None)
    @given(
        sizes=st.lists(
            st.floats(min_value=1e5, max_value=5e8, allow_nan=False),
            min_size=1,
            max_size=12,
        ),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_all_flows_complete_and_bytes_are_conserved(self, sizes, seed):
        import random

        rng = random.Random(seed)
        engine, topo, network = make_network(num_nodes=6, num_racks=2)
        finished = []
        for size in sizes:
            src = rng.randrange(6)
            dst = rng.randrange(6)
            network.start_transfer(src, dst, size, on_complete=finished.append)
        engine.run()
        assert len(finished) == len(sizes)
        stats = network.stats()
        assert stats.bytes_transferred == pytest.approx(sum(sizes), rel=1e-6)
        assert not network.active_flows
        # Nothing finishes faster than the theoretical minimum (best resource
        # 1200 MB/s uplink is never the bottleneck; NIC 117 MB/s caps remote,
        # disk read 70 MB/s caps everything that touches a disk).
        for flow in finished:
            if flow.size > 0 and flow.path:
                slowest = min(topo.resource_capacities()[r] for r in flow.path)
                assert flow.elapsed >= flow.size / slowest * 0.999
