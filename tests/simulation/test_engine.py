"""Unit tests for the discrete-event engine."""

from __future__ import annotations

import pytest

from repro.simulation.engine import SimulationEngine


class TestScheduling:
    def test_events_run_in_time_order(self):
        engine = SimulationEngine()
        order: list[str] = []
        engine.schedule(3.0, order.append, "c")
        engine.schedule(1.0, order.append, "a")
        engine.schedule(2.0, order.append, "b")
        engine.run()
        assert order == ["a", "b", "c"]
        assert engine.now == 3.0
        assert engine.events_processed == 3

    def test_equal_timestamps_run_fifo(self):
        engine = SimulationEngine()
        order: list[int] = []
        for i in range(5):
            engine.schedule(1.0, order.append, i)
        engine.run()
        assert order == [0, 1, 2, 3, 4]

    def test_nested_scheduling(self):
        engine = SimulationEngine()
        seen: list[float] = []

        def first():
            seen.append(engine.now)
            engine.schedule(2.0, second)

        def second():
            seen.append(engine.now)

        engine.schedule(1.0, first)
        engine.run()
        assert seen == [1.0, 3.0]

    def test_schedule_at_absolute_time(self):
        engine = SimulationEngine()
        times: list[float] = []
        engine.schedule_at(5.0, lambda: times.append(engine.now))
        engine.run()
        assert times == [5.0]

    def test_negative_delay_rejected(self):
        engine = SimulationEngine()
        with pytest.raises(ValueError):
            engine.schedule(-1.0, lambda: None)

    def test_cancelled_events_are_skipped(self):
        engine = SimulationEngine()
        fired: list[str] = []
        event = engine.schedule(1.0, fired.append, "cancelled")
        engine.schedule(2.0, fired.append, "kept")
        event.cancel()
        engine.run()
        assert fired == ["kept"]

    def test_run_until_limit(self):
        engine = SimulationEngine()
        fired: list[float] = []
        for t in (1.0, 2.0, 3.0):
            engine.schedule(t, fired.append, t)
        engine.run(until=2.5)
        assert fired == [1.0, 2.0]
        assert engine.now == 2.5
        engine.run()
        assert fired == [1.0, 2.0, 3.0]

    def test_max_events_limit(self):
        engine = SimulationEngine()
        for t in range(10):
            engine.schedule(float(t + 1), lambda: None)
        engine.run(max_events=4)
        assert engine.events_processed == 4

    def test_step_and_reset(self):
        engine = SimulationEngine()
        engine.schedule(1.0, lambda: None)
        assert engine.step() is True
        assert engine.step() is False
        engine.schedule(1.0, lambda: None)
        engine.reset()
        assert engine.pending_events == 0
        assert engine.now == 0.0
