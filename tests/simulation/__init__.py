"""Test package (keeps same-named test modules like test_filesystem.py distinct)."""
