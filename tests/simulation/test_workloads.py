"""Tests for the simulated microbenchmark drivers — including the paper's
qualitative claims (who wins, and how the gap behaves as concurrency grows)."""

from __future__ import annotations

import pytest

from repro.core import MB
from repro.simulation import (
    SimulatedBSFS,
    SimulatedHDFS,
    run_append_same_file,
    run_read_different_files,
    run_read_same_file,
    run_write_different_files,
    small_cluster,
)

BYTES_PER_CLIENT = 64 * MB
BLOCK = 32 * MB


@pytest.fixture
def topology():
    return small_cluster(num_nodes=16, num_racks=4)


def bsfs(topology):
    return SimulatedBSFS(topology, block_size=BLOCK, replication=1)


def hdfs(topology):
    return SimulatedHDFS(topology, block_size=BLOCK, replication=1)


class TestDriverMechanics:
    def test_result_structure(self, topology):
        result = run_write_different_files(
            topology, bsfs(topology), num_clients=4, bytes_per_client=BYTES_PER_CLIENT
        )
        assert result.num_clients == 4
        assert len(result.clients) == 4
        assert result.makespan > 0
        assert result.aggregate_throughput_mbps > 0
        assert result.mean_client_throughput_mbps >= result.min_client_throughput_mbps
        row = result.as_row()
        assert row["system"] == "bsfs"
        assert row["clients"] == 4

    def test_every_client_moves_its_bytes(self, topology):
        result = run_read_different_files(
            topology, hdfs(topology), num_clients=5, bytes_per_client=BYTES_PER_CLIENT
        )
        for client in result.clients:
            assert client.total_bytes == BYTES_PER_CLIENT
            assert client.finished_at > client.started_at

    def test_append_same_file_runs_on_bsfs(self, topology):
        storage = bsfs(topology)
        result = run_append_same_file(
            topology, storage, num_clients=4, bytes_per_client=BYTES_PER_CLIENT
        )
        assert result.pattern == "append_same_file"
        assert storage.file_size("shared-append") == 4 * BYTES_PER_CLIENT

    def test_explicit_client_nodes(self, topology):
        nodes = [1, 3, 5]
        result = run_write_different_files(
            topology,
            bsfs(topology),
            num_clients=3,
            bytes_per_client=BYTES_PER_CLIENT,
            client_nodes=nodes,
        )
        assert [c.node for c in result.clients] == nodes


class TestPaperShapes:
    """The qualitative results of Section IV.B must hold in the simulator."""

    def test_bsfs_beats_hdfs_for_concurrent_writes(self, topology):
        n = 12
        bsfs_result = run_write_different_files(
            topology, bsfs(topology), num_clients=n, bytes_per_client=BYTES_PER_CLIENT
        )
        hdfs_result = run_write_different_files(
            topology, hdfs(topology), num_clients=n, bytes_per_client=BYTES_PER_CLIENT
        )
        assert (
            bsfs_result.mean_client_throughput_mbps
            > 1.3 * hdfs_result.mean_client_throughput_mbps
        )

    def test_bsfs_sustains_reads_of_shared_file_while_hdfs_collapses(self, topology):
        n = 12
        bsfs_result = run_read_same_file(
            topology, bsfs(topology), num_clients=n, bytes_per_client=BYTES_PER_CLIENT
        )
        hdfs_result = run_read_same_file(
            topology, hdfs(topology), num_clients=n, bytes_per_client=BYTES_PER_CLIENT
        )
        # The HDFS layout concentrates the shared file on its single writer
        # node, so per-client throughput collapses with concurrency.
        assert (
            bsfs_result.mean_client_throughput_mbps
            > 3 * hdfs_result.mean_client_throughput_mbps
        )

    def test_bsfs_throughput_is_sustained_as_clients_grow(self, topology):
        few = run_read_same_file(
            topology, bsfs(topology), num_clients=2, bytes_per_client=BYTES_PER_CLIENT
        )
        many = run_read_same_file(
            topology, bsfs(topology), num_clients=12, bytes_per_client=BYTES_PER_CLIENT
        )
        assert (
            many.mean_client_throughput_mbps
            >= 0.6 * few.mean_client_throughput_mbps
        )

    def test_hdfs_shared_read_gets_worse_with_more_clients(self, topology):
        few = run_read_same_file(
            topology, hdfs(topology), num_clients=2, bytes_per_client=BYTES_PER_CLIENT
        )
        many = run_read_same_file(
            topology, hdfs(topology), num_clients=12, bytes_per_client=BYTES_PER_CLIENT
        )
        assert (
            many.mean_client_throughput_mbps
            < 0.5 * few.mean_client_throughput_mbps
        )

    def test_read_different_files_bsfs_wins(self, topology):
        n = 10
        bsfs_result = run_read_different_files(
            topology, bsfs(topology), num_clients=n, bytes_per_client=BYTES_PER_CLIENT
        )
        hdfs_result = run_read_different_files(
            topology, hdfs(topology), num_clients=n, bytes_per_client=BYTES_PER_CLIENT
        )
        assert (
            bsfs_result.mean_client_throughput_mbps
            > hdfs_result.mean_client_throughput_mbps
        )

    def test_aggregate_throughput_scales_for_bsfs_writes(self, topology):
        one = run_write_different_files(
            topology, bsfs(topology), num_clients=1, bytes_per_client=BYTES_PER_CLIENT
        )
        eight = run_write_different_files(
            topology, bsfs(topology), num_clients=8, bytes_per_client=BYTES_PER_CLIENT
        )
        assert (
            eight.aggregate_throughput_mbps > 4 * one.aggregate_throughput_mbps
        )
