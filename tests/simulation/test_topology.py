"""Unit tests for cluster topologies and transfer paths."""

from __future__ import annotations

from repro.simulation.topology import MBps, grid5000_like, small_cluster


class TestFactories:
    def test_grid5000_defaults(self):
        topo = grid5000_like()
        assert topo.num_nodes == 270
        assert len(topo.racks) == 9
        assert topo.node(0).nic_out_bw == 117 * MBps
        assert len(topo.hosts()) == 270

    def test_small_cluster(self):
        topo = small_cluster(num_nodes=8, num_racks=2)
        assert topo.num_nodes == 8
        racks = {n.rack for n in topo.nodes}
        assert racks == {"rack-0", "rack-1"}

    def test_lookups(self):
        topo = small_cluster(num_nodes=4, num_racks=2)
        node = topo.node(3)
        assert topo.node_by_host(node.host) == node
        assert topo.rack_of(3).name == node.rack
        assert topo.same_rack(0, 2)
        assert not topo.same_rack(0, 1)


class TestResourceCapacities:
    def test_every_node_and_rack_has_resources(self):
        topo = small_cluster(num_nodes=4, num_racks=2)
        capacities = topo.resource_capacities()
        assert len(capacities) == 4 * 4 + 2 * 2
        assert capacities["node:0:disk_read"] == 70 * MBps
        assert capacities["rack:rack-0:in"] == 1200 * MBps


class TestTransferPaths:
    def test_local_transfer_only_touches_disks(self):
        topo = small_cluster(num_nodes=4, num_racks=2)
        path = topo.transfer_path(1, 1)
        assert path == ["node:1:disk_read", "node:1:disk_write"]

    def test_same_rack_transfer_skips_uplinks(self):
        topo = small_cluster(num_nodes=4, num_racks=2)
        path = topo.transfer_path(0, 2)  # both in rack-0
        assert "rack:rack-0:out" not in path
        assert "node:0:nic_out" in path
        assert "node:2:nic_in" in path

    def test_cross_rack_transfer_uses_both_uplinks(self):
        topo = small_cluster(num_nodes=4, num_racks=2)
        path = topo.transfer_path(0, 1)
        assert "rack:rack-0:out" in path
        assert "rack:rack-1:in" in path

    def test_disk_flags(self):
        topo = small_cluster(num_nodes=4, num_racks=2)
        path = topo.transfer_path(0, 1, src_disk=False, dst_disk=False)
        assert "node:0:disk_read" not in path
        assert "node:1:disk_write" not in path
        assert "node:0:nic_out" in path

    def test_memory_to_memory_local_transfer_is_empty(self):
        topo = small_cluster(num_nodes=2, num_racks=1)
        assert topo.transfer_path(0, 0, src_disk=False, dst_disk=False) == []
