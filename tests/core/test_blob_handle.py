"""Unit tests for the file-like BlobHandle wrapper."""

from __future__ import annotations

import io

import pytest

from repro.core import BlobHandle, BlobSeer, InvalidRangeError

PAGE = 4 * 1024


@pytest.fixture
def handle(blobseer: BlobSeer) -> BlobHandle:
    blob = blobseer.create_blob()
    return BlobHandle(blobseer, blob)


class TestCursor:
    def test_initial_state(self, handle):
        assert handle.tell() == 0
        assert handle.size == 0
        assert handle.latest_version == 0
        assert handle.page_size == PAGE

    def test_seek_variants(self, handle):
        handle.append(b"0123456789")
        assert handle.seek(4) == 4
        assert handle.seek(2, io.SEEK_CUR) == 6
        assert handle.seek(-3, io.SEEK_END) == 7
        with pytest.raises(InvalidRangeError):
            handle.seek(-1)
        with pytest.raises(ValueError):
            handle.seek(0, 99)


class TestReadWrite:
    def test_append_moves_cursor_to_end(self, handle):
        handle.append(b"hello ")
        handle.append(b"world")
        assert handle.tell() == handle.size == 11
        handle.seek(0)
        assert handle.read() == b"hello world"

    def test_sequential_reads(self, handle):
        handle.append(bytes(range(200)))
        handle.seek(0)
        assert handle.read(50) == bytes(range(50))
        assert handle.read(50) == bytes(range(50, 100))
        assert handle.tell() == 100

    def test_read_past_end_returns_empty(self, handle):
        handle.append(b"abc")
        handle.seek(10)
        assert handle.read(5) == b""

    def test_pread_does_not_move_cursor(self, handle):
        handle.append(b"abcdefgh")
        handle.seek(2)
        assert handle.pread(4, 3) == b"efg"
        assert handle.tell() == 2

    def test_write_requires_page_alignment_and_versions(self, handle):
        handle.append(b"a" * (2 * PAGE))
        handle.seek(PAGE)
        version = handle.write(b"b" * PAGE)
        assert version == 2
        assert handle.readall()[PAGE:] == b"b" * PAGE
        assert handle.readall(version=1) == b"a" * (2 * PAGE)

    def test_versions_listing(self, handle):
        handle.append(b"one")
        handle.append(b"two")
        assert handle.versions() == [0, 1, 2]
        assert handle.latest_version == 2

    def test_iter_pages_round_trip(self, handle):
        payload = bytes(range(256)) * 80  # 20 KiB = 5 pages
        handle.append(payload)
        pages = list(handle.iter_pages())
        assert len(pages) == 5
        assert b"".join(pages) == payload

    def test_versioned_read_with_cursor(self, handle):
        handle.append(b"x" * 100)
        first = handle.latest_version
        handle.append(b"y" * 100)
        handle.seek(0)
        assert handle.read(version=first) == b"x" * 100
