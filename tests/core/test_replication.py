"""Unit tests for the replication helpers (`repro.core.replication`)."""

from __future__ import annotations

import pytest

from repro.core.errors import PageNotFoundError, ProviderUnavailableError
from repro.core.pages import PageDescriptor, PageKey
from repro.core.provider import DataProvider
from repro.core.provider_manager import ProviderManager
from repro.core.replication import ReplicationManager, read_page, write_replicas


@pytest.fixture
def manager() -> ProviderManager:
    return ProviderManager([DataProvider(i) for i in range(4)])


KEY = PageKey(1, 1, 0)


class TestWriteReplicas:
    def test_writes_to_all_targets(self, manager):
        stored = write_replicas(manager, KEY, b"data", (0, 2))
        assert stored == (0, 2)
        assert manager.get(0).has_page(KEY)
        assert manager.get(2).has_page(KEY)
        assert not manager.get(1).has_page(KEY)

    def test_partial_failure_tolerated(self, manager):
        manager.get(0).fail()
        stored = write_replicas(manager, KEY, b"data", (0, 1))
        assert stored == (1,)

    def test_total_failure_raises(self, manager):
        manager.get(0).fail()
        manager.get(1).fail()
        with pytest.raises(ProviderUnavailableError):
            write_replicas(manager, KEY, b"data", (0, 1))


class TestReadPage:
    def test_reads_from_replica(self, manager):
        write_replicas(manager, KEY, b"payload", (1, 3))
        descriptor = PageDescriptor(KEY, (1, 3), size=7)
        assert read_page(manager, descriptor) == b"payload"

    def test_failover_to_second_replica(self, manager):
        write_replicas(manager, KEY, b"payload", (1, 3))
        manager.get(1).fail()
        descriptor = PageDescriptor(KEY, (1, 3), size=7)
        assert read_page(manager, descriptor, policy="first") == b"payload"

    def test_all_replicas_gone_raises(self, manager):
        descriptor = PageDescriptor(KEY, (0, 1), size=4)
        with pytest.raises(PageNotFoundError):
            read_page(manager, descriptor)

    @pytest.mark.parametrize("policy", ["least_loaded", "random", "first"])
    def test_policies_return_correct_data(self, manager, policy):
        write_replicas(manager, KEY, b"abc", (0, 1, 2))
        descriptor = PageDescriptor(KEY, (0, 1, 2), size=3)
        assert read_page(manager, descriptor, policy=policy) == b"abc"

    def test_least_loaded_spreads_reads(self, manager):
        write_replicas(manager, KEY, b"abc", (0, 1))
        descriptor = PageDescriptor(KEY, (0, 1), size=3)
        for _ in range(10):
            read_page(manager, descriptor, policy="least_loaded")
        reads_0 = manager.get(0).stats().pages_read
        reads_1 = manager.get(1).stats().pages_read
        assert abs(reads_0 - reads_1) <= 1


class TestReplicationManager:
    def test_scrub_healthy(self, manager):
        write_replicas(manager, KEY, b"x", (0, 1))
        replication = ReplicationManager(manager)
        report = replication.scrub(
            [PageDescriptor(KEY, (0, 1), size=1)], target_replication=2
        )
        assert report.is_healthy
        assert report.healthy_pages == 1

    def test_scrub_detects_under_replication_and_loss(self, manager):
        key2 = PageKey(1, 1, 1)
        write_replicas(manager, KEY, b"x", (0, 1))
        write_replicas(manager, key2, b"y", (2,))
        manager.get(1).fail()
        manager.get(2).fail()
        replication = ReplicationManager(manager)
        report = replication.scrub(
            [
                PageDescriptor(KEY, (0, 1), size=1),
                PageDescriptor(key2, (2,), size=1),
            ],
            target_replication=2,
        )
        assert len(report.under_replicated) == 1
        assert len(report.lost) == 1
        assert not report.is_healthy

    def test_heal_restores_target_replication(self, manager):
        write_replicas(manager, KEY, b"heal-me", (0, 1))
        manager.get(1).fail()
        replication = ReplicationManager(manager)
        healed = replication.heal(
            PageDescriptor(KEY, (0, 1), size=7), target_replication=2
        )
        assert len(healed.providers) == 2
        live = replication.live_replicas(healed)
        assert len(live) == 2
        for provider_id in live:
            assert manager.get(provider_id).get_page(KEY) == b"heal-me"

    def test_heal_lost_page_raises(self, manager):
        replication = ReplicationManager(manager)
        with pytest.raises(PageNotFoundError):
            replication.heal(PageDescriptor(KEY, (0,), size=1), target_replication=2)

    def test_heal_all_skips_lost_pages(self, manager):
        key2 = PageKey(1, 1, 1)
        write_replicas(manager, KEY, b"x", (0, 1))
        manager.get(1).fail()
        replication = ReplicationManager(manager)
        healed = replication.heal_all(
            [
                PageDescriptor(KEY, (0, 1), size=1),
                PageDescriptor(key2, (3,), size=1),  # never written: lost
            ],
            target_replication=2,
        )
        assert list(healed.keys()) == [0]
