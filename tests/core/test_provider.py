"""Unit tests for data providers (`repro.core.provider`)."""

from __future__ import annotations

import pytest

from repro.core.errors import ProviderUnavailableError
from repro.core.pages import PageKey
from repro.core.persistence import LogStructuredStore
from repro.core.provider import DataProvider, total_bytes_stored


@pytest.fixture
def provider() -> DataProvider:
    return DataProvider(3)


class TestDataProviderBasics:
    def test_default_host_and_rack(self, provider):
        assert provider.host == "provider-3"
        assert provider.rack.startswith("rack-")

    def test_put_get_round_trip(self, provider):
        key = PageKey(1, 1, 0)
        provider.put_page(key, b"payload")
        assert provider.get_page(key) == b"payload"
        assert provider.has_page(key)

    def test_missing_page_raises(self, provider):
        with pytest.raises(KeyError):
            provider.get_page(PageKey(9, 9, 9))

    def test_remove_page_updates_counters(self, provider):
        key = PageKey(1, 1, 0)
        provider.put_page(key, b"12345")
        provider.remove_page(key)
        stats = provider.stats()
        assert stats.pages_stored == 0
        assert stats.bytes_stored == 0
        assert not provider.has_page(key)

    def test_overwrite_does_not_double_count(self, provider):
        key = PageKey(1, 1, 0)
        provider.put_page(key, b"aaaa")
        provider.put_page(key, b"bb")
        stats = provider.stats()
        assert stats.pages_stored == 1
        assert stats.bytes_stored == 2
        assert stats.pages_written == 2

    def test_page_keys_and_blob_filter(self, provider):
        provider.put_page(PageKey(1, 1, 0), b"a")
        provider.put_page(PageKey(1, 1, 1), b"b")
        provider.put_page(PageKey(2, 1, 0), b"c")
        assert len(provider.page_keys()) == 3
        assert sorted(k.index for k in provider.pages_for_blob(1)) == [0, 1]


class TestDataProviderStats:
    def test_read_write_counters(self, provider):
        key = PageKey(1, 1, 0)
        provider.put_page(key, b"x" * 10)
        provider.get_page(key)
        provider.get_page(key)
        stats = provider.stats()
        assert stats.pages_read == 2
        assert stats.bytes_read == 20
        assert stats.bytes_written == 10

    def test_load_score_ordering(self):
        light = DataProvider(1)
        heavy = DataProvider(2)
        for i in range(5):
            heavy.put_page(PageKey(1, 1, i), b"x")
        assert light.stats().load_score < heavy.stats().load_score

    def test_total_bytes_stored_helper(self):
        providers = [DataProvider(i) for i in range(3)]
        providers[0].put_page(PageKey(1, 1, 0), b"12345")
        providers[2].put_page(PageKey(1, 1, 1), b"123")
        assert total_bytes_stored(providers) == 8


class TestDataProviderFailure:
    def test_failed_provider_rejects_requests(self, provider):
        key = PageKey(1, 1, 0)
        provider.put_page(key, b"x")
        provider.fail()
        assert not provider.available
        with pytest.raises(ProviderUnavailableError):
            provider.put_page(PageKey(1, 1, 1), b"y")
        with pytest.raises(ProviderUnavailableError):
            provider.get_page(key)
        assert not provider.has_page(key)

    def test_recover_restores_service_and_data(self, provider):
        key = PageKey(1, 1, 0)
        provider.put_page(key, b"x")
        provider.fail()
        provider.recover()
        assert provider.available
        assert provider.get_page(key) == b"x"

    def test_stats_reflect_availability(self, provider):
        provider.fail()
        assert provider.stats().available is False


class TestDataProviderPersistence:
    def test_provider_with_log_store(self, tmp_path):
        store = LogStructuredStore(tmp_path / "p.log")
        provider = DataProvider(0, store=store)
        key = PageKey(5, 2, 7)
        provider.put_page(key, b"durable")
        provider.sync()
        provider.close()

        reopened = DataProvider(0, store=LogStructuredStore(tmp_path / "p.log"))
        assert reopened.get_page(key) == b"durable"
        reopened.close()
