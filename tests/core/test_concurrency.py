"""Concurrency tests for the BlobSeer core.

These tests exercise the scenarios the paper's design targets: many clients
writing, appending and reading the same deployment (and the same blob)
simultaneously.  They run with real threads against the functional
implementation.
"""

from __future__ import annotations

import threading
from collections import Counter

import pytest

from repro.core import BlobSeer, BlobSeerConfig

PAGE = 4 * 1024


@pytest.fixture
def service() -> BlobSeer:
    return BlobSeer(
        BlobSeerConfig(
            page_size=PAGE,
            num_providers=8,
            num_metadata_providers=4,
            replication=1,
            rng_seed=5,
        )
    )


def run_threads(worker, count: int) -> list[Exception]:
    errors: list[Exception] = []
    lock = threading.Lock()

    def wrapped(index: int) -> None:
        try:
            worker(index)
        except Exception as exc:  # noqa: BLE001
            with lock:
                errors.append(exc)

    threads = [threading.Thread(target=wrapped, args=(i,)) for i in range(count)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return errors


class TestConcurrentAppends:
    def test_no_append_lost_and_ranges_disjoint(self, service):
        blob = service.create_blob()
        appends_per_client = 10
        clients = 8
        chunk = 1000

        def worker(index: int) -> None:
            for _ in range(appends_per_client):
                service.append(blob, bytes([65 + index]) * chunk)

        errors = run_threads(worker, clients)
        assert errors == []
        assert service.get_size(blob) == clients * appends_per_client * chunk
        data = service.read_all(blob)
        counts = Counter(data)
        for index in range(clients):
            assert counts[65 + index] == appends_per_client * chunk
        assert service.latest_version(blob) == clients * appends_per_client

    def test_appends_to_distinct_blobs(self, service):
        blobs = [service.create_blob() for _ in range(6)]

        def worker(index: int) -> None:
            for i in range(5):
                service.append(blobs[index], f"client-{index}-{i};".encode())

        errors = run_threads(worker, len(blobs))
        assert errors == []
        for index, blob in enumerate(blobs):
            content = service.read_all(blob).decode()
            assert content.count(f"client-{index}-") == 5


class TestConcurrentReadsAndWrites:
    def test_readers_see_complete_snapshots_while_writer_appends(self, service):
        blob = service.create_blob()
        service.append(blob, b"0" * PAGE)
        stop = threading.Event()
        reader_errors: list[Exception] = []

        def writer() -> None:
            for i in range(1, 30):
                service.append(blob, bytes([48 + (i % 10)]) * PAGE)
            stop.set()

        def reader() -> None:
            try:
                while not stop.is_set():
                    version = service.latest_version(blob)
                    size = service.get_size(blob, version)
                    data = service.read(blob, 0, size, version=version)
                    # A published snapshot is always a whole number of
                    # homogeneous page-sized segments.
                    assert len(data) == size
                    assert size % PAGE == 0
            except Exception as exc:  # noqa: BLE001
                reader_errors.append(exc)

        writer_thread = threading.Thread(target=writer)
        reader_threads = [threading.Thread(target=reader) for _ in range(4)]
        for t in reader_threads:
            t.start()
        writer_thread.start()
        writer_thread.join()
        for t in reader_threads:
            t.join()
        assert reader_errors == []
        assert service.get_size(blob) == 30 * PAGE

    def test_concurrent_writers_to_disjoint_regions(self, service):
        blob = service.create_blob()
        regions = 6
        service.append(blob, b"\x00" * (regions * PAGE))

        def worker(index: int) -> None:
            service.write(blob, index * PAGE, bytes([65 + index]) * PAGE)

        errors = run_threads(worker, regions)
        assert errors == []
        data = service.read_all(blob)
        for index in range(regions):
            assert data[index * PAGE : (index + 1) * PAGE] == bytes([65 + index]) * PAGE

    def test_mixed_blob_creation_under_concurrency(self, service):
        created: list[int] = []
        lock = threading.Lock()

        def worker(index: int) -> None:
            blob = service.create_blob()
            service.append(blob, f"payload-{index}".encode())
            with lock:
                created.append(blob)

        errors = run_threads(worker, 16)
        assert errors == []
        assert len(set(created)) == 16


class TestVersionOrderingUnderConcurrency:
    def test_published_sizes_are_monotonic(self, service):
        blob = service.create_blob()
        observed: list[int] = []
        observed_lock = threading.Lock()
        stop = threading.Event()

        def observer() -> None:
            while not stop.is_set():
                with observed_lock:
                    observed.append(service.get_size(blob))

        def appender(index: int) -> None:
            for _ in range(10):
                service.append(blob, b"z" * 100)

        obs_thread = threading.Thread(target=observer)
        obs_thread.start()
        errors = run_threads(appender, 4)
        stop.set()
        obs_thread.join()
        assert errors == []
        assert observed == sorted(observed)
        assert service.get_size(blob) == 4 * 10 * 100
