"""Unit tests for the page model (`repro.core.pages`)."""

from __future__ import annotations

import pytest

from repro.core.pages import (
    PageDescriptor,
    PageKey,
    PageRange,
    page_range_for_bytes,
    split_into_pages,
)


class TestPageKey:
    def test_round_trip_through_bytes(self):
        key = PageKey(blob_id=7, version=3, index=42)
        assert PageKey.from_bytes(key.to_bytes()) == key

    def test_keys_are_hashable_and_comparable(self):
        a = PageKey(1, 1, 0)
        b = PageKey(1, 1, 0)
        c = PageKey(1, 2, 0)
        assert a == b
        assert a != c
        assert len({a, b, c}) == 2

    def test_to_bytes_is_distinct_per_field(self):
        keys = {
            PageKey(1, 2, 3).to_bytes(),
            PageKey(1, 2, 4).to_bytes(),
            PageKey(1, 3, 3).to_bytes(),
            PageKey(2, 2, 3).to_bytes(),
        }
        assert len(keys) == 4


class TestPageDescriptor:
    def test_properties(self):
        descriptor = PageDescriptor(PageKey(1, 1, 5), providers=(2, 4), size=100)
        assert descriptor.index == 5
        assert descriptor.replication == 2

    def test_rejects_empty_provider_list(self):
        with pytest.raises(ValueError):
            PageDescriptor(PageKey(1, 1, 0), providers=(), size=10)

    def test_rejects_negative_size(self):
        with pytest.raises(ValueError):
            PageDescriptor(PageKey(1, 1, 0), providers=(1,), size=-1)


class TestPageRange:
    def test_len_iter_contains(self):
        rng = PageRange(2, 6)
        assert len(rng) == 4
        assert list(rng) == [2, 3, 4, 5]
        assert 3 in rng
        assert 6 not in rng
        assert "3" not in rng

    def test_empty_range(self):
        rng = PageRange(5, 5)
        assert len(rng) == 0
        assert list(rng) == []

    def test_invalid_range_rejected(self):
        with pytest.raises(ValueError):
            PageRange(5, 4)
        with pytest.raises(ValueError):
            PageRange(-1, 0)


class TestPageRangeForBytes:
    @pytest.mark.parametrize(
        ("offset", "size", "page_size", "expected"),
        [
            (0, 1, 100, (0, 1)),
            (0, 100, 100, (0, 1)),
            (0, 101, 100, (0, 2)),
            (99, 2, 100, (0, 2)),
            (100, 100, 100, (1, 2)),
            (250, 500, 100, (2, 8)),
            (0, 0, 100, (0, 0)),
            (500, 0, 100, (5, 5)),
        ],
    )
    def test_expected_ranges(self, offset, size, page_size, expected):
        rng = page_range_for_bytes(offset, size, page_size)
        assert (rng.first, rng.last) == expected

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            page_range_for_bytes(-1, 10, 100)
        with pytest.raises(ValueError):
            page_range_for_bytes(0, -1, 100)
        with pytest.raises(ValueError):
            page_range_for_bytes(0, 1, 0)


class TestSplitIntoPages:
    def test_exact_multiple(self):
        pages = split_into_pages(b"a" * 300, 100)
        assert [len(p) for p in pages] == [100, 100, 100]

    def test_partial_last_page(self):
        pages = split_into_pages(b"a" * 250, 100)
        assert [len(p) for p in pages] == [100, 100, 50]

    def test_empty_data(self):
        assert split_into_pages(b"", 100) == []

    def test_content_preserved(self):
        data = bytes(range(256)) * 4
        pages = split_into_pages(data, 100)
        assert b"".join(pages) == data

    def test_rejects_non_positive_page_size(self):
        with pytest.raises(ValueError):
            split_into_pages(b"abc", 0)
